"""FIG5 — Figure 5: Dorst's reasoning model.

Regenerates the figure's table (what is given, what is solved for, per
reasoning mode) and quantifies its point: design abduction searches the
product space — strictly more work than every other well-defined mode.
"""

from repro.core import ReasoningMode, Universe, reason


def _universe(n_concepts: int = 6) -> Universe:
    u = Universe()
    for i in range(n_concepts):
        u.add_concept(f"c{i}", i)
    u.add_relationship("add", lambda a, b: a + b)
    u.add_relationship("mul", lambda a, b: a * b)
    u.add_relationship("sub", lambda a, b: a - b)
    u.add_relationship("mod", lambda a, b: a % b if b else None)
    return u


def bench_fig5_reasoning_costs(benchmark, report, table):
    universe = _universe()
    outcome = 6  # reachable: 2+4, 2*3, ...

    def all_modes():
        return {
            "deduction": reason(universe, ReasoningMode.DEDUCTION,
                                what=("c2", "c3"), how="mul"),
            "induction": reason(universe, ReasoningMode.INDUCTION,
                                what=("c2", "c3"), outcome=outcome),
            "abduction (problem solving)": reason(
                universe, ReasoningMode.ABDUCTION_PROBLEM_SOLVING,
                how="mul", outcome=outcome),
            "abduction (design)": reason(
                universe, ReasoningMode.ABDUCTION_DESIGN, outcome=outcome),
            "unreasoning": reason(universe, ReasoningMode.UNREASONING,
                                  outcome=outcome),
        }

    results = benchmark(all_modes)
    rows = [[mode, r.examined, len(r.frames), r.solved]
            for mode, r in results.items()]
    report("fig5_reasoning",
           "Figure 5: reasoning modes — search cost and solutions",
           table(["mode", "combinations examined", "frames found",
                  "solved"], rows))
    design = results["abduction (design)"]
    for mode, r in results.items():
        if mode not in ("abduction (design)", "unreasoning"):
            assert design.examined > r.examined, mode
    assert results["unreasoning"].examined == 0
