"""FIG1 — Figure 1: presence of selected keywords in top systems venues.

Regenerates the keyword-presence matrix over the synthetic corpus and
checks the figure's claim: *design is a common keyword* (top-4 in every
venue and rising by decade).
"""

from repro.bibliometrics import generate_corpus, keyword_presence
from repro.bibliometrics.keywords import design_rank_among_keywords
from repro.sim import RandomStreams


def _corpus():
    return generate_corpus(RandomStreams(seed=101).get("fig1"))


def bench_fig1_keyword_presence(benchmark, report, table):
    corpus = _corpus()
    presence = benchmark(keyword_presence, corpus, by="venue")
    ranks = design_rank_among_keywords(presence)
    keywords = sorted(next(iter(presence.values())))
    rows = [[venue] + [f"{presence[venue][k]:.2f}" for k in keywords]
            + [ranks[venue]]
            for venue in sorted(presence)]
    report("fig1_keywords", "Figure 1: keyword presence per venue",
           table(["venue"] + keywords + ["design rank"], rows))
    assert all(rank <= 4 for rank in ranks.values())


def bench_fig1_decade_trend(benchmark, report, table):
    corpus = _corpus()
    presence = benchmark(keyword_presence, corpus, by="decade")
    rows = [[decade, f"{presence[decade]['design']:.3f}"]
            for decade in sorted(presence)]
    report("fig1_decades", "Figure 1 (trend): design presence by decade",
           table(["decade", "design keyword share"], rows))
    decades = sorted(presence)
    assert presence[decades[-1]]["design"] > presence[decades[0]]["design"]
