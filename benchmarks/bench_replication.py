"""Failover MTTR — hot standby vs. single-node journal recovery.

The replicated control plane's pitch is that losing the brain costs a
lease detection plus an election plus a warm takeover — not a cold
restart plus a full journal replay. Both sides here are *measured* sim
runs, not closed-form estimates: the failover side is the chaos
scenario's own promoted-at timestamp; the baseline is an otherwise
identical single-node brain crashed at the same instant, paying its
restart cost and replaying its real journal. Detection is charged to
both sides at the same measured latency (the baseline's watchdog is
given the scenario's own phi detection, no better, no worse).
"""

import json
from pathlib import Path

from repro.cluster import Cluster
from repro.faults.chaos import run_failover_scenario
from repro.recovery import Journal
from repro.scheduling import ClusterSimulator, FCFSPolicy
from repro.sim import Environment, Network, RandomStreams
from repro.workload.task import Task

RESULTS_DIR = Path(__file__).parent / "results"

SEED = 7
CRASH_AT_S = 60.0


def _single_node_recovery(seed, n_tasks=36, rate_per_s=0.6,
                          crash_at_s=CRASH_AT_S):
    """A real single-node run: crash at the same instant, time recovery."""
    env = Environment()
    streams = RandomStreams(seed)
    cluster = Cluster.homogeneous("solo", 6, cores=4)
    network = Network(env)
    journal = Journal(env, append_cost_s=0.002,
                      replay_cost_per_record_s=0.01, name="solo-journal")
    sim = ClusterSimulator(env, cluster, FCFSPolicy(), journal=journal,
                           network=network, node_name="solo-brain",
                           scheduler_restart_cost_s=5.0)
    arrival_rng = streams.get("solo-arrivals")
    work_rng = streams.get("solo-work")

    def driver(env):
        for _ in range(n_tasks):
            yield env.timeout(float(arrival_rng.exponential(1.0 / rate_per_s)))
            sim.submit_task(Task(work=float(work_rng.uniform(20.0, 80.0))))
        sim.close_submissions()

    env.process(driver(env))
    env.run(until=crash_at_s)
    sim.crash_scheduler()
    measured = {}

    def recover(env):
        start = env.now
        yield from sim.recover_scheduler()
        measured["recovery_s"] = env.now - start
        measured["replayed_records"] = len(journal)

    env.run(until=env.process(recover(env)))
    env.run(until=sim._scheduler)
    measured["completed"] = len(sim.finished)
    return measured


def bench_failover_vs_journal_replay(benchmark, report, table):
    def run_both():
        return (run_failover_scenario(seed=SEED),
                _single_node_recovery(seed=SEED))

    scenario, baseline = benchmark.pedantic(run_both, rounds=1, iterations=1)

    detect_s = scenario["leader_detect_latency_s"]
    failover_mttr_s = scenario["failover_mttr_s"]
    baseline_mttr_s = detect_s + baseline["recovery_s"]
    rows = [
        ["hot standby (failover)", f"{failover_mttr_s:.3f} s",
         f"{detect_s:.3f} s",
         scenario["journal_records_at_failover"],
         scenario["unshipped_at_promotion"],
         scenario["completed"]],
        ["single node (replay)", f"{baseline_mttr_s:.3f} s",
         f"{detect_s:.3f} s",
         baseline["replayed_records"],
         baseline["replayed_records"],
         baseline["completed"]],
        ["speedup", f"{baseline_mttr_s / failover_mttr_s:.2f}x",
         "", "", "", ""],
    ]
    report("replication_mttr",
           "Brain outage MTTR — hot standby vs single-node journal replay",
           table(["recovery path", "MTTR", "detection", "journal records",
                  "records to replay", "completed"], rows))

    payload = {
        "seed": SEED,
        "crash_at_s": CRASH_AT_S,
        "failover_mttr_s": round(failover_mttr_s, 6),
        "baseline_mttr_s": round(baseline_mttr_s, 6),
        "detection_latency_s": round(detect_s, 6),
        "baseline_restart_and_replay_s": round(baseline["recovery_s"], 6),
        "journal_records_at_failover":
            scenario["journal_records_at_failover"],
        "unshipped_at_promotion": scenario["unshipped_at_promotion"],
        "stale_dispatches": scenario["stale_dispatches"],
        "invariant_violations": scenario["invariant_violations"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_replication.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n")

    # The headline claim, strictly: promotion beats replay.
    assert failover_mttr_s < baseline_mttr_s
    # And neither path lost work.
    assert scenario["lost"] == 0
    assert scenario["invariant_violations"] == 0
    assert baseline["completed"] == 36
