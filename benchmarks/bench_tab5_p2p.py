"""TAB5 — Table 5: the co-evolving P2P studies.

One bench per study family:

- [61] aliased media: detection + community dilution;
- [62] ecosystem-Internet: bandwidth asymmetry and its swarm-level cost;
- [63] global ecosystem (BTWorld): giant swarms + spam trackers;
- [66] flashcrowds: identification + download-time degradation;
- [65] bias: sampling-interval and coverage bias of the monitor;
- [68] 2fast: collaborative downloads under asymmetry.
"""

import numpy as np

from repro.p2p import (
    BTWorldMonitor,
    ContentDescriptor,
    PEER_CLASSES,
    Peer,
    SpamTracker,
    SwarmConfig,
    Tracker,
    bandwidth_asymmetry,
    bias_study,
    detect_aliased_media,
    detect_flashcrowds,
    giant_swarms,
    run_2fast_experiment,
    run_swarm,
)
from repro.p2p.analytics import aliasing_dilution, mean_download_slowdown_during
from repro.sim import Environment, RandomStreams
from repro.workload.arrivals import FlashcrowdArrivals, PoissonArrivals


def bench_tab5_aliased_media(benchmark, report, table):
    """[61]: aliased media split communities into smaller swarms."""
    rng = RandomStreams(seed=501).get("alias")
    descriptors, sizes = [], []
    for movie in range(40):
        n_formats = 1 if rng.random() < 0.5 else int(rng.integers(2, 6))
        audience = int(rng.pareto(1.3) * 120) + 30
        for fmt in range(n_formats):
            descriptors.append(ContentDescriptor(
                f"movie-{movie:02d}", f"fmt-{fmt}", 700.0))
            sizes.append(max(1, audience // n_formats))
    groups = benchmark(detect_aliased_media, descriptors, sizes)
    aliased = [g for g in groups if g.is_aliased]
    dilution = aliasing_dilution(groups)
    report("tab5_aliased_media", "Table 5 [61]: aliased media", [
        f"- torrents: {len(descriptors)}, contents: {len(groups)}",
        f"- aliased contents: {len(aliased)}",
        f"- max formats per content: "
        f"{max(g.alias_count for g in groups)}",
        f"- per-format community dilution vs plain: {dilution:.2f}x",
    ])
    assert aliased
    assert dilution < 1.0


def bench_tab5_bandwidth_asymmetry(benchmark, report, table):
    """[62]: the ADSL-driven upload/download imbalance and its cost."""
    rng = RandomStreams(seed=502).get("asym")
    peers = []
    mix = [("adsl", 0.7), ("cable", 0.2), ("symmetric", 0.08),
           ("university", 0.02)]
    names = [n for n, _ in mix]
    probs = [p for _, p in mix]
    for _ in range(2000):
        cls = str(rng.choice(names, p=probs))
        peers.append(Peer(peer_class=PEER_CLASSES[cls], arrival_time=0))
    stats = benchmark(bandwidth_asymmetry, peers)
    report("tab5_asymmetry", "Table 5 [62]: bandwidth asymmetry", [
        f"- mean download: {stats['mean_download_kbps']:.0f} KB/s",
        f"- mean upload: {stats['mean_upload_kbps']:.0f} KB/s",
        f"- ecosystem capacity ratio (down/up): "
        f"{stats['capacity_ratio']:.1f}",
        f"- asymmetric peers: {stats['asymmetric_fraction']:.0%}",
    ])
    assert stats["capacity_ratio"] > 3.0


def bench_tab5_btworld_global(benchmark, report, table):
    """[63]: the global monitor sees giant swarms and spam trackers."""
    rng = RandomStreams(seed=503).get("btworld")
    sizes = (rng.pareto(1.1, size=3000) * 20 + 1).astype(int)
    stats = benchmark(giant_swarms, sizes)
    # Spam detection: honest vs spam scrape magnitudes.
    env = Environment()
    trackers = [Tracker(f"t{i}") for i in range(4)]
    trackers.append(SpamTracker("spam-0", rng))
    peer = Peer(peer_class=PEER_CLASSES["adsl"], arrival_time=0)
    for t in trackers:
        t.announce("movie/fmt", peer)
    monitor = BTWorldMonitor(env, trackers, interval_s=300)
    env.run(until=3600)
    spam_samples = [s for s in monitor.samples if s.swarm_size > 100]
    report("tab5_btworld", "Table 5 [63]: BTWorld global ecosystem", [
        f"- swarms observed: {stats['n_swarms']}",
        f"- median swarm: {stats['median_size']:.0f} peers; "
        f"largest: {stats['max_size']:.0f}",
        f"- giant swarms (top 1%): {stats['n_giants']} holding "
        f"{stats['giant_peer_share']:.0%} of peers",
        f"- monitor samples: {monitor.total_samples()}; inflated "
        f"spam-tracker samples: {len(spam_samples)}",
    ])
    assert stats["giant_peer_share"] > 0.05
    assert spam_samples


def bench_tab5_flashcrowds(benchmark, report, table):
    """[66]: flashcrowd identification and its negative phenomena."""
    streams = RandomStreams(seed=504)
    burst_at = 3600.0
    config = SwarmConfig(content=ContentDescriptor("m", "f", 60.0),
                         peer_mix=(("adsl", 1.0),), initial_seeds=2,
                         seed_class="adsl", horizon_s=3600 * 12,
                         seed_linger_s=300.0)
    arrivals = FlashcrowdArrivals(
        base_rate=1 / 400.0, rng=streams.get("arr"),
        burst_times=[burst_at], burst_factor=60, burst_decay_s=1200)

    def run():
        return run_swarm(config, Tracker("t"), streams.get("swarm"),
                         arrivals)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    arrival_times = [p.arrival_time for p in result.peers
                     if p.arrival_time >= 0]
    episodes = detect_flashcrowds(arrival_times, window_s=600, threshold=5)
    slowdown = mean_download_slowdown_during(result, burst_at,
                                             burst_at + 2400)
    report("tab5_flashcrowds", "Table 5 [66]: flashcrowds", [
        f"- peers: {len(result.peers)}, completed: "
        f"{len(result.completed)}",
        f"- flashcrowd episodes detected: {len(episodes)}",
        f"- peak/baseline arrival-rate magnitude: "
        f"{episodes[0].magnitude:.1f}x" if episodes else "- none",
        f"- download-time degradation during flashcrowd: {slowdown:.2f}x",
    ])
    assert episodes
    assert slowdown > 1.1


def bench_tab5_sampling_bias(benchmark, report, table):
    """[65]: instrument bias — sampling interval and tracker coverage."""
    times = np.arange(0, 86400, 60.0)
    sizes = np.where((times >= 30000) & (times < 31800), 2000.0, 150.0)
    reports = benchmark(bias_study, times, sizes,
                        [60, 1800, 3600 * 6], [1.0, 0.5, 0.2])
    rows = [[f"{r.interval_s:.0f}", f"{r.coverage:.0%}",
             f"{r.observed_peak:.0f}", f"{r.peak_bias:+.0%}"]
            for r in reports]
    report("tab5_bias", "Table 5 [65]: monitor sampling bias",
           table(["interval (s)", "coverage", "observed peak",
                  "peak bias"], rows))
    worst = min(r.peak_bias for r in reports)
    best = max(r.peak_bias for r in reports)
    assert best == 0.0
    assert worst < -0.8


def bench_tab5_2fast(benchmark, report, table):
    """[68]: 2fast collaborative downloads under ADSL asymmetry."""
    result = benchmark.pedantic(
        run_2fast_experiment,
        kwargs=dict(content_size_mb=700.0, peer_class_name="adsl",
                    max_helpers=10),
        rounds=1, iterations=1)
    rows = [[k, f"{result.download_times[k] / 3600:.2f} h",
             f"{result.speedup(k):.2f}x"]
            for k in range(0, 11, 2)]
    report("tab5_2fast", "Table 5 [68]: 2fast collaborative downloads",
           table(["helpers", "download time", "speedup"], rows))
    assert result.speedup(4) > 2.0
    assert result.max_speedup <= PEER_CLASSES["adsl"].asymmetry + 1


def bench_tab5_tribler_social(benchmark, report, table):
    """[69] Tribler: friends as 2fast helpers — the social dividend."""
    from repro.p2p.tribler import social_circle_study

    rng = RandomStreams(seed=505).get("tribler")

    def study():
        return social_circle_study(rng, circle_sizes=(0, 2, 4, 8, 16),
                                   online_fraction=0.6,
                                   busy_fraction=0.3)

    rows_data = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [[f"{r['circle_size']:.0f}", f"{r['available_helpers']:.0f}",
             f"{r['speedup']:.2f}x"] for r in rows_data]
    report("tab5_tribler", "Table 5 [69]: Tribler social downloads",
           table(["social-circle size", "available helpers",
                  "download speedup"], rows))
    speedups = [r["speedup"] for r in rows_data]
    assert speedups[-1] > speedups[0]
