"""PR-3 — resilience-layer overhead and overload payoff.

Two questions, one table each:

1. What do heartbeats + phi-accrual detection cost a fault-free
   scheduling run, and what does health-aware dispatch cost/buy under
   crashes?
2. What does admission control cost a flash-crowd serverless run in
   wall-clock, and what does it buy in SLO-goodput and tail latency?
"""

import time

from repro.faults.chaos import run_overload_scenario, run_scheduling_scenario


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def bench_detection_overhead(benchmark, report, table):
    def run_all():
        out = {}
        out["sched baseline"] = _timed(lambda: run_scheduling_scenario(
            seed=211, mtbf_s=None, n_tasks=300, n_machines=12))
        out["sched +detector"] = _timed(lambda: run_scheduling_scenario(
            seed=211, mtbf_s=None, n_tasks=300, n_machines=12,
            health_aware=True))
        out["crash omniscient"] = _timed(lambda: run_scheduling_scenario(
            seed=211, mtbf_s=600.0, n_tasks=300, n_machines=12))
        out["crash health-aware"] = _timed(lambda: run_scheduling_scenario(
            seed=211, mtbf_s=600.0, n_tasks=300, n_machines=12,
            health_aware=True))
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, (outcome, wall_s) in results.items():
        rows.append([
            name,
            f"{wall_s * 1000:.1f} ms",
            f"{outcome['slo_attainment']:.3f}",
            outcome.get("misdispatches", ""),
            outcome.get("false_suspicions", ""),
        ])
    overhead = (results["sched +detector"][1]
                / max(results["sched baseline"][1], 1e-9)) - 1
    rows.append(["detector overhead", f"{overhead:+.0%}", "", "", ""])
    report("resilience_detection",
           "PR-3: failure detection — fault-free overhead and crash payoff",
           table(["scenario", "wall clock", "completed fraction",
                  "misdispatches", "false suspicions"], rows))
    # Heartbeats at 1 Hz per machine must not dominate the simulation.
    assert (results["sched +detector"][1]
            < 10 * max(results["sched baseline"][1], 1e-3))
    # Fault-free, bounded jitter: the detector never cries wolf.
    assert results["sched +detector"][0]["false_suspicions"] == 0


def bench_admission_payoff(benchmark, report, table):
    def run_all():
        out = {}
        out["overload raw"] = _timed(lambda: run_overload_scenario(
            seed=211, admission=False, n_invocations=1000))
        out["overload admitted"] = _timed(lambda: run_overload_scenario(
            seed=211, admission=True, n_invocations=1000))
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, (outcome, wall_s) in results.items():
        rows.append([
            name,
            f"{wall_s * 1000:.1f} ms",
            f"{outcome['goodput_per_s']:.2f}/s",
            f"{outcome['p99_latency_s']:.3f} s",
            f"{outcome['shed_fraction']:.1%}",
        ])
    report("resilience_admission",
           "PR-3: flash crowd — admission control off vs on, same seed",
           table(["scenario", "wall clock", "SLO-goodput", "p99 latency",
                  "shed"], rows))
    raw, admitted = results["overload raw"][0], results["overload admitted"][0]
    # The whole point: shedding buys goodput and a survivable tail.
    assert admitted["goodput_per_s"] > raw["goodput_per_s"]
    assert admitted["p99_latency_s"] < raw["p99_latency_s"]
    # And admission must not blow up simulation cost.
    assert (results["overload admitted"][1]
            < 10 * max(results["overload raw"][1], 1e-3))
