"""PR-1 — fault-injection overhead.

Times the same cluster-scheduling workload with the crash/restart
injector off and on (requeue recovery active), quantifying what fault
injection costs in wall-clock and what it costs the simulated system in
wasted core-seconds.
"""

import time

from repro.faults.chaos import run_scheduling_scenario, run_serverless_scenario


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def bench_fault_injection_overhead(benchmark, report, table):
    def run_all():
        out = {}
        out["sched off"] = _timed(lambda: run_scheduling_scenario(
            seed=101, mtbf_s=None, n_tasks=400, n_machines=16))
        out["sched on"] = _timed(lambda: run_scheduling_scenario(
            seed=101, mtbf_s=500.0, requeue=True, n_tasks=400,
            n_machines=16))
        out["faas off"] = _timed(lambda: run_serverless_scenario(
            seed=101, error_rate=0.0, n_invocations=1000, rate_per_s=5.0))
        out["faas on"] = _timed(lambda: run_serverless_scenario(
            seed=101, error_rate=0.3, retry=True, n_invocations=1000,
            rate_per_s=5.0))
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, (outcome, wall_s) in results.items():
        rows.append([
            name,
            f"{wall_s * 1000:.1f} ms",
            f"{outcome['slo_attainment']:.3f}",
            f"{outcome.get('wasted_core_s', 0.0):.0f}",
            outcome.get("retries", outcome.get("restarts", 0)),
        ])
    sched_overhead = (results["sched on"][1] / results["sched off"][1]) - 1
    faas_overhead = (results["faas on"][1] / results["faas off"][1]) - 1
    rows.append(["sched overhead", f"{sched_overhead:+.0%}", "", "", ""])
    rows.append(["faas overhead", f"{faas_overhead:+.0%}", "", "", ""])
    report("fault_overhead",
           "PR-1: injector overhead — same workload, faults off vs on",
           table(["scenario", "wall clock", "SLO attainment",
                  "wasted core-s", "retries/restarts"], rows))
    # Injection must not blow up simulation cost: even with crashes,
    # requeues, and retries the run stays within an order of magnitude.
    assert results["sched on"][1] < 10 * max(results["sched off"][1], 1e-3)
    assert results["faas on"][1] < 10 * max(results["faas off"][1], 1e-3)
