"""TAB8 — Table 8: the Graphalytics ecosystem.

- [105] the PAD law: performance depends on the Platform × Algorithm ×
  Dataset interaction (no dominant platform, rankings flip);
- [106] the HPAD refinement: heterogeneous platforms win only a subset of
  cells and can fail outright (device memory);
- [100] Granula: phase breakdowns and bottleneck attribution;
- [108] Grade10-style: where the time goes per platform.
"""

from collections import Counter

from repro.graphalytics import (
    PLATFORMS,
    pad_interaction_analysis,
    run_benchmark,
)
from repro.graphalytics.benchmark import hpad_analysis


def _report():
    return run_benchmark(n_vertices=1500, seed=801,
                         algorithms=("bfs", "pagerank", "wcc", "lcc"),
                         datasets=("scale-free", "road", "random"))


def bench_tab8_pad_law(benchmark, report, table):
    bench_report = benchmark.pedantic(_report, rounds=1, iterations=1)
    analysis = pad_interaction_analysis(bench_report)
    rows = [[a, d, bench_report.ranking(a, d)[0],
             f"{sorted(bench_report.cell(a, d), key=lambda r: r.modeled_time_s)[0].modeled_time_s:.1f}"]
            for a, d in bench_report.cells()]
    lines = table(["algorithm", "dataset", "winner", "time (s)"], rows)
    lines.append("")
    lines.append(f"Distinct rankings: {analysis['distinct_rankings']}; "
                 f"winner counts: {analysis['winner_counts']}; "
                 f"interaction strength: "
                 f"{analysis['interaction_strength']:.2f}")
    report("tab8_pad", "Table 8 [105]: the PAD law", lines)
    assert analysis["no_dominant_platform"]
    assert analysis["distinct_rankings"] > 1


def bench_tab8_hpad(benchmark, report, table):
    bench_report = _report()
    analysis = benchmark(hpad_analysis, bench_report)
    report("tab8_hpad", "Table 8 [106]: the HPAD refinement", [
        f"- heterogeneous platforms win "
        f"{analysis['het_win_fraction']:.0%} of cells",
        f"- winning cells: {analysis['het_win_cells']}",
        f"- device failures: {analysis['het_failures'] or 'none'}",
        f"- PAD law is the special case: "
        f"{analysis['pad_only_special_case']}",
    ])
    assert analysis["pad_only_special_case"]


def bench_tab8_granula_breakdown(benchmark, report, table):
    bench_report = _report()

    def attribute():
        bottlenecks = Counter(
            (run.platform, run.breakdown.bottleneck())
            for run in bench_report.runs if not run.failed)
        return bottlenecks

    bottlenecks = benchmark(attribute)
    rows = [[platform,
             bottlenecks.get((platform, "setup"), 0),
             bottlenecks.get((platform, "load"), 0),
             bottlenecks.get((platform, "compute"), 0)]
            for platform in sorted(PLATFORMS)]
    report("tab8_granula",
           "Table 8 [100]: Granula bottleneck attribution "
           "(runs dominated by each phase)",
           table(["platform", "setup-bound", "load-bound",
                  "compute-bound"], rows))
    # Distinct platforms bottleneck differently — the Granula insight.
    distinct_profiles = {
        tuple(bottlenecks.get((p, phase), 0)
              for phase in ("setup", "load", "compute"))
        for p in PLATFORMS
    }
    assert len(distinct_profiles) > 1


def bench_tab8_grade10_models(benchmark, report, table):
    """[108] Grade10: fit performance models from runs, predict unseen
    cells without re-running."""
    from repro.graphalytics.grade10 import (
        cross_validate,
        fit_platform_model,
        observations_from_runs,
    )

    big_report = run_benchmark(n_vertices=800, seed=808,
                               algorithms=("bfs", "pagerank", "wcc",
                                           "lcc", "sssp"),
                               datasets=("scale-free", "road", "random"))
    observations = observations_from_runs(big_report.runs)

    def fit_all():
        rows = []
        for platform in sorted(PLATFORMS):
            try:
                model = fit_platform_model(observations, platform)
                loo = cross_validate(observations, platform)
            except ValueError:
                continue
            rows.append([platform, f"{model.training_error:.1%}",
                         f"{loo:.1%}"])
        return rows

    rows = benchmark(fit_all)
    report("tab8_grade10",
           "Table 8 [108]: Grade10 fitted model accuracy",
           table(["platform", "training error",
                  "leave-one-out error"], rows))
    # Fitted models generalize to held-out (A, D) cells.
    assert rows
    assert all(float(r[2].rstrip("%")) < 80.0 for r in rows)
