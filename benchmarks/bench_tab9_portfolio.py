"""TAB9 — Table 9: portfolio scheduling across workloads × environments.

Regenerates every row's finding ("PS is useful"): the portfolio tracks the
best static policy per cell without knowing the workload in advance. Also
regenerates the two phenomena that drove the co-evolution:

- [114]→[115]: online simulation cost grows with the portfolio, and the
  active set bounds it;
- [120]: with hard-to-predict runtimes (big data), static policy spread is
  large and selection can be misled — yet PS remains useful.
"""

from repro.scheduling import (
    PortfolioConfig,
    run_table9_cell,
)
from repro.scheduling.experiments import TABLE9_ROWS, run_portfolio


def bench_tab9_grid(benchmark, report, table):
    def run_grid():
        return [run_table9_cell(domain, environment, seed=901, n_jobs=25)
                for domain, environment in TABLE9_ROWS]

    cells = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = []
    for cell in cells:
        best_name, best = cell.best_static
        _, worst = cell.worst_static
        rows.append([
            cell.workload, cell.environment,
            f"{best_name} ({best:.2f})", f"{worst:.2f}",
            f"{cell.portfolio_result:.2f}",
            f"{cell.ps_regret():.2f}",
            "useful" if cell.ps_is_useful() else "NOT useful",
        ])
    report("tab9_grid", "Table 9: portfolio scheduling grid",
           table(["workload", "env", "best static (slowdown)",
                  "worst static", "portfolio", "regret",
                  "finding"], rows))
    useful = sum(1 for cell in cells if cell.ps_is_useful())
    assert useful >= len(cells) - 1, f"PS useful in only {useful} cells"


def bench_tab9_online_cost(benchmark, report, table):
    """[114]: simulation cost grows with portfolio size; [115]: the
    active set bounds it with little quality loss."""
    def run_variants():
        results = {}
        for label, policies, active in [
                ("portfolio-2", ("fcfs", "sjf"), None),
                ("portfolio-5", ("fcfs", "sjf", "ljf", "backfill",
                                 "fair-share"), None),
                ("portfolio-5-active-2", ("fcfs", "sjf", "ljf", "backfill",
                                          "fair-share"), 2)]:
            config = PortfolioConfig(active_set_size=active)
            metrics, stats = run_portfolio(
                "scientific", "G+CD", policy_names=policies, seed=902,
                n_jobs=25, config=config)
            results[label] = (metrics, stats)
        return results

    results = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    rows = [[label, f"{metrics.objective():.2f}",
             stats.simulated_policy_epochs,
             f"{stats.total_sim_cost_s:.1f} s"]
            for label, (metrics, stats) in results.items()]
    report("tab9_online_cost",
           "Table 9 [114,115]: online simulation cost vs active set",
           table(["configuration", "mean slowdown",
                  "policy simulations", "modeled sim cost"], rows))
    cost2 = results["portfolio-2"][1].total_sim_cost_s
    cost5 = results["portfolio-5"][1].total_sim_cost_s
    cost_active = results["portfolio-5-active-2"][1].total_sim_cost_s
    assert cost5 > cost2             # cost grows with the portfolio
    assert cost_active < cost5      # the active set bounds it
    # Quality with the active set stays close to the full portfolio.
    q5 = results["portfolio-5"][0].objective()
    q_active = results["portfolio-5-active-2"][0].objective()
    assert q_active <= q5 * 1.5


def bench_tab9_learning_vs_simulation(benchmark, report, table):
    """[119] Ananke ablation: learned selection vs simulation-based
    selection — the learner pays a learning period instead of per-epoch
    simulation cost."""
    from repro.cluster import Cluster
    from repro.scheduling import (
        ClusterSimulator,
        FCFSPolicy,
        LJFPolicy,
        LearningPortfolioScheduler,
        PortfolioConfig,
        PortfolioScheduler,
        SJFPolicy,
    )
    from repro.sim import Environment, RandomStreams
    from repro.workload import BagOfTasks, Task

    def mixed_bag(submit):
        tasks = [Task(work=400.0)] + [Task(work=20.0) for _ in range(6)]
        for t in tasks:
            t.runtime_estimate = t.work
        return BagOfTasks(tasks, submit_time=submit)

    def run_both():
        results = {}
        for label in ("simulation", "learning"):
            env = Environment()
            sim = ClusterSimulator(env, Cluster.homogeneous("c", 1,
                                                            cores=2),
                                   FCFSPolicy())
            policies = [FCFSPolicy(), SJFPolicy(), LJFPolicy()]
            if label == "simulation":
                selector = PortfolioScheduler(
                    env, sim, policies,
                    PortfolioConfig(decision_interval_s=100.0))
                sim_cost = lambda: selector.stats.total_sim_cost_s
            else:
                selector = LearningPortfolioScheduler(
                    env, sim, policies, epoch_s=100.0,
                    rng=RandomStreams(11).get("bandit"))
                sim_cost = lambda: 0.0
            sim.submit_jobs([mixed_bag(i * 400.0) for i in range(25)])
            env.run()
            results[label] = (sim.metrics(), sim_cost(),
                              getattr(selector.stats, "switches", 0))
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [[label, f"{m.mean_bounded_slowdown:.2f}",
             f"{cost:.1f} s", switches]
            for label, (m, cost, switches) in results.items()]
    report("tab9_learning",
           "Table 9 [119]: learning vs simulation-based selection",
           table(["selector", "mean slowdown", "simulation cost",
                  "switches"], rows))
    sim_metrics, sim_cost, _ = results["simulation"]
    learn_metrics, learn_cost, _ = results["learning"]
    assert learn_cost == 0.0
    assert sim_cost > 0.0
    # The learner ends up within 2x of the simulation-based selector.
    assert learn_metrics.mean_bounded_slowdown < (
        2.0 * sim_metrics.mean_bounded_slowdown)
