"""TAB7 — Table 7: the serverless/FaaS studies.

- [101] characterization: the three serverless principles observable on
  the platform (ops abstracted, fine-grained billing, elastic scaling);
- [102] performance: cold-start overhead and its mitigation (pre-warming
  vs keep-alive, and what each costs the provider);
- Fission Workflows: orchestration overhead of function compositions;
- [103] reference architecture: platform coverage.
"""

import numpy as np

from repro.serverless import (
    FaaSPlatform,
    FunctionSpec,
    FunctionWorkflow,
    KNOWN_PLATFORMS,
    PlatformConfig,
    WorkflowEngine,
    platform_coverage,
)
from repro.serverless.refarch import layer_coverage
from repro.sim import Environment, RandomStreams


def _drive_open_loop(env, platform, rng, rate_per_s, duration_s):
    """Open-loop Poisson invocations of function 'f'."""
    def driver(env):
        t = 0.0
        while t < duration_s:
            gap = float(rng.exponential(1.0 / rate_per_s))
            t += gap
            yield env.timeout(gap)
            platform.invoke("f")

    return env.process(driver(env))


def bench_tab7_cold_start_study(benchmark, report, table):
    """[102]: cold starts dominate sparse workloads; keep-alive and
    pre-warming trade them against idle capacity."""
    def run():
        results = {}
        for label, prewarmed, keep_alive in [
                ("baseline", 0, 300.0),
                ("long-keepalive", 0, 3600.0),
                ("prewarmed-2", 2, 300.0)]:
            env = Environment()
            platform = FaaSPlatform(env, PlatformConfig(
                cold_start_s=2.0, keep_alive_s=keep_alive,
                prewarmed=prewarmed))
            platform.deploy(FunctionSpec("f", runtime_s=0.3,
                                         memory_gb=0.5))
            rng = RandomStreams(seed=701).get(f"inv-{label}")
            proc = _drive_open_loop(env, platform, rng,
                                    rate_per_s=1 / 400.0,
                                    duration_s=4 * 3600.0)
            env.run(until=4 * 3600.0 + 60)
            completed = platform.completed("f")
            latencies = [i.latency for i in completed]
            results[label] = {
                "invocations": len(completed),
                "cold_fraction": platform.cold_start_fraction("f"),
                "p50_latency": float(np.median(latencies)),
                "customer_cost": platform.cost(),
                "provider_idle_gb_s": platform.idle_gb_s,
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[label, r["invocations"], f"{r['cold_fraction']:.0%}",
             f"{r['p50_latency']:.2f} s", f"{r['customer_cost']:.6f}",
             f"{r['provider_idle_gb_s']:.0f}"]
            for label, r in results.items()]
    report("tab7_cold_starts", "Table 7 [102]: cold-start study",
           table(["config", "invocations", "cold starts", "p50 latency",
                  "customer cost ($)", "provider idle GB-s"], rows))
    # Sparse workload on the baseline: mostly cold.
    assert results["baseline"]["cold_fraction"] > 0.5
    # Both mitigations cut cold starts...
    assert results["prewarmed-2"]["cold_fraction"] < 0.1
    assert results["long-keepalive"]["cold_fraction"] < (
        results["baseline"]["cold_fraction"])
    # ...by burning provider-side idle capacity, not customer dollars.
    assert results["prewarmed-2"]["provider_idle_gb_s"] > (
        results["baseline"]["provider_idle_gb_s"])
    assert abs(results["prewarmed-2"]["customer_cost"]
               - results["baseline"]["customer_cost"]) < 1e-4


def bench_tab7_workflow_orchestration(benchmark, report, table):
    """Fission Workflows: composition shapes and their overhead."""
    def run():
        env = Environment()
        platform = FaaSPlatform(env, PlatformConfig(cold_start_s=1.0,
                                                    keep_alive_s=600.0))
        for name, runtime in [("head", 0.2), ("work", 1.5),
                              ("tail", 0.2)]:
            platform.deploy(FunctionSpec(name, runtime_s=runtime))
        engine = WorkflowEngine(env, platform)
        chain = FunctionWorkflow.chain("chain",
                                       ["head", "work", "work", "tail"])
        fan = FunctionWorkflow.fan_out_fan_in("fan", "head",
                                              ["work"] * 8, "tail")
        run_chain = env.run(until=engine.submit(chain))
        run_fan = env.run(until=engine.submit(fan))
        return run_chain, run_fan

    run_chain, run_fan = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["chain (4 steps)", f"{run_chain.makespan:.1f} s",
         f"{run_chain.critical_path_runtime:.1f} s"],
        ["fan-out 8 (10 steps)", f"{run_fan.makespan:.1f} s",
         f"{run_fan.critical_path_runtime:.1f} s"],
    ]
    report("tab7_workflows", "Table 7: Fission-Workflows orchestration",
           table(["workflow", "makespan", "pure function runtime"], rows))
    # Fan-out runs the 8 'work' calls in parallel: its makespan is far
    # below the serialized runtime.
    assert run_fan.makespan < run_fan.critical_path_runtime
    assert run_chain.makespan >= run_chain.critical_path_runtime


def bench_tab7_reference_architecture(benchmark, report, table):
    """[103]: common components of widely varying platforms."""
    def run():
        return {name: (platform_coverage(components),
                       layer_coverage(components))
                for name, components in KNOWN_PLATFORMS.items()}

    coverages = benchmark(run)
    rows = [[name, f"{cov:.0%}",
             f"{layers['workflow-composition']:.0%}"]
            for name, (cov, layers) in sorted(coverages.items())]
    report("tab7_refarch", "Table 7 [103]: FaaS reference architecture",
           table(["platform", "architecture coverage",
                  "workflow layer"], rows))
    assert coverages["aws-lambda+step-functions"][0] == 1.0
    assert coverages["bare-container-platform"][0] < 0.3


def bench_tab7_ephemeral_storage(benchmark, report, table):
    """[104]/[96]: Pocket right-sizes ephemeral storage across tiers."""
    from repro.serverless.storage import AnalyticsJob, storage_study

    jobs = [
        AnalyticsJob("small-hot", data_gb=5, throughput_mbps=1500,
                     lifetime_s=60),
        AnalyticsJob("large-warm", data_gb=400, throughput_mbps=3000,
                     lifetime_s=300),
        AnalyticsJob("bulk-cold", data_gb=800, throughput_mbps=400,
                     lifetime_s=600),
        AnalyticsJob("burst", data_gb=20, throughput_mbps=8000,
                     lifetime_s=45),
    ]
    study = benchmark(storage_study, jobs)
    rows = [[policy, f"${s['total_cost']:.3f}",
             f"{s['mean_stall']:.2f}x", f"{s['met_fraction']:.0%}"]
            for policy, s in study.items()]
    report("tab7_storage",
           "Table 7 [104,96]: ephemeral storage for serverless analytics",
           table(["policy", "total cost", "mean stall",
                  "requirements met"], rows))
    assert study["pocket"]["met_fraction"] == 1.0
    assert study["pocket"]["total_cost"] < (
        0.6 * study["dram-only"]["total_cost"])
