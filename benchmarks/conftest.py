"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures; the
regenerated rows/series are written to ``benchmarks/results/<id>.md`` (and
echoed to stdout, visible with ``pytest -s``) so EXPERIMENTS.md can quote
them. The ``benchmark`` fixture times a representative kernel of each
experiment.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def write_report(name: str, title: str, lines: list[str]) -> Path:
    """Persist a regenerated table/figure as markdown."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.md"
    content = f"# {title}\n\n" + "\n".join(lines) + "\n"
    path.write_text(content)
    print(f"\n--- {title} ---")
    print("\n".join(lines))
    return path


def markdown_table(headers: list[str], rows: list[list]) -> list[str]:
    """Simple markdown table renderer."""
    out = ["| " + " | ".join(str(h) for h in headers) + " |",
           "|" + "---|" * len(headers)]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return out


@pytest.fixture(scope="session")
def report():
    return write_report


@pytest.fixture(scope="session")
def table():
    return markdown_table
