"""FIG2 — Figure 2: count of design articles per venue per 5-year block.

Checks the figure's findings: censored early blocks for late-starting
venues, increasing accumulation for most venues (ICDCS included), and the
marked increase since 2000.
"""

from repro.bibliometrics import design_articles_per_block, generate_corpus
from repro.bibliometrics.trends import marked_increase_since, trend_is_increasing
from repro.sim import RandomStreams


def _corpus():
    return generate_corpus(RandomStreams(seed=102).get("fig2"))


def bench_fig2_counts_per_block(benchmark, report, table):
    corpus = _corpus()
    counts = benchmark(design_articles_per_block, corpus)
    blocks = list(next(iter(counts.values())))
    rows = []
    for venue in sorted(counts):
        rows.append([venue] + [
            "censored" if counts[venue][b] is None else counts[venue][b]
            for b in blocks])
    lines = table(["venue"] + blocks, rows)
    increasing = [v for v, row in counts.items() if trend_is_increasing(row)]
    ratio = marked_increase_since(corpus, 2000)
    lines.append("")
    lines.append(f"Venues with increasing accumulation: "
                 f"{len(increasing)}/{len(counts)} ({sorted(increasing)})")
    lines.append(f"Design articles/year after-vs-before 2000: {ratio:.1f}x")
    report("fig2_design_counts",
           "Figure 2: design articles per 5-year block", lines)
    assert "ICDCS" in increasing
    assert ratio > 2.0
