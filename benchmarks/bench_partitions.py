"""Partition/gray chaos — what the continuous invariant audit costs.

Times the composed partition scenario with the invariant engine off and
on. The engine re-evaluates six conservation laws every simulated
second; the claim worth pinning is that a continuously self-auditing
chaos run stays in the same cost class as a blind one.
"""

import time

from repro.faults.chaos import run_partition_scenario


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def bench_invariant_audit_overhead(benchmark, report, table):
    def run_all():
        out = {}
        out["audit off"] = _timed(lambda: run_partition_scenario(
            seed=42, invariants=False))
        out["audit on"] = _timed(lambda: run_partition_scenario(
            seed=42, invariants=True))
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, (outcome, wall_s) in results.items():
        rows.append([
            name,
            f"{wall_s * 1000:.1f} ms",
            outcome["completed"],
            outcome["door_shed"],
            outcome["suspicions"],
            outcome["invariant_checks"],
            outcome["invariant_violations"],
        ])
    overhead = (results["audit on"][1]
                / max(results["audit off"][1], 1e-9)) - 1
    rows.append(["audit overhead", f"{overhead:+.0%}", "", "", "", "", ""])
    report("partition_audit",
           "Composed partition chaos — invariant audit off vs on",
           table(["scenario", "wall clock", "completed", "shed",
                  "suspicions", "checks", "violations"], rows))
    on = results["audit on"][0]
    assert on["invariant_violations"] == 0
    assert on["invariant_checks"] > 500
    # Same world either way: the audit observes, it must not perturb.
    for key in ("completed", "door_shed", "suspicions", "messages_sent"):
        assert on[key] == results["audit off"][0][key], key
    # And it must stay in the same cost class.
    assert results["audit on"][1] < 5 * max(results["audit off"][1], 1e-3)
