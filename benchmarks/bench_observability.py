"""PR-5 — observability-layer overhead: what does measuring cost?

The vision's "measure everything" stance only holds if instrumentation
is cheap. Three questions, one table:

1. What do spans + a shared metrics registry add to a bare domain run?
2. What does the installed profiler add per dispatch?
3. How fast do trace serialization and digesting scale with span count?
"""

import time

from repro.faults.chaos import run_serverless_scenario
from repro.observability import MetricsRegistry, SimProfiler, Tracer


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def bench_instrumentation_overhead(benchmark, report, table):
    kwargs = dict(seed=211, error_rate=0.15, retry=True, n_invocations=800)

    def run_all():
        out = {}
        out["bare"] = _timed(lambda: run_serverless_scenario(**kwargs))

        tracer, registry = Tracer(name="bench"), MetricsRegistry()
        out["traced"] = _timed(lambda: run_serverless_scenario(
            tracer=tracer, registry=registry, **kwargs))
        out["_tracer"] = tracer

        profiler = SimProfiler()
        with profiler:
            out["profiled"] = _timed(lambda: run_serverless_scenario(**kwargs))
        out["_profiler"] = profiler
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    tracer = results.pop("_tracer")
    profiler = results.pop("_profiler")
    serialized, json_s = _timed(tracer.to_json)
    _, digest_s = _timed(tracer.digest)

    bare_s = max(results["bare"][1], 1e-9)
    rows = []
    for name, (outcome, wall_s) in results.items():
        rows.append([name, f"{wall_s * 1000:.1f} ms",
                     f"{wall_s / bare_s:.2f}x",
                     f"{outcome['slo_attainment']:.3f}"])
    rows.append(["serialize+digest",
                 f"{(json_s + digest_s) * 1000:.2f} ms",
                 f"{len(tracer.spans)} spans",
                 f"{len(serialized) / 1024:.0f} KiB"])
    report("observability_overhead",
           "PR-5: span/metric/profiler overhead on a serverless run",
           table(["scenario", "wall clock", "vs bare", "SLO / detail"], rows))

    # Instrumentation must never change behavior, only record it.
    assert results["traced"][0]["slo_attainment"] == \
        results["bare"][0]["slo_attainment"]
    assert len(tracer.spans) == kwargs["n_invocations"]
    # ...and must stay cheap enough to leave on (generous CI-noise slack).
    assert results["traced"][1] < 10 * bare_s
    assert results["profiled"][1] < 10 * bare_s
    assert profiler.dispatches > 0
