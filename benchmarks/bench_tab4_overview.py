"""TAB4 — Table 4: experiments with the ATLARGE design framework.

A small end-to-end instance of every Section 6 experiment domain, run in
one pass — the cross-domain claim that one framework (and here, one
substrate) supports P2P, MMOG, datacenter, serverless, Graphalytics,
portfolio scheduling, and autoscaling design studies.
"""

import copy

from repro.autoscaling import (
    ExperimentConfig,
    make_autoscaler,
    run_autoscaling_experiment,
)
from repro.graphalytics import pad_interaction_analysis, run_benchmark
from repro.mmog import simulate_population
from repro.p2p import ContentDescriptor, SwarmConfig, Tracker, run_swarm
from repro.refarch import DATACENTER_2016, MAPREDUCE_ECOSYSTEM, coverage
from repro.scheduling import run_table9_cell
from repro.serverless import FaaSPlatform, FunctionSpec, PlatformConfig
from repro.sim import Environment, RandomStreams
from repro.workload import generate_workflow_workload
from repro.workload.arrivals import PoissonArrivals


def bench_tab4_all_domains(benchmark, report, table):
    streams = RandomStreams(seed=400)

    def run_everything():
        rows = []
        # §6.1 P2P.
        swarm = run_swarm(
            SwarmConfig(content=ContentDescriptor("m", "f", 40.0),
                        horizon_s=2 * 3600, seed_linger_s=300),
            Tracker("t"), streams.get("p2p"),
            PoissonArrivals(1 / 120.0, streams.get("p2p-arr")))
        rows.append(["P2P (§6.1)", "protocol/system design",
                     f"{len(swarm.completed)} downloads completed"])
        # §6.2 MMOG.
        trace = simulate_population(streams.get("mmog"), days=3,
                                    base_arrivals_per_s=0.03)
        rows.append(["MMOG (§6.2)", "ecosystem, NFRs",
                     f"peak {trace.peak:.0f} concurrent players"])
        # §6.3 datacenter reference architecture.
        cov = coverage(DATACENTER_2016, MAPREDUCE_ECOSYSTEM)
        rows.append(["DC management (§6.3)", "RM&S, ref. architecture",
                     f"MapReduce coverage {cov:.0%}"])
        # §6.4 serverless.
        env = Environment()
        platform = FaaSPlatform(env, PlatformConfig(cold_start_s=1.0))
        platform.deploy(FunctionSpec("f", runtime_s=0.2))

        def burst(env, platform):
            events = [platform.invoke("f") for _ in range(10)]
            for ev in events:
                yield ev

        env.run(until=env.process(burst(env, platform)))
        rows.append(["Serverless (§6.4)", "design in new ecosystem",
                     f"{len(platform.completed())} invocations, "
                     f"{platform.cold_start_fraction():.0%} cold"])
        # §6.5 Graphalytics.
        ga = run_benchmark(n_vertices=600, seed=401,
                           algorithms=("bfs", "pagerank"),
                           datasets=("scale-free", "road"))
        analysis = pad_interaction_analysis(ga)
        rows.append(["Graphalytics (§6.5)", "ecosystem design, laws",
                     f"{analysis['distinct_rankings']} distinct rankings"])
        # §6.6 portfolio scheduling.
        cell = run_table9_cell("synthetic", "CL", seed=402, n_jobs=12)
        rows.append(["Portfolio scheduling (§6.6)", "system design",
                     "PS useful" if cell.ps_is_useful() else "PS NOT useful"])
        # §6.7 autoscaling.
        wfs = generate_workflow_workload(streams.get("as"), 5,
                                         horizon_s=30 * 86400)
        first = min(w.submit_time for w in wfs)
        for w in wfs:
            ns = first + (w.submit_time - first) * 0.02
            w.submit_time = ns
            for t in w.tasks:
                t.submit_time = ns
        result = run_autoscaling_experiment(
            copy.deepcopy(wfs), make_autoscaler("react"),
            ExperimentConfig())
        rows.append(["Autoscaling (§6.7)", "experiment design",
                     f"U={result.metrics['accuracy_under']:.3f}, "
                     f"{result.n_workflows} workflows"])
        return rows

    rows = benchmark.pedantic(run_everything, rounds=1, iterations=1)
    report("tab4_overview",
           "Table 4: experiments with the ATLARGE design framework",
           table(["experiment", "key aspects", "regenerated evidence"],
                 rows))
    assert len(rows) == 7
