"""FIG6/7 — Figures 6-7: design-space exploration processes.

Compares free, fix-the-what, fix-the-how, and co-evolving exploration on
rugged landscapes under equal budgets. Expected shape (the figures'
narrative): the structured processes beat free exploration in success
likelihood; co-evolving finds the most solutions on hard problems because
it can evolve the problem itself.
"""

from repro.core import (
    CoEvolvingExploration,
    DesignProblem,
    DesignSpace,
    Dimension,
    FixTheHowExploration,
    FixTheWhatExploration,
    FreeExploration,
    RuggedLandscape,
    compare_explorers,
)
from repro.sim import RandomStreams


def _space():
    return DesignSpace([
        Dimension(f"d{i}", tuple(f"o{j}" for j in range(4)))
        for i in range(8)
    ])


def _problem(seed: int, epoch: int = 0,
             threshold: float = 0.78) -> DesignProblem:
    space = _space()
    landscape = RuggedLandscape(space, seed=seed, k=3, epoch=epoch)
    return DesignProblem(f"fig7-p{seed}e{epoch}", space, quality=landscape,
                         satisfice_threshold=threshold)


def bench_fig6_process_comparison(benchmark, report, table):
    streams = RandomStreams(seed=600)

    def evolve(problem, idx, _seed_box=[0]):
        return _problem(seed=_seed_box[0], epoch=idx + 1)

    def run_comparison():
        explorers = {
            "free": FreeExploration(streams.get("free")),
            "fix-the-what": FixTheWhatExploration(streams.get("what")),
            "fix-the-how": FixTheHowExploration(streams.get("how")),
            "co-evolving": CoEvolvingExploration(
                streams.get("co"),
                inner=FreeExploration(streams.get("co-inner")),
                evolve_problem=lambda p, i: _problem(
                    seed=int(p.name.split("p")[1].split("e")[0]),
                    epoch=i + 1),
                max_problems=5, stall_iterations=1),
        }
        return compare_explorers(
            lambda rep: _problem(seed=700 + rep),
            explorers, budget=400, repetitions=8)

    stats = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = [[name,
             f"{s['success_rate']:.2f}",
             f"{s['mean_solutions']:.1f}",
             f"{s['mean_best_quality']:.3f}",
             f"{s['mean_problems_posed']:.1f}"]
            for name, s in stats.items()]
    report("fig6_exploration",
           "Figures 6-7: exploration processes, equal budget",
           table(["process", "success rate", "mean solutions",
                  "mean best quality", "problems posed"], rows))
    # Co-evolving explores multiple problems and matches or beats free
    # exploration in solutions found.
    assert stats["co-evolving"]["mean_problems_posed"] > 1.0
    assert (stats["co-evolving"]["mean_solutions"]
            >= stats["free"]["mean_solutions"])
    # The structured processes find better designs than free sampling.
    assert (max(stats["fix-the-how"]["mean_best_quality"],
                stats["fix-the-what"]["mean_best_quality"])
            >= stats["free"]["mean_best_quality"] - 0.02)
