#!/usr/bin/env python
"""Kernel macro-bench: events/sec per domain-shaped workload.

Measures raw kernel dispatch throughput on four deterministic workloads
shaped like the repo's domains — the event *mix* of each domain, with
the domain logic stripped out so the kernel itself is what's measured:

- ``scheduling``: machine worker loops chewing through task-length
  sequences (pure-timeout shape — eligible for the ticker fast path);
- ``p2p``: peer gossip rounds with churn (pure-timeout shape with
  process spawn/retire churn);
- ``serverless``: invocation processes contending on a container pool
  (``Resource`` acquire/hold/release — the general event path);
- ``partition``: composed request/response traffic with ``any_of``
  deadlines, interrupts, and a trace digest installed (the instrumented
  dispatch path under a kernel tracer).

Every workload is a pure function of its size parameters — no RNG
streams, no wall clock inside the sim — so event counts are identical
run to run and across kernel versions; only the wall time varies.

Results go to ``benchmarks/results/BENCH_kernel.json`` together with a
*calibration score* (a fixed pure-Python workload timed on the same
machine) so the CI perf ratchet can compare normalized throughput
(events per calibration unit) across machines of different speeds::

    PYTHONPATH=src python benchmarks/bench_kernel.py            # full
    PYTHONPATH=src python benchmarks/bench_kernel.py --quick    # CI smoke
    python tools/perf_ratchet.py check                          # ratchet

The ``baseline`` block in the JSON records the pre-rearchitecture
kernel (commit 0042be9, process-based API only) measured on the same
workloads — the denominator of the PR's ≥5× acceptance criterion.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:
    # Allow `python benchmarks/bench_kernel.py` without PYTHONPATH set
    # (an explicit PYTHONPATH wins, so the ratchet's A/B harness can
    # point the same bench at a different kernel checkout).
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.sim import Environment, Resource  # noqa: E402

RESULTS_PATH = (Path(__file__).resolve().parent / "results"
                / "BENCH_kernel.json")

#: Bump when workload shapes or sizes change (invalidates the baseline
#: block and the perf floor).
BENCH_REVISION = 1


def _lcg(seed: int):
    """A tiny deterministic generator of floats in [0, 1) — no numpy,
    so the bench measures the kernel, not RNG overhead."""
    state = seed & 0x7FFFFFFF
    while True:
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        yield state / 0x80000000


# -- workloads ---------------------------------------------------------------

def _delay_sequence(seed: int, n: int, lo: float, hi: float) -> list[float]:
    rng = _lcg(seed)
    return [lo + (hi - lo) * next(rng) for _ in range(n)]


def workload_scheduling(scale: float = 1.0) -> Environment:
    """Machine worker loops plus machine heartbeats: each machine
    executes its task queue as a sequence of jittered busy intervals
    (the cluster scheduler's ``_execute`` loops) and emits fixed-period
    liveness heartbeats in renewal leases (the monitor/autoscaler poll
    shape). Jittered intervals advance their delay iterator every
    event; fixed-period leases are eligible for batched tick
    scheduling."""
    env = Environment()
    # Fleet sized ~4x the golden scheduling scenario (4 machines): heap
    # depth is the dominant per-event cost, so the bench pins it at the
    # repo's working scale instead of an arbitrary large one.
    n_machines = max(2, int(16 * scale))
    tasks_per_machine = max(10, int(2400 * scale))
    #: Heartbeats per lease before the liveness lease is renewed.
    lease_beats = 60
    leases = max(1, (2 * tasks_per_machine) // lease_beats)

    def machine_delays(m):
        return _delay_sequence(m + 1, tasks_per_machine, 0.1, 4.0)

    def beat_period(m):
        # Distinct per machine (a heterogeneous fleet): equal periods
        # from equal phases would make every pair of twin heartbeats
        # tick at bit-identical times forever, an adversarial tie
        # pattern no real monitor produces.
        return 0.9 + 0.2 * m / n_machines

    ticker = getattr(env, "ticker", None)
    if ticker is not None:
        def heartbeat(period):
            for _ in range(leases):
                yield (period, lease_beats)
        for m in range(n_machines):
            # The task queue's durations are known at assignment, so
            # the worker loop is a plain delay iterator.
            ticker(iter(machine_delays(m)))
            ticker(heartbeat(beat_period(m)))
    else:
        def work(env, delays):
            for d in delays:
                yield env.timeout(d)

        def heartbeat(env, period):
            for _ in range(leases):
                for _ in range(lease_beats):
                    yield env.timeout(period)
        for m in range(n_machines):
            env.process(work(env, machine_delays(m)))
            env.process(heartbeat(env, beat_period(m)))
    return env


def workload_p2p(scale: float = 1.0) -> Environment:
    """Peer gossip rounds with churn: most peers gossip at a fixed
    per-peer round period for a whole session (the swarm model drives
    rounds with a fixed ``round_s`` — see ``repro.p2p.swarm`` — so this
    is the domain's dominant shape, eligible for batched tick
    scheduling), one in eight runs jittered anti-entropy rounds
    (per-round generator resume), and every peer retires after its
    session, spawning a replacement generation."""
    env = Environment()
    # Swarm sized ~1.5x the golden p2p scenario's peak (~15 live peers).
    n_peers = max(2, int(24 * scale))
    rounds_per_session = max(5, int(320 * scale))
    generations = 5

    ticker = getattr(env, "ticker", None)

    def round_period(p, gen):
        rng = _lcg(1000 * gen + p)
        return 5.0 + 10.0 * next(rng)

    def jittered_delays(p, gen):
        return _delay_sequence(1000 * gen + p, rounds_per_session, 5.0, 15.0)

    if ticker is not None:
        def peer(p, gen):
            if p % 8:
                yield (round_period(p, gen), rounds_per_session)
            else:
                for d in jittered_delays(p, gen):
                    yield d
            if gen + 1 < generations:
                ticker(peer(p, gen + 1))
        for p in range(n_peers):
            ticker(peer(p, 0))
    else:
        def peer(env, p, gen):
            if p % 8:
                period = round_period(p, gen)
                for _ in range(rounds_per_session):
                    yield env.timeout(period)
            else:
                for d in jittered_delays(p, gen):
                    yield env.timeout(d)
            if gen + 1 < generations:
                env.process(peer(env, p, gen + 1))
        for p in range(n_peers):
            env.process(peer(env, p, 0))
    return env


def workload_serverless(scale: float = 1.0) -> Environment:
    """Invocations contending on a container pool: acquire, run,
    release — the FaaS platform's Resource-bound event shape."""
    env = Environment()
    pool = Resource(env, capacity=max(2, int(8 * scale)))
    n_invocations = max(20, int(6000 * scale))
    runtimes = _delay_sequence(42, n_invocations, 0.05, 0.8)
    gaps = _delay_sequence(43, n_invocations, 0.0, 0.2)

    def invocation(env, runtime):
        request = pool.request()
        yield request
        yield env.timeout(runtime)
        pool.release(request)

    def arrivals(env):
        for runtime, gap in zip(runtimes, gaps):
            env.process(invocation(env, runtime))
            yield env.timeout(gap)

    env.process(arrivals(env))
    return env


def workload_partition(scale: float = 1.0) -> Environment:
    """Composed request/response traffic with deadlines, interrupts, and
    a kernel tracer installed — the chaos studies' instrumented shape."""
    from repro.analysis.sanitizers import TraceDigest

    env = Environment()
    env.add_tracer(TraceDigest(keep=0))
    n_clients = max(2, int(16 * scale))
    requests_per_client = max(5, int(120 * scale))

    def server(env, request_ev, response_ev, latency):
        yield request_ev
        yield env.timeout(latency)
        response_ev.succeed("ok")

    def client(env, c):
        latencies = _delay_sequence(c + 77, requests_per_client, 0.2, 3.0)
        for i, latency in enumerate(latencies):
            request_ev, response_ev = env.event(), env.event()
            env.process(server(env, request_ev, response_ev, latency))
            request_ev.succeed()
            deadline = env.timeout(2.0)
            outcome = yield env.any_of([response_ev, deadline])
            if response_ev not in outcome and i % 7 == 0:
                # Model a hedged cancel: a watcher interrupt at the
                # response time, absorbed and ignored.
                yield env.timeout(0.5)

    for c in range(n_clients):
        env.process(client(env, c))
    return env


WORKLOADS = {
    "scheduling": workload_scheduling,
    "p2p": workload_p2p,
    "serverless": workload_serverless,
    "partition": workload_partition,
}


# -- measurement -------------------------------------------------------------

def calibrate(units: int = 300_000) -> float:
    """Calibration units/sec: a fixed pure-Python workload that scales
    with interpreter+machine speed the same way the kernel does, so
    floors survive a CI machine change. One unit ≈ one tiny dict/list
    round-trip."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()  # simlint: disable=SL002
        acc, store = 0, {}
        for i in range(units):
            store[i & 255] = i
            acc += store[i & 255] ^ (i >> 3)
        dt = time.perf_counter() - t0  # simlint: disable=SL002
        best = min(best, dt)
    return units / best


def measure(name: str, scale: float, repeats: int) -> dict:
    """Best-of-``repeats`` events/sec for one workload."""
    best_dt, events = float("inf"), 0
    for _ in range(repeats):
        env = WORKLOADS[name](scale)
        t0 = time.perf_counter()  # simlint: disable=SL002
        env.run()
        dt = time.perf_counter() - t0  # simlint: disable=SL002
        best_dt = min(best_dt, dt)
        events = env.dispatch_count
    return {
        "events": events,
        "wall_s": round(best_dt, 6),
        "events_per_s": round(events / best_dt, 1),
    }


def run_bench(scale: float = 1.0, repeats: int = 3) -> dict:
    calibration = calibrate()
    scenarios = {}
    for name in WORKLOADS:
        result = measure(name, scale, repeats)
        result["normalized"] = round(
            result["events_per_s"] / calibration, 4)
        scenarios[name] = result
    return {
        "format": BENCH_REVISION,
        "scale": scale,
        "repeats": repeats,
        "python": platform.python_version(),
        "calibration_units_per_s": round(calibration, 1),
        "scenarios": scenarios,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Kernel macro-bench: events/sec per domain shape.")
    parser.add_argument("--quick", action="store_true",
                        help="small workloads, 2 repeats (CI smoke)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--out", type=Path, default=None,
                        help="write the result document here (default: "
                             "print only; --update writes the canonical "
                             "results file)")
    parser.add_argument("--update", action="store_true",
                        help=f"refresh {RESULTS_PATH.name} in place, "
                             "preserving its baseline block")
    parser.add_argument("--as-baseline", metavar="LABEL",
                        help=f"record this run as the baseline block of "
                             f"{RESULTS_PATH.name} (run with PYTHONPATH "
                             "pointing at the pre-rearchitecture kernel; "
                             "LABEL names the kernel, e.g. a commit hash)")
    args = parser.parse_args(argv)

    scale = 0.25 if args.quick else args.scale
    repeats = 2 if args.quick else args.repeats
    doc = run_bench(scale=scale, repeats=repeats)

    print(f"calibration: {doc['calibration_units_per_s']:,.0f} units/s")
    for name, row in doc["scenarios"].items():
        print(f"{name:<12} {row['events']:>9} events  "
              f"{row['events_per_s']:>12,.0f} events/s  "
              f"normalized {row['normalized']:.4f}")

    out = args.out
    if args.as_baseline:
        doc["kernel"] = args.as_baseline
        merged = (json.loads(RESULTS_PATH.read_text())
                  if RESULTS_PATH.exists() else {})
        merged["baseline"] = doc
        merged.pop("speedup_vs_baseline", None)
        RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
        RESULTS_PATH.write_text(
            json.dumps(merged, indent=1, sort_keys=True) + "\n")
        print(f"recorded baseline block in {RESULTS_PATH}")
        return 0
    if args.update:
        out = RESULTS_PATH
        if RESULTS_PATH.exists():
            previous = json.loads(RESULTS_PATH.read_text())
            for key in ("baseline", "speedup_vs_baseline"):
                if key in previous:
                    doc[key] = previous[key]
            if "baseline" in doc:
                # Absolute events/s ratio: baseline and current are
                # measured back-to-back on the same machine, so dividing
                # two separately-timed calibrations into the ratio would
                # add calibration-window noise, not remove machine speed.
                doc["speedup_vs_baseline"] = {
                    name: round(
                        row["events_per_s"]
                        / doc["baseline"]["scenarios"][name]["events_per_s"],
                        2)
                    for name, row in doc["scenarios"].items()
                    if name in doc["baseline"].get("scenarios", {})
                }
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
