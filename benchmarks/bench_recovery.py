"""PR-4 — checkpoint/recovery: the Young/Daly optimum, measured.

Two tables:

1. Sweep the checkpoint interval around the Young/Daly analytic optimum
   ``sqrt(2 * C * MTBF)`` at two MTBF settings, with common random
   numbers (same seed => same crash schedule for every interval). The
   measured-best interval must land within +/-25% of the formula.
2. Policy shoot-out at the harsher MTBF: Daly-optimal vs. no-checkpoint
   vs. a 5x-too-frequent interval, per seed. Daly must strictly win
   both comparisons on makespan, on every seed.
"""

from repro.faults.chaos import run_recovery_scenario
from repro.recovery import CHECKPOINT_TIERS, daly_interval_s

SEEDS = (7, 19, 42)
#: +/-25% of the optimum is the acceptance band; the outer multipliers
#: show the overhead curve climbing on both sides.
MULTIPLIERS = (0.2, 0.4, 0.75, 1.0, 1.25, 2.0, 5.0)
WITHIN_25PCT = {m for m in MULTIPLIERS if 0.75 <= m <= 1.25}
WORK_S = 1500.0
MTBFS = (300.0, 600.0)
SIZE_MB = 500.0
TIER = "remote"


def _checkpoint_cost_s() -> float:
    tier = CHECKPOINT_TIERS[TIER]
    return tier.latency_s + SIZE_MB / tier.write_mb_per_s


def _sweep(mtbf_s: float) -> dict[float, float]:
    """Mean makespan per interval multiplier, common crash schedules."""
    optimum = daly_interval_s(_checkpoint_cost_s(), mtbf_s)
    means = {}
    for mult in MULTIPLIERS:
        makespans = [
            run_recovery_scenario(seed=seed, policy="periodic",
                                  interval_s=mult * optimum,
                                  work_s=WORK_S, mtbf_s=mtbf_s,
                                  checkpoint_size_mb=SIZE_MB,
                                  tier=TIER)["makespan_s"]
            for seed in SEEDS
        ]
        means[mult] = sum(makespans) / len(makespans)
    return means


def bench_daly_interval_sweep(benchmark, report, table):
    results = benchmark.pedantic(
        lambda: {mtbf: _sweep(mtbf) for mtbf in MTBFS},
        rounds=1, iterations=1)
    cost_s = _checkpoint_cost_s()
    rows = []
    for mtbf, means in results.items():
        optimum = daly_interval_s(cost_s, mtbf)
        best = min(means, key=means.get)
        for mult, mean_s in means.items():
            rows.append([
                f"{mtbf:.0f}",
                f"{mult}x ({mult * optimum:.1f} s)",
                f"{mean_s:.1f}",
                f"{mean_s / WORK_S - 1:.1%}",
                "<-- best" if mult == best else "",
            ])
    report("recovery_daly_sweep",
           "PR-4: checkpoint interval sweep around the Young/Daly optimum "
           f"(C = {cost_s:.2f} s, {TIER} tier, mean of {len(SEEDS)} seeds)",
           table(["MTBF (s)", "interval", "mean makespan (s)",
                  "inflation", ""], rows))
    # The acceptance criterion: at every MTBF the measured-best interval
    # lies within +/-25% of the analytic optimum.
    for mtbf, means in results.items():
        best = min(means, key=means.get)
        assert best in WITHIN_25PCT, (
            f"MTBF {mtbf}: best multiplier {best} outside +/-25% band")


def bench_daly_beats_extremes(benchmark, report, table):
    mtbf_s = MTBFS[0]

    def run_all():
        out = {}
        for seed in SEEDS:
            out[seed] = {
                policy: run_recovery_scenario(
                    seed=seed, policy=policy,
                    interval_s=(daly_interval_s(_checkpoint_cost_s(),
                                                mtbf_s) / 5.0
                                if policy == "periodic" else None),
                    work_s=WORK_S, mtbf_s=mtbf_s,
                    checkpoint_size_mb=SIZE_MB, tier=TIER)
                for policy in ("none", "periodic", "daly")
            }
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    label = {"none": "no checkpoint", "periodic": "5x too frequent",
             "daly": "Daly optimal"}
    rows = []
    for seed, cells in results.items():
        for policy in ("none", "periodic", "daly"):
            r = cells[policy]
            rows.append([
                seed, label[policy], f"{r['makespan_s']:.1f}",
                r["crashes"], f"{r['lost_work_s']:.1f}",
                f"{r['checkpoint_time_s']:.1f}",
            ])
    report("recovery_policy_shootout",
           f"PR-4: recovery stance shoot-out (MTBF {mtbf_s:.0f} s, "
           f"work {WORK_S:.0f} s, per seed)",
           table(["seed", "policy", "makespan (s)", "crashes",
                  "lost work (s)", "ckpt time (s)"], rows))
    for seed, cells in results.items():
        # The comparison is only meaningful if faults actually fired.
        assert cells["daly"]["crashes"] > 0, f"seed {seed} never crashed"
        # Daly strictly beats restart-from-scratch...
        assert (cells["daly"]["makespan_s"]
                < cells["none"]["makespan_s"]), f"seed {seed}"
        # ...and strictly beats checkpointing 5x too often.
        assert (cells["daly"]["makespan_s"]
                < cells["periodic"]["makespan_s"]), f"seed {seed}"
