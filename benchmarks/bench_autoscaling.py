"""EXP-AS — §6.7: the autoscaling experiments.

Runs the seven-autoscaler roster on workflow workloads and regenerates the
experiments' analysis layers: the ten elasticity metrics, the two ranking
methods, the cost analysis under two billing models, deadline SLAs, and
the combined grade — plus the experiments' headline finding (workflow-
aware autoscalers nearly eliminate under-provisioning).
"""

import copy

from repro.autoscaling import (
    AUTOSCALERS,
    ELASTICITY_METRIC_NAMES,
    ExperimentConfig,
    fractional_scores,
    grade_autoscalers,
    make_autoscaler,
    pairwise_wins,
    run_autoscaling_experiment,
)
from repro.sim import RandomStreams
from repro.workload import generate_workflow_workload


def _workflows(seed=905, n=10, compress=0.02):
    rng = RandomStreams(seed=seed).get("as-bench")
    wfs = generate_workflow_workload(rng, n_workflows=n,
                                     horizon_s=30 * 86400)
    first = min(w.submit_time for w in wfs)
    for w in wfs:
        new_submit = first + (w.submit_time - first) * compress
        w.submit_time = new_submit
        for t in w.tasks:
            t.submit_time = new_submit
    return wfs


def bench_autoscaling_full_roster(benchmark, report, table):
    workflows = _workflows()
    config = ExperimentConfig(step_s=30.0, provisioning_delay_steps=2)

    def run_all():
        return {
            name: run_autoscaling_experiment(
                copy.deepcopy(workflows), make_autoscaler(name), config)
            for name in AUTOSCALERS
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    wins = pairwise_wins(results)
    scores = fractional_scores(results)
    grades = grade_autoscalers(results)
    rows = []
    for name, r in sorted(results.items()):
        rows.append([
            name,
            f"{r.metrics['accuracy_under']:.3f}",
            f"{r.metrics['accuracy_over']:.3f}",
            f"{r.metrics['timeshare_under']:.2f}",
            f"{r.metrics['avg_utilization']:.2f}",
            f"{r.sla_violation_rate:.0%}",
            f"{r.cost_continuous:.2f}",
            wins[name],
            f"{scores[name]:.3f}",
            f"{grades[name]:.3f}",
        ])
    report("autoscaling_roster",
           "§6.7: seven autoscalers, ten elasticity metrics, "
           "two rankings, grades",
           table(["autoscaler", "U", "O", "T_U", "util", "SLA viol.",
                  "cost ($)", "pairwise wins", "fractional", "grade"],
                 rows))
    # The experiments' headline: workflow-aware autoscalers (plan/token)
    # underprovision far less than the general ones.
    general_u = min(results[n].metrics["accuracy_under"]
                    for n in ("react", "adapt", "hist", "reg", "conpaas"))
    aware_u = max(results[n].metrics["accuracy_under"]
                  for n in ("plan", "token"))
    assert aware_u < general_u
    # All ten metrics computed for every autoscaler.
    for r in results.values():
        assert set(r.metrics) == set(ELASTICITY_METRIC_NAMES)


def bench_autoscaling_provisioning_delay_sensitivity(benchmark, report,
                                                     table):
    """The delay ablation: elasticity degrades with provisioning delay —
    the in-vitro/in-silico discrepancy driver of [128]."""
    workflows = _workflows(seed=906, n=8)

    def run_delays():
        results = {}
        for delay in (0, 2, 8):
            config = ExperimentConfig(step_s=30.0,
                                      provisioning_delay_steps=delay)
            results[delay] = run_autoscaling_experiment(
                copy.deepcopy(workflows), make_autoscaler("react"), config)
        return results

    results = benchmark.pedantic(run_delays, rounds=1, iterations=1)
    rows = [[delay, f"{r.metrics['accuracy_under']:.3f}",
             f"{r.metrics['under_volume']:.0f}",
             f"{r.mean_makespan:.0f} s"]
            for delay, r in results.items()]
    report("autoscaling_delay",
           "§6.7 ablation: provisioning delay vs elasticity",
           table(["delay (steps)", "U", "under volume",
                  "mean workflow makespan"], rows))
    assert results[8].metrics["under_volume"] > (
        results[0].metrics["under_volume"])


def bench_autoscaling_corroboration(benchmark, report, table):
    """[128]/[130]: independent corroboration — discretization-robust
    metrics agree across evaluations; volume metrics are flagged."""
    from repro.autoscaling.corroboration import ROBUST_METRICS, corroborate

    wfs = _workflows(seed=907, n=6)

    def run_both():
        robust = corroborate(wfs, lambda: make_autoscaler("react"),
                             step_sizes=(15.0, 30.0, 60.0),
                             tolerance=0.5, metrics=ROBUST_METRICS)
        naive = corroborate(wfs, lambda: make_autoscaler("react"),
                            step_sizes=(15.0, 120.0), tolerance=0.25,
                            metrics=("under_volume", "over_volume",
                                     "jitter"))
        return robust, naive

    robust, naive = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [[m, f"{robust.discrepancy(m):.1%}", "ok"]
            for m in ROBUST_METRICS]
    rows += [[m, f"{naive.discrepancy(m):.1%}", "FLAGGED"]
             for m in naive.disagreeing_metrics]
    report("autoscaling_corroboration",
           "§6.7 [128,130]: independent corroboration",
           table(["metric", "cross-evaluation discrepancy",
                  "verdict"], rows))
    assert robust.corroborated
    assert not naive.corroborated
