"""Campaign throughput and shrink cost — the fuzzing loop's price tag.

Two numbers seed the perf trajectory: how many randomized schedules a
campaign grinds through per minute (sequential vs. an 8-way shard
pool — on a many-core box the pool wins; either way the *verdicts* are
identical by construction, and that is asserted here), and how many
re-executions the delta-debugger spends shrinking the seeded
unfenced-failover bug to its minimal schedule.
"""

import json
import time
from pathlib import Path

from repro.campaign import (
    CampaignConfig,
    OracleStack,
    generate_schedules,
    run_campaign,
    shrink_schedule,
)

RESULTS_DIR = Path(__file__).parent / "results"

ROOT_SEED = 0
N_SCHEDULES = 16

#: The seeded-bug recipe (same as tests/campaign/test_shrink.py): a
#: failover campaign whose control plane never fences on promotion.
BUGGY_KWARGS = {"fence_on_failover": False}
BUGGY_CONFIG = dict(root_seed=2, n_schedules=10, workers=1,
                    worlds=("failover",), double_run=False,
                    extra_world_kwargs=BUGGY_KWARGS)


def _throughput(workers):
    config = CampaignConfig(root_seed=ROOT_SEED, n_schedules=N_SCHEDULES,
                            workers=workers, double_run=False)
    start = time.perf_counter()  # simlint: disable=SL002
    report = run_campaign(config)
    wall_s = time.perf_counter() - start  # simlint: disable=SL002
    return report, wall_s, N_SCHEDULES / wall_s * 60.0


def _seeded_bug_shrink():
    schedules = generate_schedules(CampaignConfig(**BUGGY_CONFIG))
    stack = OracleStack(double_run=False, extra_world_kwargs=BUGGY_KWARGS)
    for schedule in schedules:
        verdict = stack.evaluate(schedule)
        if not verdict.passed:
            return shrink_schedule(schedule,
                                   extra_world_kwargs=BUGGY_KWARGS)
    raise AssertionError("seeded campaign found no failure")


def bench_campaign_throughput_and_shrink(benchmark, report, table):
    def run_all():
        return (_throughput(workers=1), _throughput(workers=8),
                _seeded_bug_shrink())

    ((seq_report, seq_wall, seq_rate),
     (shard_report, shard_wall, shard_rate),
     shrink) = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        ["sequential (1 worker)", N_SCHEDULES, f"{seq_wall:.1f} s",
         f"{seq_rate:.1f}", seq_report.n_passed],
        ["sharded (8 workers)", N_SCHEDULES, f"{shard_wall:.1f} s",
         f"{shard_rate:.1f}", shard_report.n_passed],
    ]
    report("campaign_throughput",
           "Chaos-fuzzing campaign throughput (schedules/min) and "
           "shrink cost",
           table(["runner", "schedules", "wall", "schedules/min",
                  "passed"], rows)
           + ["",
              f"seeded-bug shrink: {len(shrink.original.episodes)} "
              f"episode(s) -> {len(shrink.minimal.episodes)} in "
              f"{shrink.steps} accepted step(s), "
              f"{shrink.executions} execution(s)"])

    payload = {
        "root_seed": ROOT_SEED,
        "n_schedules": N_SCHEDULES,
        "sequential_wall_s": round(seq_wall, 3),
        "sequential_schedules_per_min": round(seq_rate, 2),
        "sharded_workers": 8,
        "sharded_wall_s": round(shard_wall, 3),
        "sharded_schedules_per_min": round(shard_rate, 2),
        "shrink_original_episodes": len(shrink.original.episodes),
        "shrink_minimal_episodes": len(shrink.minimal.episodes),
        "shrink_steps": shrink.steps,
        "shrink_executions": shrink.executions,
        "shrink_failures": list(shrink.failures),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_campaign.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n")

    # Shard-count invariance is the runner's contract, asserted on the
    # very runs we just timed.
    assert [v.as_dict() for v in seq_report.verdicts] == \
        [v.as_dict() for v in shard_report.verdicts]
    assert seq_report.merged_metrics == shard_report.merged_metrics
    # A default-config campaign is clean, and the seeded bug shrinks to
    # the acceptance bar.
    assert seq_report.n_failed == 0
    assert 1 <= len(shrink.minimal.episodes) <= 3
    assert "no_split_brain" in shrink.failures
