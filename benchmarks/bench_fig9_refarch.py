"""FIG9 — Figure 9: the evolving datacenter reference architecture.

Maps the MapReduce ecosystem onto both architecture generations and
measures each generation's coverage of modern ecosystems — the paper's
quantitative argument for the 2016 revision.
"""

from repro.refarch import (
    BIG_DATA_2011,
    DATACENTER_2016,
    INDUSTRY_ECOSYSTEMS,
    MAPREDUCE_ECOSYSTEM,
    coverage,
    map_ecosystem,
)


def bench_fig9_mapreduce_mapping(benchmark, report, table):
    mapping = benchmark(map_ecosystem, DATACENTER_2016,
                        MAPREDUCE_ECOSYSTEM, "mapreduce")
    rows = [[name, ", ".join(layers)]
            for name, layers in sorted(mapping.placed.items())]
    report("fig9_mapreduce",
           "Figure 9: MapReduce ecosystem on the 2016 architecture",
           table(["component", "layer(s)"], rows))
    assert mapping.coverage == 1.0
    assert coverage(BIG_DATA_2011, MAPREDUCE_ECOSYSTEM) == 1.0


def bench_fig9_architecture_evolution(benchmark, report, table):
    def measure():
        return {
            eco: (coverage(BIG_DATA_2011, comps),
                  coverage(DATACENTER_2016, comps))
            for eco, comps in INDUSTRY_ECOSYSTEMS.items()
        }

    coverages = benchmark(measure)
    rows = [[eco, f"{c2011:.2f}", f"{c2016:.2f}"]
            for eco, (c2011, c2016) in sorted(coverages.items())]
    report("fig9_evolution",
           "Figure 9: 2011 vs 2016 architecture coverage",
           table(["ecosystem", "2011 coverage", "2016 coverage"], rows))
    # The revision's point: 2016 covers everything; 2011 cannot place
    # the modern components.
    assert all(c2016 == 1.0 for _, c2016 in coverages.values())
    assert coverages["modern-datacenter"][0] < 1.0
