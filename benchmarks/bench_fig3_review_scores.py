"""FIG3 — Figure 3: violin plots of review scores (merit/quality/topic).

Regenerates the distribution statistics (mean/median/IQR/whiskers — the
violin annotations) per group, and the paper's findings (1) design
articles have slightly better merit, (2) a significant share of design
articles scores well below 3.
"""

from repro.bibliometrics import (
    generate_review_corpus,
    review_score_distributions,
    score_findings,
)
from repro.sim import RandomStreams


def _corpus():
    return generate_review_corpus(
        RandomStreams(seed=103).get("fig3"), n_papers=600)


def bench_fig3_distributions(benchmark, report, table):
    papers = _corpus()
    dists = benchmark(review_score_distributions, papers)
    rows = []
    for aspect in ("merit", "quality", "topic"):
        for group, stats in sorted(dists[aspect].items()):
            rows.append([
                aspect, group, stats["count"],
                f"{stats['mean']:.2f}", f"{stats['median']:.2f}",
                f"{stats['q1']:.2f}", f"{stats['q3']:.2f}",
                f"{stats['whisker_low']:.2f}",
                f"{stats['whisker_high']:.2f}",
            ])
    report("fig3_review_scores",
           "Figure 3: review-score distributions",
           table(["aspect", "group", "n", "mean", "median", "q1", "q3",
                  "wlow", "whigh"], rows))
    findings = score_findings(papers)
    assert findings["finding1_design_merit_better"]
    assert findings["finding2_share_below_3"] > 0.3
    assert findings["topic_scores_high"]
