"""TAB1-3 — Tables 1-3: the framework catalogs.

Regenerates the framework overview (Table 1), the eight principles
(Table 2), and the ten challenges with their principle links (Table 3),
and validates the cross-reference structure.
"""

from repro.core import (
    CHALLENGES,
    FRAMEWORK_OVERVIEW,
    PRINCIPLES,
    challenges_for_principle,
)


def bench_tab1_overview(benchmark, report, table):
    def render():
        rows = []
        for question, entries in FRAMEWORK_OVERVIEW.items():
            for aspect, content in entries.items():
                rows.append([question, aspect, content])
        return rows

    rows = benchmark(render)
    report("tab1_overview", "Table 1: the ATLARGE framework overview",
           table(["", "aspect", "content"], rows))
    # Table 1's rows: 1 (Who?) + 3 (What?) + 5 (How?).
    assert len(rows) == 9


def bench_tab2_tab3_catalogs(benchmark, report, table):
    def render():
        principle_rows = [[p.index, p.category, p.key_aspects, p.statement]
                          for p in PRINCIPLES.values()]
        challenge_rows = [[c.index, c.category, c.key_aspects,
                           ",".join(c.principles)]
                          for c in CHALLENGES.values()]
        return principle_rows, challenge_rows

    principle_rows, challenge_rows = benchmark(render)
    lines = table(["index", "category", "key aspects", "statement"],
                  principle_rows)
    lines.append("")
    lines += table(["index", "category", "key aspects", "principles"],
                   challenge_rows)
    report("tab2_tab3_catalogs", "Tables 2-3: principles and challenges",
           lines)
    assert len(principle_rows) == 8
    assert len(challenge_rows) == 10
    # Table 3's Pr. column cites every principle except P8 (the
    # history-awareness principle has no dedicated challenge).
    for index in PRINCIPLES:
        cited = challenges_for_principle(index)
        if index == "P8":
            assert not cited
        else:
            assert cited, index
