"""BIGDATA — §6.3 / §2.5: the Digital Factory's phenomena.

- vicissitude ([38]): bottlenecks wander across resource classes under
  concurrent pipelines, and do *not* wander in the solo regime;
- Fawkes ([94]): demand-proportional balancing across dynamic MapReduce
  clusters beats a static equal split on imbalanced tenants;
- elasticity in graph analytics ([111], the Table 8 row): elastic
  capacity tracks per-phase parallelism — near static-large speed at
  near static-small cost.
"""

from repro.bigdata import (
    FawkesAllocator,
    StaticAllocator,
    run_fawkes_experiment,
    run_vicissitude_experiment,
)
from repro.graphalytics.elasticity import elasticity_study


def bench_bigdata_vicissitude(benchmark, report, table):
    def run_both():
        return {
            "contended": run_vicissitude_experiment(
                seed=3, concurrency="contended"),
            "solo": run_vicissitude_experiment(seed=3, concurrency="solo"),
        }

    traces = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [[regime, t.distinct_bottlenecks, t.shifts,
             f"{t.entropy_bits:.2f}",
             {k: f"{v:.2f}" for k, v in t.time_share.items()},
             "YES" if t.is_vicissitude else "no"]
            for regime, t in traces.items()]
    report("bigdata_vicissitude", "§2.5 [38]: vicissitude",
           table(["regime", "bottleneck classes", "shifts",
                  "entropy (bits)", "time share", "vicissitude"], rows))
    assert traces["contended"].is_vicissitude
    assert not traces["solo"].is_vicissitude


def bench_bigdata_fawkes(benchmark, report, table):
    def run_both():
        return {
            "static": run_fawkes_experiment(StaticAllocator(), seed=4),
            "fawkes": run_fawkes_experiment(FawkesAllocator(), seed=4),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [[name,
             f"{r.per_tenant_slowdown['heavy']:.2f}",
             f"{r.per_tenant_slowdown['light']:.2f}",
             f"{r.mean_slowdown:.2f}", f"{r.max_slowdown:.2f}"]
            for name, r in results.items()]
    report("bigdata_fawkes",
           "§6.3 [94]: Fawkes balanced MapReduce allocation",
           table(["allocator", "heavy-tenant slowdown",
                  "light-tenant slowdown", "mean", "max"], rows))
    assert results["fawkes"].max_slowdown < results["static"].max_slowdown


def bench_graph_elasticity(benchmark, report, table):
    study = benchmark(elasticity_study)
    rows = [[r.label, f"{r.makespan_s:.0f}",
             f"{r.resource_seconds:.0f}", f"{r.efficiency:.2f}",
             r.reconfigurations]
            for r in study.values()]
    report("tab8_elasticity",
           "Table 8 [111]: elasticity in graph analytics",
           table(["deployment", "makespan (s)",
                  "provisioned resource-s", "efficiency",
                  "reconfigurations"], rows))
    elastic, large = study["elastic"], study["static-large"]
    assert elastic.makespan_s < large.makespan_s * 1.15
    assert elastic.resource_seconds < 0.5 * large.resource_seconds
