"""FIG8 — Figure 8: the ATLARGE design process (BDC + Overall Process).

Runs the BDC against each stopping criterion and an Overall Process with
nested child cycles, and reports the provenance statistics (stages
executed vs. skipped — the skippability that makes the process flexible).
"""

from repro.core import (
    BasicDesignCycle,
    OverallProcess,
    Stage,
    StoppingCriterion,
)
from repro.core.space import DesignProblem, DesignSpace, Dimension, RuggedLandscape
from repro.sim import RandomStreams


def _design_handler(seed: int):
    space = DesignSpace([
        Dimension(f"d{i}", tuple(f"o{j}" for j in range(4)))
        for i in range(6)
    ])
    landscape = RuggedLandscape(space, seed=seed, k=2)
    problem = DesignProblem("fig8", space, quality=landscape,
                            satisfice_threshold=0.7)
    rng = RandomStreams(seed).get("bdc")

    def handler(context):
        candidate = space.random_candidate(rng)
        quality = problem.evaluate(candidate)
        if quality >= problem.satisfice_threshold:
            return (candidate, quality)
        return None

    return handler


def bench_fig8_stopping_criteria(benchmark, report, table):
    def run_all():
        results = {}
        for target in (StoppingCriterion.SATISFICED,
                       StoppingCriterion.PORTFOLIO,
                       StoppingCriterion.SYSTEMATIC):
            cycle = BasicDesignCycle(
                "fig8", handlers={Stage.DESIGN: _design_handler(808)},
                target=target, budget=4000)
            results[target.value] = cycle.run()
        # A starved budget demonstrates the BUDGET fallback.
        cycle = BasicDesignCycle(
            "fig8-starved", handlers={Stage.DESIGN: lambda ctx: None},
            target=StoppingCriterion.SATISFICED, budget=16)
        results["starved"] = cycle.run()
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[name, r.stopped_by.value, len(r.answers), r.iterations,
             r.budget_spent, len(r.document.skipped())]
            for name, r in results.items()]
    report("fig8_bdc", "Figure 8: BDC stopping criteria",
           table(["target", "stopped by", "answers", "iterations",
                  "budget spent", "stages skipped"], rows))
    assert results["satisficed"].stopped_by is StoppingCriterion.SATISFICED
    assert len(results["portfolio"].answers) == 3
    assert len(results["systematic"].answers) == 10
    assert results["starved"].stopped_by is StoppingCriterion.BUDGET


def bench_fig8_overall_process_nesting(benchmark, report, table):
    def run_op():
        child = BasicDesignCycle(
            "implementation-child",
            handlers={Stage.DESIGN: _design_handler(809)}, budget=2000)
        parent = BasicDesignCycle("fig8-op", handlers={}, budget=64)
        op = OverallProcess(parent,
                            children={Stage.IMPLEMENTATION: child})
        context: dict = {}
        result = op.run(context)
        return result, context

    result, context = benchmark.pedantic(run_op, rounds=1, iterations=1)
    child_runs = context["children"][Stage.IMPLEMENTATION]
    report("fig8_op", "Figure 8: Overall Process with nested BDC", [
        f"- parent stopped by: {result.stopped_by.value}",
        f"- parent answers: {len(result.answers)}",
        f"- child BDC runs: {len(child_runs)}",
        f"- child answers: {sum(len(c.answers) for c in child_runs)}",
    ])
    assert child_runs
    assert result.answers  # the child's design surfaced to the parent
