"""TAB6 — Table 6: the MMOG design studies.

- [71]/[72]/[73] dynamics: diurnal + long-term population dynamics per
  genre, and prediction-driven provisioning vs static peak provisioning;
- [76] RTSenv: the uniform-fidelity scalability wall;
- [81] Area of Simulation: cost reduction on replay-shaped workloads;
- [82] Mirror: computation offloading;
- [74]/[75] social networks: implicit communities and matchmaking;
- [77] toxicity: detector quality on planted toxic players;
- [78] POGGI: puzzle generation throughput and rejection rate.
"""

import numpy as np

from repro.mmog import (
    AreaOfSimulation,
    GENRE_PROFILES,
    MirrorOffload,
    ToxicityDetector,
    TrendPredictor,
    LastValuePredictor,
    build_interaction_graph,
    generate_chat,
    generate_puzzles,
    rtsenv_sweep,
    run_provisioning,
    simulate_population,
)
from repro.mmog.provisioning import static_provisioning
from repro.mmog.rts import replay_derived_workload
from repro.mmog.social import generate_coplay
from repro.sim import RandomStreams


def bench_tab6_population_dynamics(benchmark, report, table):
    streams = RandomStreams(seed=601)

    def run():
        return {
            genre: simulate_population(streams.get(f"pop-{genre}"),
                                       genre=genre, days=14,
                                       base_arrivals_per_s=0.04)
            for genre in GENRE_PROFILES
        }

    traces = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[genre, f"{t.peak:.0f}", f"{t.peak_to_trough:.1f}",
             f"{t.long_term_growth():+.4f}"]
            for genre, t in traces.items()]
    report("tab6_dynamics",
           "Table 6 [71,72,73]: population dynamics per genre",
           table(["genre", "peak players", "peak/trough",
                  "daily growth (log)"], rows))
    assert traces["mmorpg"].peak_to_trough > 1.5
    assert traces["social"].long_term_growth() > (
        traces["declining"].long_term_growth())


def bench_tab6_provisioning(benchmark, report, table):
    streams = RandomStreams(seed=602)
    trace = simulate_population(streams.get("prov"), genre="mmorpg",
                                days=7, base_arrivals_per_s=0.06)
    demand = trace.population

    def run():
        return {
            "static-peak": static_provisioning(demand, percentile=100),
            "last-value": run_provisioning(demand, LastValuePredictor(),
                                           provisioning_delay_steps=3),
            "trend": run_provisioning(demand, TrendPredictor(window=6),
                                      provisioning_delay_steps=3),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, f"{r.server_hours:.0f}",
             f"{r.underprovisioned_fraction:.1%}",
             f"{r.mean_utilization:.0%}"]
            for name, r in results.items()]
    report("tab6_provisioning",
           "Table 6 [71,87]: MMOG provisioning policies",
           table(["policy", "server hours", "time under-provisioned",
                  "mean utilization"], rows))
    # Elastic provisioning is much cheaper than static peak...
    assert results["trend"].server_hours < (
        0.8 * results["static-peak"].server_hours)
    # ...and trend prediction beats naive persistence on degraded time.
    assert results["trend"].unserved_player_time <= (
        results["last-value"].unserved_player_time)


def bench_tab6_rtsenv_and_aos(benchmark, report, table):
    """[76] + [81]: the scalability wall and the AoS fix."""
    rng = RandomStreams(seed=603).get("rts")

    def run():
        sweep = rtsenv_sweep([10, 50, 100, 200, 500, 1000, 2000])
        aos_results = [AreaOfSimulation(replay_derived_workload(rng))
                       for _ in range(20)]
        return sweep, aos_results

    sweep, aos_results = benchmark(run)
    rows = [[f"{r['entities']:.0f}", f"{r['frame_cost'] * 1000:.1f} ms",
             "yes" if r["playable"] else "no"] for r in sweep]
    lines = table(["entities (uniform melee)", "frame cost",
                   "30 Hz playable"], rows)
    speedups = [a.speedup for a in aos_results]
    lines.append("")
    lines.append(f"Area of Simulation on replay-shaped workloads "
                 f"(n={len(speedups)}): median speedup "
                 f"{np.median(speedups):.1f}x, "
                 f"min {min(speedups):.1f}x, max {max(speedups):.1f}x")
    report("tab6_rtsenv", "Table 6 [76,81]: RTS scalability", lines)
    playable = [bool(r["playable"]) for r in sweep]
    assert playable[0] and not playable[-1]
    assert np.median(speedups) > 5


def bench_tab6_mirror(benchmark, report, table):
    """[82]: computation offloading for sophisticated mobile games."""
    mirror = MirrorOffload(device_speed=1.0, cloud_speed=10.0, rtt_s=0.05)

    def run():
        return [(cost,) + mirror.best_offload(cost)
                for cost in (0.005, 0.02, 0.1, 0.5, 1.0)]

    results = benchmark(run)
    rows = [[f"{cost:.3f}", f"{fraction:.0%}", f"{t * 1000:.0f} ms",
             f"{cost / 1.0 * 1000:.0f} ms"]
            for cost, fraction, t in results]
    report("tab6_mirror", "Table 6 [82]: Mirror offloading",
           table(["frame cost (s of device work)", "best offload",
                  "frame time", "device-only"], rows))
    # Light frames stay local; heavy frames offload most of the work.
    assert results[0][1] == 0.0
    assert results[-1][1] > 0.5


def bench_tab6_social_networks(benchmark, report, table):
    """[74,75]: implicit social networks and matchmaking."""
    rng = RandomStreams(seed=604).get("social")
    records = generate_coplay(rng, n_players=80, n_matches=600,
                              n_groups=8, social_bias=0.85)
    graph = benchmark(build_interaction_graph, records)
    communities = [c for c in graph.communities() if len(c) >= 5]
    strong = graph.strong_ties(min_weight=3)
    report("tab6_social", "Table 6 [74,75]: implicit social networks", [
        f"- players: {graph.n_players}, ties: {graph.n_ties}",
        f"- strong (repeated) ties: {len(strong)}",
        f"- communities of >=5 players recovered: {len(communities)} "
        f"(8 planted)",
    ])
    assert len(communities) >= 5
    assert strong


def bench_tab6_toxicity(benchmark, report, table):
    """[77]: toxicity detection quality."""
    rng = RandomStreams(seed=605).get("tox")
    messages = generate_chat(rng, n_players=30, n_messages=800,
                             toxic_player_fraction=0.15)
    detector = ToxicityDetector(threshold=0.45)
    metrics = benchmark(detector.evaluate, messages)
    offenders = detector.repeat_offenders(messages, min_toxic=3)
    report("tab6_toxicity", "Table 6 [77]: toxicity detection", [
        f"- messages: {len(messages)}",
        f"- precision: {metrics['precision']:.2f}, recall: "
        f"{metrics['recall']:.2f}, F1: {metrics['f1']:.2f}",
        f"- repeat offenders flagged: {len(offenders)}",
    ])
    assert metrics["precision"] > 0.9
    assert metrics["recall"] > 0.5


def bench_tab6_poggi(benchmark, report, table):
    """[78]: POGGI puzzle generation."""
    rng = RandomStreams(seed=606).get("poggi")
    puzzles = benchmark.pedantic(
        generate_puzzles, args=(rng, 20), kwargs={"difficulty_band": (6, 14)},
        rounds=1, iterations=1)
    difficulties = [p.difficulty for p in puzzles]
    report("tab6_poggi", "Table 6 [78]: POGGI content generation", [
        f"- puzzles generated: {len(puzzles)}",
        f"- difficulty range: {min(difficulties)}..{max(difficulties)} "
        f"moves (band 6..14)",
    ])
    assert len(puzzles) == 20
    assert all(6 <= d <= 14 for d in difficulties)


def bench_tab6_cameo(benchmark, report, table):
    """[79] CAMEO: continuous analytics under a cloud budget."""
    from repro.mmog.analytics import CameoAnalytics, generate_sessions

    rng = RandomStreams(seed=607).get("cameo")
    sessions = generate_sessions(rng, n_players=400, days=7)
    cameo = CameoAnalytics()
    full_cost = len(sessions) * cameo.cost_per_event

    def run():
        return {
            f"{frac:.0%} budget": cameo.analyze_within_budget(
                sessions, full_cost * frac)
            for frac in (1.0, 0.25, 0.05)
        }

    reports = benchmark(run)
    rows = [[label, f"${r.cloud_cost:.3f}", r.events_processed,
             f"{r.mean_relative_error:.1%}"]
            for label, r in reports.items()]
    report("tab6_cameo",
           "Table 6 [79]: CAMEO analytics under budget",
           table(["budget", "cloud cost", "events analyzed",
                  "DAU error"], rows))
    assert reports["100% budget"].mean_relative_error < 0.01
    assert (reports["5% budget"].cloud_cost
            < 0.1 * reports["100% budget"].cloud_cost)


def bench_tab6_yardstick(benchmark, report, table):
    """[84] Yardstick: real vs nominal capacity of game servers."""
    from repro.mmog.yardstick import capacity_study

    rows_data = benchmark(capacity_study, [25, 50, 100, 200])
    rows = [[f"{r['nominal_capacity']:.0f}", f"{r['max_playable']:.0f}",
             f"{r['degradation_onset']:.0f}",
             "yes" if r["hard_capacity_hit"] else "no"]
            for r in rows_data]
    report("tab6_yardstick",
           "Table 6 [84]: Yardstick game-server capacity",
           table(["nominal capacity", "max playable", "degradation "
                  "onset", "hard cap hit"], rows))
    playable = [r["max_playable"] for r in rows_data]
    assert playable == sorted(playable)
