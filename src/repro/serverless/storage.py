"""Ephemeral storage for serverless analytics (the paper's [104], [96]).

Serverless analytics jobs exchange intermediate data through a shared
ephemeral store that lives only for the job. [104] analyzed the
requirements (capacity *and* throughput, for seconds at a time); Pocket
[96] built the system: per-job *right-sizing* across storage tiers —
DRAM for throughput-hungry small data, NVMe/flash for the bulk, disk for
the cheap cold cases — at a fraction of a DRAM-only deployment's cost.

This module models the tiers, the per-job allocation policies, and the
cost/performance comparison that is the papers' headline result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence


@dataclass(frozen=True)
class StorageTier:
    """One storage media tier of the ephemeral store."""

    name: str
    #: Throughput per provisioned GB (MB/s per GB) — DRAM's is huge.
    throughput_per_gb: float
    #: Price per GB-hour of provisioned capacity.
    cost_per_gb_hour: float
    #: Minimum allocation granularity, GB.
    min_alloc_gb: float = 1.0


#: Stylized tiers (relative numbers follow the Pocket paper's hierarchy).
TIERS: dict[str, StorageTier] = {
    "dram": StorageTier("dram", throughput_per_gb=500.0,
                        cost_per_gb_hour=0.05),
    "nvme": StorageTier("nvme", throughput_per_gb=50.0,
                        cost_per_gb_hour=0.004),
    "hdd": StorageTier("hdd", throughput_per_gb=2.0,
                       cost_per_gb_hour=0.0005),
}


@dataclass(frozen=True)
class AnalyticsJob:
    """A serverless analytics job's ephemeral-storage requirements.

    ``data_gb`` of intermediate data must be written and read back within
    ``lifetime_s``; the job's fan-out demands ``throughput_mbps``
    aggregate bandwidth to avoid stalling its lambdas.
    """

    name: str
    data_gb: float
    throughput_mbps: float
    lifetime_s: float

    def __post_init__(self):
        if min(self.data_gb, self.throughput_mbps, self.lifetime_s) <= 0:
            raise ValueError(f"job {self.name}: all requirements must be "
                             "positive")


@dataclass
class Allocation:
    """Capacity provisioned per tier for one job."""

    job: AnalyticsJob
    per_tier_gb: dict[str, float] = field(default_factory=dict)

    @property
    def capacity_gb(self) -> float:
        return sum(self.per_tier_gb.values())

    @property
    def throughput_mbps(self) -> float:
        return sum(TIERS[tier].throughput_per_gb * gb
                   for tier, gb in self.per_tier_gb.items())

    @property
    def cost(self) -> float:
        hours = self.job.lifetime_s / 3600.0
        return sum(TIERS[tier].cost_per_gb_hour * gb * hours
                   for tier, gb in self.per_tier_gb.items())

    @property
    def meets_requirements(self) -> bool:
        return (self.capacity_gb >= self.job.data_gb - 1e-9
                and self.throughput_mbps >= self.job.throughput_mbps
                - 1e-9)

    @property
    def stall_factor(self) -> float:
        """How much slower the job runs than requested (1.0 = no stall)."""
        if self.throughput_mbps <= 0:
            return float("inf")
        return max(1.0, self.job.throughput_mbps / self.throughput_mbps)


def allocate_single_tier(job: AnalyticsJob, tier_name: str) -> Allocation:
    """The baseline policies: everything on one tier, sized for both the
    capacity and the throughput requirement."""
    tier = TIERS[tier_name]
    needed_for_throughput = job.throughput_mbps / tier.throughput_per_gb
    gb = max(job.data_gb, needed_for_throughput, tier.min_alloc_gb)
    return Allocation(job=job, per_tier_gb={tier_name: gb})


def allocate_pocket(job: AnalyticsJob,
                    tier_order: Sequence[str] = ("hdd", "nvme", "dram")
                    ) -> Allocation:
    """Pocket's right-sizing: fill capacity on the cheapest tier, then
    top up *throughput* with the smallest possible slice of faster tiers.

    Greedy over tiers from cheap to fast: put all capacity on the
    cheapest tier whose throughput contribution helps; if aggregate
    throughput still falls short, shift capacity to the next-faster tier
    just enough to close the gap.
    """
    # Start with everything on the cheapest tier.
    tiers = [TIERS[name] for name in tier_order]
    per_tier = {tiers[0].name: max(job.data_gb, tiers[0].min_alloc_gb)}

    def throughput():
        return sum(TIERS[t].throughput_per_gb * gb
                   for t, gb in per_tier.items())

    for faster in tiers[1:]:
        gap = job.throughput_mbps - throughput()
        if gap <= 1e-9:
            break
        # Moving x GB from the current slowest-used tier to `faster`
        # gains (faster.tp - slow.tp) per GB; adding fresh capacity to
        # `faster` gains faster.tp per GB. Prefer moving (keeps total
        # capacity at data_gb).
        donor_name = max(per_tier, key=lambda t: per_tier[t])
        donor = TIERS[donor_name]
        gain = faster.throughput_per_gb - donor.throughput_per_gb
        if gain <= 0:
            continue
        move = min(per_tier[donor_name], gap / gain)
        move = max(move, 0.0)
        if move < faster.min_alloc_gb and gap > 0:
            move = min(faster.min_alloc_gb, per_tier[donor_name])
        per_tier[donor_name] -= move
        if per_tier[donor_name] <= 1e-9:
            del per_tier[donor_name]
        per_tier[faster.name] = per_tier.get(faster.name, 0.0) + move
    allocation = Allocation(job=job, per_tier_gb=per_tier)
    if not allocation.meets_requirements:
        # Last resort: size the fastest tier for the full requirement.
        return allocate_single_tier(job, tier_order[-1])
    return allocation


def storage_study(jobs: Sequence[AnalyticsJob]
                  ) -> dict[str, dict[str, float]]:
    """The [96] comparison: DRAM-only vs NVMe-only vs Pocket.

    Returns per-policy total cost, mean stall factor, and the fraction
    of jobs whose requirements are met.
    """
    if not jobs:
        raise ValueError("no jobs")
    policies = {
        "dram-only": lambda job: allocate_single_tier(job, "dram"),
        "nvme-only": lambda job: allocate_single_tier(job, "nvme"),
        "pocket": allocate_pocket,
    }
    result = {}
    for name, policy in policies.items():
        allocations = [policy(job) for job in jobs]
        result[name] = {
            "total_cost": sum(a.cost for a in allocations),
            "mean_stall": sum(a.stall_factor for a in allocations)
            / len(allocations),
            "met_fraction": sum(a.meets_requirements
                                for a in allocations) / len(allocations),
        }
    return result
