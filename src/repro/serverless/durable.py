"""Durable workflow execution: journaled steps, replay, idempotent effects.

The plain :class:`~repro.serverless.workflow.WorkflowEngine` is an
in-memory orchestrator: if it crashes mid-workflow, every completed
step's result is gone and a retry re-invokes the whole DAG. The
:class:`DurableWorkflowEngine` journals each completed step to a
write-ahead :class:`~repro.recovery.journal.Journal`; a recovering
orchestrator *replays* the journal and skips every step with a durable
record instead of re-invoking it.

Durability is windowed (the journal's ``append_cost_s`` group-commit
horizon), so recovery gives **at-least-once** execution: a step whose
function ran but whose record was not yet durable at the crash — or was
still in flight — executes again. Side-effects are registered by
detached recorder processes that outlive the orchestrator (the function
*did* run, whether or not the orchestrator survived to see it), and an
idempotency key ``(run_key, step)`` suppresses the duplicates:
**effectively-once** end to end. The engine counts both halves —
``steps_replayed`` (re-invocations the journal saved) and
``dedup_suppressed`` (duplicate side-effects the key absorbed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import networkx as nx

from repro.recovery.journal import Journal
from repro.serverless.platform import FaaSPlatform, Invocation
from repro.serverless.workflow import FunctionWorkflow
from repro.sim import Environment, Interrupt


@dataclass
class DurableRun:
    """One durable execution of a workflow."""

    workflow: str
    #: Idempotency namespace: effects are keyed ``(key, step)``.
    key: str
    submit_time: float
    finish_time: Optional[float] = None
    status: str = "running"
    invocations: dict[str, Invocation] = field(default_factory=dict)
    failed_steps: set[str] = field(default_factory=set)
    skipped_steps: set[str] = field(default_factory=set)
    #: Orchestrator incarnations (1 = never crashed).
    attempts: int = 0
    orchestrator_crashes: int = 0
    #: Steps skipped on recovery because their journal record survived —
    #: each one is a re-invocation the journal saved.
    steps_replayed: int = 0
    #: Invocations actually issued to the platform (across attempts).
    invocations_issued: int = 0

    @property
    def succeeded(self) -> bool:
        return self.status == "completed"

    @property
    def makespan(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time


class DurableWorkflowEngine:
    """Workflow orchestration that survives its own crashes.

    The engine is a :class:`~repro.faults.models.CrashRestart` target:
    ``fail()`` kills every in-flight driver (their functions keep
    running — the platform is a separate failure domain), ``repair()``
    lets them recover. Recovery pays ``restart_cost_s`` plus the
    journal's bounded replay cost, then resumes each run from its
    durable frontier.
    """

    def __init__(self, env: Environment, platform: FaaSPlatform,
                 journal: Journal, restart_cost_s: float = 0.5,
                 name: str = "durable-engine"):
        if restart_cost_s < 0:
            raise ValueError("restart_cost_s must be non-negative")
        self.env = env
        self.platform = platform
        self.journal = journal
        self.restart_cost_s = restart_cost_s
        self.name = name
        self.runs: list[DurableRun] = []
        #: Raw side-effect executions per ``(key, step)`` — at-least-once.
        self.effects: dict[tuple[str, str], int] = {}
        #: Duplicate side-effects absorbed by the idempotency key.
        self.dedup_suppressed = 0
        self._up = True
        self._repaired = None
        self._drivers: list = []

    # -- CrashRestart target protocol --------------------------------------
    @property
    def is_up(self) -> bool:
        return self._up

    def fail(self) -> None:
        self._up = False
        self._repaired = self.env.event()
        for proc in self._drivers:
            if proc.is_alive:
                proc.interrupt("orchestrator-crash")

    def repair(self) -> None:
        self._up = True
        if self._repaired is not None and not self._repaired.triggered:
            self._repaired.succeed()

    # -- aggregate counters ------------------------------------------------
    @property
    def steps_replayed(self) -> int:
        return sum(r.steps_replayed for r in self.runs)

    @property
    def invocations_issued(self) -> int:
        return sum(r.invocations_issued for r in self.runs)

    def effective_effect_count(self, key: str, step: str) -> int:
        """Effect count *after* idempotency dedup: 0 or 1, never more."""
        return min(1, self.effects.get((key, step), 0))

    # -- execution ---------------------------------------------------------
    def submit(self, workflow: FunctionWorkflow, key: str):
        """Durably run the workflow; returns an Event yielding DurableRun."""
        for function in workflow.functions.values():
            if function not in self.platform.functions:
                raise KeyError(
                    f"workflow {workflow.name!r} uses undeployed function "
                    f"{function!r}")
        run = DurableRun(workflow=workflow.name, key=key,
                         submit_time=self.env.now)
        self.runs.append(run)
        done = self.env.event()
        proc = self.env.process(self._drive(workflow, run, done))
        self._drivers.append(proc)
        return done

    def _record_effect(self, event, key: str, step: str):
        """Detached recorder: the function's side-effect happens when the
        *function* finishes, regardless of whether the orchestrator is
        still alive to observe it."""
        inv = yield event
        if not (inv.failed or inv.rejected or inv.shed):
            count = self.effects.get((key, step), 0) + 1
            self.effects[(key, step)] = count
            if count > 1:
                self.dedup_suppressed += 1

    def _drive(self, workflow: FunctionWorkflow, run: DurableRun, done):
        order = list(nx.lexicographical_topological_sort(workflow.graph))
        while True:
            run.attempts += 1
            try:
                completed: set[str] = set()
                if run.attempts > 1:
                    # Recovery: restart, then replay the durable prefix.
                    if self.restart_cost_s > 0:
                        yield self.env.timeout(self.restart_cost_s)
                    replay_s = self.journal.replay_time_s()
                    records = self.journal.replay()
                    if replay_s > 0:
                        yield self.env.timeout(replay_s)
                    for record in records:
                        if (record.kind == "step_done"
                                and record.payload["key"] == run.key):
                            completed.add(record.payload["step"])
                for step in order:
                    if step in run.skipped_steps:
                        continue
                    preds = list(workflow.graph.predecessors(step))
                    if any(p in run.failed_steps or p in run.skipped_steps
                           for p in preds):
                        run.skipped_steps.add(step)
                        continue
                    if step in completed:
                        run.steps_replayed += 1
                        continue
                    event = self.platform.invoke(workflow.functions[step])
                    run.invocations_issued += 1
                    self.env.process(self._record_effect(event, run.key,
                                                         step))
                    inv = yield event
                    if inv.rejected:
                        raise RuntimeError(
                            f"workflow {workflow.name}: step {step} "
                            "rejected by concurrency limit")
                    run.invocations[step] = inv
                    if inv.failed or inv.shed:
                        run.failed_steps.add(step)
                        for desc in nx.descendants(workflow.graph, step):
                            run.skipped_steps.add(desc)
                        continue
                    self.journal.append("step_done",
                                        {"key": run.key, "step": step})
                run.finish_time = self.env.now
                run.status = "failed" if run.failed_steps else "completed"
                done.succeed(run)
                return
            except Interrupt:
                run.orchestrator_crashes += 1
                if self._repaired is not None:
                    yield self._repaired
