"""The SPEC-RG FaaS reference architecture ([103]).

After surveying ~50 serverless platforms, the SPEC RG Cloud group
identified the common processes and components of seemingly widely
varying systems. The component list below follows that reference
architecture's layers (resource orchestration, function management,
workflow composition, business logic); :data:`KNOWN_PLATFORMS` maps
stylized real platforms onto it, and :func:`platform_coverage` measures
how completely a platform realizes the architecture — the input any good
serverless benchmark design needs (§6.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class FaaSComponent:
    """One component of the reference architecture."""

    name: str
    layer: str
    description: str = ""


#: The reference architecture's components, by layer.
FAAS_COMPONENTS: dict[str, FaaSComponent] = {c.name: c for c in [
    # Resource layer: where functions actually run.
    FaaSComponent("resource-orchestration", "resources",
                  "cluster/container orchestration under the platform"),
    FaaSComponent("naming-service", "resources",
                  "service discovery for function endpoints"),
    # Function management layer.
    FaaSComponent("function-registry", "function-management",
                  "stores function code/specs and versions"),
    FaaSComponent("function-builder", "function-management",
                  "packages source into runnable images"),
    FaaSComponent("function-deployer", "function-management",
                  "places function instances onto resources"),
    FaaSComponent("function-router", "function-management",
                  "routes events/requests to instances"),
    FaaSComponent("function-autoscaler", "function-management",
                  "scales instances with demand, to zero"),
    FaaSComponent("function-instance", "function-management",
                  "the executing unit with its runtime"),
    # Workflow composition layer.
    FaaSComponent("workflow-registry", "workflow-composition",
                  "stores workflow definitions"),
    FaaSComponent("workflow-engine", "workflow-composition",
                  "drives multi-function compositions"),
    FaaSComponent("workflow-scheduler", "workflow-composition",
                  "decides when/where workflow steps run"),
    # Business logic / ops.
    FaaSComponent("event-sources", "business-logic",
                  "triggers: HTTP, queues, timers, storage events"),
    FaaSComponent("monitoring", "operations",
                  "metrics, logs, tracing of invocations"),
    FaaSComponent("billing", "operations",
                  "fine-grained pay-per-use accounting"),
]}


#: Stylized component inventories of surveyed platforms.
KNOWN_PLATFORMS: dict[str, frozenset[str]] = {
    "aws-lambda": frozenset({
        "resource-orchestration", "naming-service", "function-registry",
        "function-builder", "function-deployer", "function-router",
        "function-autoscaler", "function-instance", "event-sources",
        "monitoring", "billing"}),
    "aws-lambda+step-functions": frozenset({
        "resource-orchestration", "naming-service", "function-registry",
        "function-builder", "function-deployer", "function-router",
        "function-autoscaler", "function-instance", "workflow-registry",
        "workflow-engine", "workflow-scheduler", "event-sources",
        "monitoring", "billing"}),
    "fission": frozenset({
        "resource-orchestration", "function-registry", "function-builder",
        "function-deployer", "function-router", "function-autoscaler",
        "function-instance", "event-sources", "monitoring"}),
    "fission+workflows": frozenset({
        "resource-orchestration", "function-registry", "function-builder",
        "function-deployer", "function-router", "function-autoscaler",
        "function-instance", "workflow-registry", "workflow-engine",
        "workflow-scheduler", "event-sources", "monitoring"}),
    "openwhisk": frozenset({
        "resource-orchestration", "naming-service", "function-registry",
        "function-deployer", "function-router", "function-autoscaler",
        "function-instance", "event-sources", "monitoring", "billing"}),
    "bare-container-platform": frozenset({
        "resource-orchestration", "naming-service", "monitoring"}),
}


def platform_coverage(components: Sequence[str] | frozenset[str]) -> float:
    """Fraction of the reference architecture a platform realizes."""
    unknown = set(components) - set(FAAS_COMPONENTS)
    if unknown:
        raise KeyError(f"unknown components: {sorted(unknown)}")
    return len(set(components)) / len(FAAS_COMPONENTS)


def missing_components(components: Sequence[str] | frozenset[str]
                       ) -> list[str]:
    """Architecture components a platform lacks (benchmark blind spots)."""
    return sorted(set(FAAS_COMPONENTS) - set(components))


def layer_coverage(components: Sequence[str] | frozenset[str]
                   ) -> dict[str, float]:
    """Per-layer coverage — where a platform is strong or absent."""
    present = set(components)
    layers: dict[str, list[str]] = {}
    for comp in FAAS_COMPONENTS.values():
        layers.setdefault(comp.layer, []).append(comp.name)
    return {
        layer: sum(1 for n in names if n in present) / len(names)
        for layer, names in sorted(layers.items())
    }
