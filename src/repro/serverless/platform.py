"""A FaaS platform: function lifecycle fully managed by the provider.

The model implements the paper's three serverless principles ([101]):
(1) operational logic abstracted away — callers only ``invoke``;
(2) fine-grained pay-per-use — GB-second billing per invocation;
(3) event-driven, elastically scaled — instances spawn on demand (cold
start) and are reaped after an idle keep-alive window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Optional

import numpy as np

from repro.faults.models import TransientErrorModel
from repro.faults.policies import RetryPolicy
from repro.sim import Environment, Monitor


@dataclass(frozen=True)
class FunctionSpec:
    """A deployed function."""

    name: str
    #: Execution time on a warm instance, seconds.
    runtime_s: float
    memory_gb: float = 0.25

    def __post_init__(self):
        if self.runtime_s <= 0:
            raise ValueError("runtime_s must be positive")
        if self.memory_gb <= 0:
            raise ValueError("memory_gb must be positive")


@dataclass
class PlatformConfig:
    """Operator-side knobs of the platform."""

    cold_start_s: float = 1.5
    keep_alive_s: float = 600.0
    #: Price per GB-second of function execution.
    price_per_gb_s: float = 0.0000167
    #: Billing also counts the cold start (as real platforms' init does)?
    bill_cold_start: bool = False
    #: Hard cap on concurrent instances per function (None = unbounded).
    concurrency_limit: Optional[int] = None
    #: Instances kept pre-warmed per function (cold-start mitigation).
    prewarmed: int = 0


@dataclass
class Invocation:
    """One function invocation and its measured life-cycle."""

    inv_id: int
    function: str
    submit_time: float
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    cold: bool = False
    rejected: bool = False
    #: Execution attempts made (1 = no retries).
    attempts: int = 1
    #: True when every attempt hit an injected fault (invocation lost).
    failed: bool = False

    @property
    def latency(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    @property
    def queue_delay(self) -> Optional[float]:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time


class _Instance:
    """A warm (or warming) instance of one function."""

    __slots__ = ("busy_until", "idle_since")

    def __init__(self, now: float):
        self.busy_until = now
        self.idle_since = now


class FaaSPlatform:
    """The platform: registry, pools, router, biller."""

    def __init__(self, env: Environment,
                 config: Optional[PlatformConfig] = None,
                 fault_model: Optional[TransientErrorModel] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 retry_rng: Optional[np.random.Generator] = None):
        self.env = env
        self.config = config or PlatformConfig()
        #: Optional per-attempt transient failure model (chaos experiments).
        self.fault_model = fault_model
        #: Optional platform-side retry of faulted attempts; retries show up
        #: in billing (failed attempts bill too) and in tail latency.
        self.retry_policy = retry_policy
        self._retry_rng = retry_rng
        self.functions: dict[str, FunctionSpec] = {}
        self._pools: dict[str, list[_Instance]] = {}
        self._ids = count()
        self.invocations: list[Invocation] = []
        self.monitor = Monitor(env)
        self.billed_gb_s = 0.0
        #: GB-seconds of idle warm capacity (the provider's keep-alive cost).
        self.idle_gb_s = 0.0
        env.process(self._reaper())

    # -- management --------------------------------------------------------
    def deploy(self, spec: FunctionSpec) -> None:
        if spec.name in self.functions:
            raise ValueError(f"function {spec.name!r} already deployed")
        self.functions[spec.name] = spec
        pool = []
        for _ in range(self.config.prewarmed):
            pool.append(_Instance(self.env.now))
        self._pools[spec.name] = pool

    def undeploy(self, name: str) -> None:
        if name not in self.functions:
            raise KeyError(name)
        del self.functions[name]
        del self._pools[name]

    def warm_instances(self, name: str) -> int:
        now = self.env.now
        return sum(1 for inst in self._pools.get(name, ())
                   if inst.busy_until <= now)

    def pool_size(self, name: str) -> int:
        return len(self._pools.get(name, ()))

    # -- invocation -----------------------------------------------------------
    def invoke(self, name: str):
        """Start an invocation; returns an Event yielding the Invocation.

        From a process: ``inv = yield platform.invoke("f")``.
        """
        if name not in self.functions:
            raise KeyError(f"function {name!r} not deployed")
        inv = Invocation(inv_id=next(self._ids), function=name,
                         submit_time=self.env.now)
        self.invocations.append(inv)
        done = self.env.event()
        self.env.process(self._execute(inv, done))
        return done

    def _acquire_instance(self, name: str) -> tuple[Optional[_Instance], bool]:
        """(instance, is_cold); None if the concurrency cap rejects."""
        now = self.env.now
        pool = self._pools[name]
        # Prefer the warm instance idle the longest (stable reuse).
        warm = [i for i in pool if i.busy_until <= now]
        if warm:
            inst = min(warm, key=lambda i: i.idle_since)
            return inst, False
        limit = self.config.concurrency_limit
        if limit is not None and len(pool) >= limit:
            return None, False
        inst = _Instance(now)
        pool.append(inst)
        return inst, True

    def _execute(self, inv: Invocation, done):
        spec = self.functions[inv.function]
        max_attempts = (self.retry_policy.max_attempts
                        if self.retry_policy is not None else 1)
        attempt = 0
        while True:
            attempt += 1
            inv.attempts = attempt
            inst, cold = self._acquire_instance(inv.function)
            if inst is None:
                inv.rejected = True
                self.monitor.count("rejections", key=inv.function)
                done.succeed(inv)
                return
            inv.cold = inv.cold or cold
            setup = self.config.cold_start_s if cold else 0.0
            # Account idle time of a reused warm instance.
            if not cold:
                self.idle_gb_s += ((self.env.now - inst.idle_since)
                                   * spec.memory_gb)
            inst.busy_until = self.env.now + setup + spec.runtime_s
            if cold:
                yield self.env.timeout(setup)
            if inv.start_time is None:
                inv.start_time = self.env.now
            yield self.env.timeout(spec.runtime_s)
            inst.idle_since = self.env.now
            # Every attempt bills, faulted or not (as on real platforms).
            billed_s = spec.runtime_s + (setup if self.config.bill_cold_start
                                         else 0.0)
            self.billed_gb_s += billed_s * spec.memory_gb
            faulted = (self.fault_model is not None
                       and self.fault_model.should_fail())
            if not faulted:
                inv.finish_time = self.env.now
                self.monitor.count("invocations", key=inv.function)
                self.monitor.record(f"latency:{inv.function}", inv.latency)
                done.succeed(inv)
                return
            self.monitor.count("faults", key=inv.function)
            if attempt >= max_attempts:
                inv.failed = True
                self.monitor.count("failed_invocations", key=inv.function)
                done.succeed(inv)
                return
            self.monitor.count("retries", key=inv.function)
            yield self.env.timeout(
                self.retry_policy.backoff_s(attempt, self._retry_rng))

    def _reaper(self):
        """Reap instances idle past the keep-alive window."""
        interval = max(self.config.keep_alive_s / 4, 1.0)
        while True:
            yield self.env.timeout(interval)
            now = self.env.now
            for name, pool in self._pools.items():
                spec = self.functions[name]
                survivors = []
                for inst in pool:
                    idle = (now - inst.idle_since
                            if inst.busy_until <= now else 0.0)
                    if idle > self.config.keep_alive_s:
                        self.idle_gb_s += (self.config.keep_alive_s
                                           * spec.memory_gb)
                    else:
                        survivors.append(inst)
                # Maintain the pre-warmed floor.
                while len(survivors) < self.config.prewarmed:
                    survivors.append(_Instance(now))
                self._pools[name] = survivors

    # -- accounting -----------------------------------------------------------
    def cost(self) -> float:
        """The customer's bill (principle 2: pay only for what runs)."""
        return self.billed_gb_s * self.config.price_per_gb_s

    def cold_start_fraction(self, name: Optional[str] = None) -> float:
        pool = [i for i in self.invocations
                if not i.rejected and (name is None or i.function == name)]
        if not pool:
            return 0.0
        return sum(1 for i in pool if i.cold) / len(pool)

    def completed(self, name: Optional[str] = None) -> list[Invocation]:
        return [i for i in self.invocations
                if i.finish_time is not None
                and (name is None or i.function == name)]

    def failure_fraction(self, name: Optional[str] = None) -> float:
        """Fraction of invocations lost to faults (after any retries)."""
        pool = [i for i in self.invocations
                if name is None or i.function == name]
        if not pool:
            return 0.0
        return sum(1 for i in pool if i.failed or i.rejected) / len(pool)

    def slo_attainment(self, threshold_s: float,
                       name: Optional[str] = None) -> float:
        """Fraction of invocations that completed within ``threshold_s``.

        Failed and rejected invocations count as SLO misses — an answer
        that never arrives is worse than a slow one.
        """
        pool = [i for i in self.invocations
                if name is None or i.function == name]
        if not pool:
            return 1.0
        ok = sum(1 for i in pool
                 if i.latency is not None and i.latency <= threshold_s)
        return ok / len(pool)
