"""A FaaS platform: function lifecycle fully managed by the provider.

The model implements the paper's three serverless principles ([101]):
(1) operational logic abstracted away — callers only ``invoke``;
(2) fine-grained pay-per-use — GB-second billing per invocation;
(3) event-driven, elastically scaled — instances spawn on demand (cold
start) and are reaped after an idle keep-alive window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Optional

import numpy as np

from repro.faults.models import TransientErrorModel
from repro.faults.policies import RetryPolicy
from repro.resilience.admission import CoDelShedder, TokenBucketAdmitter
from repro.resilience.brownout import BrownoutController, ServiceMode
from repro.sim import BoundedQueue, Environment, Monitor


@dataclass(frozen=True)
class FunctionSpec:
    """A deployed function."""

    name: str
    #: Execution time on a warm instance, seconds.
    runtime_s: float
    memory_gb: float = 0.25

    def __post_init__(self):
        if self.runtime_s <= 0:
            raise ValueError("runtime_s must be positive")
        if self.memory_gb <= 0:
            raise ValueError("memory_gb must be positive")


@dataclass
class PlatformConfig:
    """Operator-side knobs of the platform."""

    cold_start_s: float = 1.5
    keep_alive_s: float = 600.0
    #: Price per GB-second of function execution.
    price_per_gb_s: float = 0.0000167
    #: Billing also counts the cold start (as real platforms' init does)?
    bill_cold_start: bool = False
    #: Hard cap on concurrent instances per function (None = unbounded).
    concurrency_limit: Optional[int] = None
    #: Instances kept pre-warmed per function (cold-start mitigation).
    prewarmed: int = 0
    #: Front-door queue depth per function when the concurrency limit is
    #: saturated. 0 keeps the historical behavior (reject immediately);
    #: > 0 lets invocations wait for an instance, bounded — overflow is
    #: rejected, never silently backlogged.
    queue_capacity: int = 0


@dataclass(slots=True)
class Invocation:
    """One function invocation and its measured life-cycle."""

    inv_id: int
    function: str
    submit_time: float
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    cold: bool = False
    rejected: bool = False
    #: True when admission control or queue-delay shedding turned the
    #: invocation away — a first-class outcome, not a vanished request.
    shed: bool = False
    #: Execution attempts made (1 = no retries).
    attempts: int = 1
    #: True when every attempt hit an injected fault (invocation lost).
    failed: bool = False

    @property
    def latency(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    @property
    def queue_delay(self) -> Optional[float]:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time


class _Instance:
    """A warm (or warming) instance of one function."""

    __slots__ = ("busy_until", "idle_since")

    def __init__(self, now: float):
        self.busy_until = now
        self.idle_since = now


class FaaSPlatform:
    """The platform: registry, pools, router, biller."""

    def __init__(self, env: Environment,
                 config: Optional[PlatformConfig] = None,
                 fault_model: Optional[TransientErrorModel] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 retry_rng: Optional[np.random.Generator] = None,
                 admitter: Optional[TokenBucketAdmitter] = None,
                 shedder: Optional[CoDelShedder] = None,
                 brownout: Optional[BrownoutController] = None,
                 tracer=None, registry=None):
        self.env = env
        self.config = config or PlatformConfig()
        if (retry_policy is not None and retry_policy.jitter > 0
                and retry_rng is None):
            raise ValueError(
                "retry_policy has jitter > 0 but retry_rng is None; pass a "
                "named RandomStreams stream (or a jitter=0.0 policy)")
        #: Optional per-attempt transient failure model (chaos experiments).
        self.fault_model = fault_model
        #: Optional platform-side retry of faulted attempts; retries show up
        #: in billing (failed attempts bill too) and in tail latency.
        self.retry_policy = retry_policy
        self._retry_rng = retry_rng
        #: Optional front-door rate limit: invocations beyond the bucket
        #: rate are shed at ``invoke()``, before they cost anything.
        self.admitter = admitter
        #: Optional CoDel-style shedder applied as queued invocations are
        #: dequeued: a request that already waited too long is shed rather
        #: than served uselessly late.
        self.shedder = shedder
        #: Optional brownout controller driven by :meth:`pressure`. In
        #: DEGRADED mode the platform sheds invocations that would pay a
        #: cold start (capacity is precious, spend it on warm work); in
        #: CRITICAL mode it sheds every new arrival.
        self.brownout = brownout
        self.functions: dict[str, FunctionSpec] = {}
        self._pools: dict[str, list[_Instance]] = {}
        self._queues: dict[str, BoundedQueue] = {}
        self._ids = count()
        self.invocations: list[Invocation] = []
        #: Optional :class:`~repro.observability.Tracer`: every invocation
        #: becomes a ``serverless.invoke`` span (status ok/shed/rejected/
        #: failed, with fault/retry/cold_start events).
        self.tracer = tracer
        if tracer is not None and tracer.env is None:
            tracer.bind(env)
        self.monitor = Monitor(env, registry=registry,
                               namespace="serverless")
        self.billed_gb_s = 0.0
        #: GB-seconds of idle warm capacity (the provider's keep-alive cost).
        self.idle_gb_s = 0.0
        env.process(self._reaper())

    # -- management --------------------------------------------------------
    def deploy(self, spec: FunctionSpec) -> None:
        if spec.name in self.functions:
            raise ValueError(f"function {spec.name!r} already deployed")
        self.functions[spec.name] = spec
        pool = []
        for _ in range(self.config.prewarmed):
            pool.append(_Instance(self.env.now))
        self._pools[spec.name] = pool
        if self.config.queue_capacity > 0:
            self._queues[spec.name] = BoundedQueue(
                self.env, self.config.queue_capacity, policy="reject")

    def undeploy(self, name: str) -> None:
        if name not in self.functions:
            raise KeyError(name)
        del self.functions[name]
        del self._pools[name]
        self._queues.pop(name, None)

    def warm_instances(self, name: str) -> int:
        now = self.env.now
        return sum(1 for inst in self._pools.get(name, ())
                   if inst.busy_until <= now)

    def pool_size(self, name: str) -> int:
        return len(self._pools.get(name, ()))

    # -- admission ---------------------------------------------------------
    def busy_instances(self, name: str) -> int:
        now = self.env.now
        return sum(1 for inst in self._pools.get(name, ())
                   if inst.busy_until > now)

    def pressure(self, name: str) -> float:
        """The overload signal the brownout controller watches.

        Below saturation it is instance utilization in [0, 1] (against the
        concurrency limit, or the current pool when unbounded). With a
        standing queue it is ``1 + head queueing delay in seconds`` — past
        saturation, *how stale* the backlog is measures how overloaded the
        platform is, which is the signal CoDel also acts on.
        """
        queue = self._queues.get(name)
        if queue is not None and len(queue):
            return 1.0 + queue.head_delay()
        busy = self.busy_instances(name)
        limit = self.config.concurrency_limit
        if limit is not None:
            return busy / limit
        pool = len(self._pools.get(name, ()))
        return busy / pool if pool else 0.0

    def _admit(self, name: str) -> bool:
        """The front door: False sheds the invocation before it costs."""
        if (self.admitter is None and self.brownout is None):
            return True
        if self.brownout is not None:
            mode = self.brownout.observe(self.pressure(name), self.env.now)
            if mode is ServiceMode.CRITICAL:
                return False
            if (mode is ServiceMode.DEGRADED
                    and self.warm_instances(name) == 0):
                # Brownout: don't pay cold starts while overloaded — spend
                # the remaining capacity on work that can run warm.
                return False
        if self.admitter is not None and not self.admitter.admit():
            return False
        return True

    # -- invocation -----------------------------------------------------------
    def invoke(self, name: str):
        """Start an invocation; returns an Event yielding the Invocation.

        From a process: ``inv = yield platform.invoke("f")``.
        """
        if name not in self.functions:
            raise KeyError(f"function {name!r} not deployed")
        inv = Invocation(inv_id=next(self._ids), function=name,
                         submit_time=self.env.now)
        self.invocations.append(inv)
        span = None
        if self.tracer is not None:
            span = self.tracer.start_span("serverless.invoke",
                                          function=name, inv_id=inv.inv_id)
        done = self.env.event()
        if not self._admit(name):
            inv.shed = True
            self.monitor.count("shed", key=name)
            self._finish_span(span, inv)
            done.succeed(inv)
            return done
        self.env.process(self._execute(inv, done, span))
        return done

    def _finish_span(self, span, inv: Invocation) -> None:
        if span is None:
            return
        status = ("shed" if inv.shed else
                  "rejected" if inv.rejected else
                  "failed" if inv.failed else "ok")
        self.tracer.end_span(span, status=status,
                             cold=inv.cold, attempts=inv.attempts)

    def _acquire_instance(self, name: str) -> tuple[Optional[_Instance], bool]:
        """(instance, is_cold); None if the concurrency cap rejects."""
        now = self.env.now
        pool = self._pools[name]
        # Prefer the warm instance idle the longest (stable reuse).
        warm = [i for i in pool if i.busy_until <= now]
        if warm:
            inst = min(warm, key=lambda i: i.idle_since)
            return inst, False
        limit = self.config.concurrency_limit
        if limit is not None and len(pool) >= limit:
            return None, False
        inst = _Instance(now)
        pool.append(inst)
        return inst, True

    def _execute(self, inv: Invocation, done, span=None):
        spec = self.functions[inv.function]
        max_attempts = (self.retry_policy.max_attempts
                        if self.retry_policy is not None else 1)
        attempt = 0
        while True:
            attempt += 1
            inv.attempts = attempt
            inst, cold = self._acquire_instance(inv.function)
            while inst is None:
                queue = self._queues.get(inv.function)
                if queue is None or not queue.offer((inv, slot := self.env.event())):
                    inv.rejected = True
                    self.monitor.count("rejections", key=inv.function)
                    self._finish_span(span, inv)
                    done.succeed(inv)
                    return
                verdict = yield slot
                if verdict == "shed":
                    inv.shed = True
                    self.monitor.count("shed", key=inv.function)
                    self._finish_span(span, inv)
                    done.succeed(inv)
                    return
                inst, cold = self._acquire_instance(inv.function)
            inv.cold = inv.cold or cold
            setup = self.config.cold_start_s if cold else 0.0
            if cold and span is not None:
                self.tracer.add_event(span, "cold_start")
            # Account idle time of a reused warm instance.
            if not cold:
                self.idle_gb_s += ((self.env.now - inst.idle_since)
                                   * spec.memory_gb)
            inst.busy_until = self.env.now + setup + spec.runtime_s
            if cold:
                yield self.env.timeout(setup)
            if inv.start_time is None:
                inv.start_time = self.env.now
            yield self.env.timeout(spec.runtime_s)
            inst.idle_since = self.env.now
            self._drain(inv.function)
            # Every attempt bills, faulted or not (as on real platforms).
            billed_s = spec.runtime_s + (setup if self.config.bill_cold_start
                                         else 0.0)
            self.billed_gb_s += billed_s * spec.memory_gb
            faulted = (self.fault_model is not None
                       and self.fault_model.should_fail())
            if not faulted:
                inv.finish_time = self.env.now
                self.monitor.count("invocations", key=inv.function)
                self.monitor.record(f"latency:{inv.function}", inv.latency)
                self._finish_span(span, inv)
                done.succeed(inv)
                return
            self.monitor.count("faults", key=inv.function)
            if span is not None:
                self.tracer.add_event(span, "fault", attempt=attempt)
            if attempt >= max_attempts:
                inv.failed = True
                self.monitor.count("failed_invocations", key=inv.function)
                self._finish_span(span, inv)
                done.succeed(inv)
                return
            self.monitor.count("retries", key=inv.function)
            if span is not None:
                self.tracer.add_event(span, "retry", attempt=attempt)
            yield self.env.timeout(
                self.retry_policy.backoff_s(attempt, self._retry_rng))

    def _has_room(self, name: str) -> bool:
        """Whether an invocation could start now (warm or cold)."""
        now = self.env.now
        pool = self._pools[name]
        if any(inst.busy_until <= now for inst in pool):
            return True
        limit = self.config.concurrency_limit
        return limit is None or len(pool) < limit

    def _drain(self, name: str) -> None:
        """Capacity freed: wake the next queued invocation (or shed it).

        Applies the CoDel shedder to each dequeued waiter — a request that
        already waited past the delay target is shed instead of served
        uselessly late, which is what keeps the queue from standing.
        """
        queue = self._queues.get(name)
        if queue is None:
            return
        while len(queue):
            if not self._has_room(name):
                return
            (_, slot), waited = queue.pop()
            if self.shedder is not None and self.shedder.should_shed(waited):
                slot.succeed("shed")
                continue
            slot.succeed("go")
            return

    def _reaper(self):
        """Reap instances idle past the keep-alive window."""
        interval = max(self.config.keep_alive_s / 4, 1.0)
        while True:
            yield self.env.timeout(interval)
            now = self.env.now
            for name, pool in self._pools.items():
                spec = self.functions[name]
                survivors = []
                for inst in pool:
                    idle = (now - inst.idle_since
                            if inst.busy_until <= now else 0.0)
                    if idle > self.config.keep_alive_s:
                        self.idle_gb_s += (self.config.keep_alive_s
                                           * spec.memory_gb)
                    else:
                        survivors.append(inst)
                # Maintain the pre-warmed floor.
                while len(survivors) < self.config.prewarmed:
                    survivors.append(_Instance(now))
                self._pools[name] = survivors
                # Reaping frees concurrency-limit headroom for queued work.
                self._drain(name)

    # -- accounting -----------------------------------------------------------
    def cost(self) -> float:
        """The customer's bill (principle 2: pay only for what runs)."""
        return self.billed_gb_s * self.config.price_per_gb_s

    def cold_start_fraction(self, name: Optional[str] = None) -> float:
        pool = [i for i in self.invocations
                if not i.rejected and not i.shed
                and (name is None or i.function == name)]
        if not pool:
            return 0.0
        return sum(1 for i in pool if i.cold) / len(pool)

    def completed(self, name: Optional[str] = None) -> list[Invocation]:
        return [i for i in self.invocations
                if i.finish_time is not None
                and (name is None or i.function == name)]

    def failure_fraction(self, name: Optional[str] = None) -> float:
        """Fraction of invocations that never produced an answer.

        Counts faults (after any retries), rejections at the concurrency
        cap, and admission-control sheds alike: to the caller they are all
        requests that got nothing back.
        """
        pool = [i for i in self.invocations
                if name is None or i.function == name]
        if not pool:
            return 0.0
        return sum(1 for i in pool
                   if i.failed or i.rejected or i.shed) / len(pool)

    def shed(self, name: Optional[str] = None) -> list[Invocation]:
        """Invocations dropped by admission control or the queue shedder."""
        return [i for i in self.invocations
                if i.shed and (name is None or i.function == name)]

    def shed_fraction(self, name: Optional[str] = None) -> float:
        pool = [i for i in self.invocations
                if name is None or i.function == name]
        if not pool:
            return 0.0
        return sum(1 for i in pool if i.shed) / len(pool)

    def slo_attainment(self, threshold_s: float,
                       name: Optional[str] = None) -> float:
        """Fraction of invocations that completed within ``threshold_s``.

        Failed, rejected, and shed invocations count as SLO misses — an
        answer that never arrives is worse than a slow one.
        """
        pool = [i for i in self.invocations
                if name is None or i.function == name]
        if not pool:
            return 1.0
        ok = sum(1 for i in pool
                 if i.latency is not None and i.latency <= threshold_s)
        return ok / len(pool)
