"""A workflow engine over the FaaS platform (the Fission Workflows analog).

Workflows are DAGs whose nodes are deployed function names; the engine
walks the DAG, invoking each function as soon as its predecessors finish —
"workflow-based serverless orchestration" (§6.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import networkx as nx

from repro.serverless.platform import FaaSPlatform, Invocation
from repro.sim import Environment


class FunctionWorkflow:
    """A named DAG of function invocations."""

    def __init__(self, name: str,
                 steps: Sequence[tuple[str, str]],
                 edges: Sequence[tuple[str, str]] = ()):
        """``steps`` are (step_id, function_name); ``edges`` are
        (step_id, step_id) precedence pairs."""
        self.name = name
        self.graph = nx.DiGraph()
        self.functions: dict[str, str] = {}
        for step_id, function in steps:
            if step_id in self.functions:
                raise ValueError(f"duplicate step {step_id!r}")
            self.functions[step_id] = function
            self.graph.add_node(step_id)
        for src, dst in edges:
            if src not in self.functions or dst not in self.functions:
                raise ValueError(f"edge ({src}, {dst}) references "
                                 "unknown step")
            self.graph.add_edge(src, dst)
        if not nx.is_directed_acyclic_graph(self.graph):
            raise ValueError(f"workflow {name}: cycle in step graph")

    def __len__(self) -> int:
        return len(self.functions)

    @classmethod
    def chain(cls, name: str, functions: Sequence[str]) -> "FunctionWorkflow":
        steps = [(f"s{i}", fn) for i, fn in enumerate(functions)]
        edges = [(f"s{i}", f"s{i+1}") for i in range(len(functions) - 1)]
        return cls(name, steps, edges)

    @classmethod
    def fan_out_fan_in(cls, name: str, head: str, middle: Sequence[str],
                       tail: str) -> "FunctionWorkflow":
        steps = [("head", head)]
        steps += [(f"m{i}", fn) for i, fn in enumerate(middle)]
        steps += [("tail", tail)]
        edges = [("head", f"m{i}") for i in range(len(middle))]
        edges += [(f"m{i}", "tail") for i in range(len(middle))]
        return cls(name, steps, edges)


@dataclass
class WorkflowRun:
    """One execution of a workflow."""

    workflow: str
    submit_time: float
    finish_time: Optional[float] = None
    invocations: dict[str, Invocation] = field(default_factory=dict)
    #: ``"running"`` until the engine settles every step, then
    #: ``"completed"`` or ``"failed"`` — a workflow always terminates.
    status: str = "running"
    #: Steps whose invocation exhausted its retries (or was shed).
    failed_steps: set[str] = field(default_factory=set)
    #: Steps never invoked because an ancestor failed.
    skipped_steps: set[str] = field(default_factory=set)

    @property
    def succeeded(self) -> bool:
        return self.status == "completed"

    @property
    def makespan(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    @property
    def critical_path_runtime(self) -> float:
        """Sum of pure runtimes along the slowest realized path — makespan
        minus orchestration and cold-start overhead."""
        return sum(
            inv.finish_time - inv.start_time
            for inv in self.invocations.values()
            if inv.finish_time is not None and inv.start_time is not None)


class WorkflowEngine:
    """Walks workflow DAGs over a platform."""

    def __init__(self, env: Environment, platform: FaaSPlatform):
        self.env = env
        self.platform = platform
        self.runs: list[WorkflowRun] = []

    def submit(self, workflow: FunctionWorkflow):
        """Run the workflow; returns an Event yielding the WorkflowRun."""
        for function in workflow.functions.values():
            if function not in self.platform.functions:
                raise KeyError(
                    f"workflow {workflow.name!r} uses undeployed function "
                    f"{function!r}")
        run = WorkflowRun(workflow=workflow.name, submit_time=self.env.now)
        self.runs.append(run)
        done = self.env.event()
        self.env.process(self._drive(workflow, run, done))
        return done

    def _drive(self, workflow: FunctionWorkflow, run: WorkflowRun, done):
        remaining_preds = {
            step: workflow.graph.in_degree(step)
            for step in workflow.graph.nodes
        }
        finished: set[str] = set()
        in_flight: dict = {}

        def settled() -> int:
            return (len(finished) + len(run.failed_steps)
                    + len(run.skipped_steps))

        def mark_failed(step: str):
            """A step is dead: every unreached descendant is skipped.

            This is what makes failure *deterministic*: the run settles
            every step (finished, failed, or skipped) and terminates —
            it never hangs waiting on steps that can no longer run.
            """
            run.failed_steps.add(step)
            for desc in nx.descendants(workflow.graph, step):
                if desc not in finished and desc not in run.failed_steps:
                    run.skipped_steps.add(desc)

        def launch_ready():
            for step, preds in remaining_preds.items():
                if (preds == 0 and step not in finished
                        and step not in in_flight
                        and step not in run.failed_steps
                        and step not in run.skipped_steps):
                    in_flight[step] = self.platform.invoke(
                        workflow.functions[step])

        launch_ready()
        while settled() < len(workflow.functions):
            if not in_flight:
                raise RuntimeError(
                    f"workflow {workflow.name}: deadlock (rejected "
                    "invocations?)")
            events = dict(in_flight)
            result = yield self.env.any_of(list(events.values()))
            for step, event in events.items():
                if event in result:
                    inv = result[event]
                    if inv.rejected:
                        raise RuntimeError(
                            f"workflow {workflow.name}: step {step} "
                            "rejected by concurrency limit")
                    run.invocations[step] = inv
                    del in_flight[step]
                    if inv.failed or inv.shed:
                        mark_failed(step)
                        continue
                    finished.add(step)
                    for succ in workflow.graph.successors(step):
                        remaining_preds[succ] -= 1
            launch_ready()
        run.finish_time = self.env.now
        run.status = "completed" if not run.failed_steps else "failed"
        done.succeed(run)
