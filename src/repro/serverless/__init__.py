"""Serverless computing and FaaS (paper §6.4, Table 7).

- :mod:`repro.serverless.platform` — a FaaS platform on the DES kernel:
  function registry, instance pools with cold starts and keep-alive,
  request routing, autoscaled concurrency, fine-grained (GB-second)
  billing — the three serverless principles of the paper's [101];
- :mod:`repro.serverless.workflow` — a Fission-Workflows-style engine
  executing function DAGs over the platform;
- :mod:`repro.serverless.durable` — durable workflow execution: completed
  steps journaled and replayed instead of re-invoked after an
  orchestrator crash, with idempotency-key dedup (effectively-once);
- :mod:`repro.serverless.refarch` — the SPEC-RG FaaS reference
  architecture ([103]): the common components of seemingly widely varying
  platforms, and platform-to-architecture mapping.
"""

from repro.serverless.platform import (
    FaaSPlatform,
    FunctionSpec,
    Invocation,
    PlatformConfig,
)
from repro.serverless.workflow import (
    FunctionWorkflow,
    WorkflowEngine,
    WorkflowRun,
)
from repro.serverless.durable import (
    DurableRun,
    DurableWorkflowEngine,
)
from repro.serverless.refarch import (
    FAAS_COMPONENTS,
    FaaSComponent,
    KNOWN_PLATFORMS,
    platform_coverage,
)

__all__ = [
    "DurableRun",
    "DurableWorkflowEngine",
    "FAAS_COMPONENTS",
    "FaaSComponent",
    "FaaSPlatform",
    "FunctionSpec",
    "FunctionWorkflow",
    "Invocation",
    "KNOWN_PLATFORMS",
    "PlatformConfig",
    "WorkflowEngine",
    "WorkflowRun",
    "platform_coverage",
]
