"""A calibrated synthetic publication corpus.

Calibration targets (from the paper's Figures 1–2 narrative):

- "design" is a common keyword in top systems venues, with a share that
  grows over the decades;
- design-article counts per 5-year block increase, with "a marked
  increase in design articles accepted for publication since 2000";
- some venues started after 1980 (censored early blocks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class Venue:
    name: str
    first_year: int
    #: Mean accepted papers per year (grows mildly over time).
    base_papers_per_year: int


#: Stylized top systems venues (start years approximate reality).
VENUES: dict[str, Venue] = {v.name: v for v in [
    Venue("ICDCS", 1979, 60),
    Venue("SOSP", 1980, 20),          # biennial in reality; simplified
    Venue("OSDI", 1994, 22),
    Venue("NSDI", 2004, 30),
    Venue("EuroSys", 2006, 30),
    Venue("HPDC", 1992, 25),
    Venue("CCGrid", 2001, 45),
    Venue("SC", 1988, 60),
]}

#: Keyword inventory with era-dependent base frequencies.
KEYWORDS: dict[str, tuple[float, float]] = {
    # keyword: (frequency in 1980, frequency in 2018) — linear in between.
    "design": (0.10, 0.38),
    "performance": (0.30, 0.45),
    "distributed": (0.25, 0.50),
    "scalability": (0.02, 0.30),
    "scheduling": (0.10, 0.18),
    "cloud": (0.00, 0.35),
    "fault-tolerance": (0.08, 0.12),
    "energy": (0.01, 0.10),
}


@dataclass
class Paper:
    venue: str
    year: int
    keywords: frozenset[str]
    is_design: bool


def design_share(year: int) -> float:
    """Calibrated share of design articles: slow growth until 2000, then
    a marked increase (a logistic ramp centered on 2003)."""
    base = 0.08 + 0.002 * max(year - 1980, 0)
    ramp = 0.25 / (1.0 + math.exp(-(year - 2003) / 3.0))
    return min(base + ramp, 0.6)


def _keyword_frequency(keyword: str, year: int) -> float:
    f0, f1 = KEYWORDS[keyword]
    alpha = (year - 1980) / (2018 - 1980)
    return f0 + (f1 - f0) * max(0.0, min(alpha, 1.0))


def generate_corpus(rng: np.random.Generator,
                    first_year: int = 1980,
                    last_year: int = 2018,
                    venues: Optional[Sequence[str]] = None) -> list[Paper]:
    """The synthetic corpus: venue × year × papers."""
    if last_year < first_year:
        raise ValueError("last_year must be >= first_year")
    venue_objs = [VENUES[name] for name in (venues or sorted(VENUES))]
    papers: list[Paper] = []
    for venue in venue_objs:
        for year in range(max(first_year, venue.first_year), last_year + 1):
            growth = 1.0 + 0.02 * (year - venue.first_year)
            n_papers = max(1, int(rng.poisson(
                venue.base_papers_per_year * growth)))
            share = design_share(year)
            for _ in range(n_papers):
                is_design = bool(rng.random() < share)
                kws = set()
                for keyword in KEYWORDS:
                    freq = _keyword_frequency(keyword, year)
                    if keyword == "design":
                        # Design papers carry the keyword far more often.
                        freq = 0.9 if is_design else freq * 0.4
                    if rng.random() < freq:
                        kws.add(keyword)
                papers.append(Paper(venue=venue.name, year=year,
                                    keywords=frozenset(kws),
                                    is_design=is_design))
    return papers
