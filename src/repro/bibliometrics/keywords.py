"""Figure 1: presence of selected keywords in top systems venues."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bibliometrics.corpus import Paper


def keyword_presence(papers: Sequence[Paper],
                     keywords: Optional[Sequence[str]] = None,
                     by: str = "venue") -> dict[str, dict[str, float]]:
    """Fraction of papers mentioning each keyword, grouped by venue or by
    decade (``by`` in {"venue", "decade"}).

    Returns ``{group: {keyword: fraction}}`` — the Figure 1 matrix.
    """
    if not papers:
        raise ValueError("empty corpus")
    if by not in ("venue", "decade"):
        raise ValueError("by must be 'venue' or 'decade'")
    if keywords is None:
        keywords = sorted({k for p in papers for k in p.keywords})

    def group_of(paper: Paper) -> str:
        if by == "venue":
            return paper.venue
        return f"{paper.year // 10 * 10}s"

    counts: dict[str, int] = {}
    hits: dict[str, dict[str, int]] = {}
    for paper in papers:
        group = group_of(paper)
        counts[group] = counts.get(group, 0) + 1
        row = hits.setdefault(group, {k: 0 for k in keywords})
        for keyword in keywords:
            if keyword in paper.keywords:
                row[keyword] += 1
    return {
        group: {k: hits[group][k] / counts[group] for k in keywords}
        for group in sorted(counts)
    }


def design_rank_among_keywords(presence: dict[str, dict[str, float]]
                               ) -> dict[str, int]:
    """Per group, the rank of 'design' among all keywords (1 = most
    frequent) — Figure 1's claim that design is a common keyword."""
    ranks = {}
    for group, row in presence.items():
        ordered = sorted(row, key=lambda k: (-row[k], k))
        ranks[group] = ordered.index("design") + 1
    return ranks
