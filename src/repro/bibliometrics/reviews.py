"""Figure 3: review-score distributions at a top venue.

The real data is confidential; the generator is calibrated to the
distributional facts the paper reports:

- scores are integers 1–4 for three aspects: overall *merit*, approach
  *quality*, and *topic* fit;
- each paper has 3+ reviewers; the reported score per aspect is the mean;
- (finding 1) design articles have a slightly better merit distribution
  (higher median, mean, IQR);
- (finding 2) a significant share of design articles still scores well
  below 3 — professionals struggle to produce and self-assess designs;
- (Fig. 3 right) topic scores are high across the board — submissions
  match the Call for Papers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.sim.monitor import summarize

ASPECTS = ("merit", "quality", "topic")


@dataclass(frozen=True)
class Review:
    merit: int
    quality: int
    topic: int

    def __post_init__(self):
        for aspect in ASPECTS:
            value = getattr(self, aspect)
            if not 1 <= value <= 4:
                raise ValueError(f"{aspect} score {value} outside 1..4")


@dataclass
class ReviewedPaper:
    paper_id: int
    is_design: bool
    reviews: list[Review]
    accepted: bool = False

    def score(self, aspect: str) -> float:
        if aspect not in ASPECTS:
            raise KeyError(f"unknown aspect {aspect!r}")
        return float(np.mean([getattr(r, aspect) for r in self.reviews]))


def _sample_score(rng: np.random.Generator, mean: float,
                  spread: float = 0.8) -> int:
    raw = rng.normal(mean, spread)
    return int(np.clip(round(raw), 1, 4))


def generate_review_corpus(rng: np.random.Generator,
                           n_papers: int = 500,
                           design_fraction: float = 0.35,
                           reviewers_range: tuple[int, int] = (3, 5),
                           accept_rate: float = 0.2) -> list[ReviewedPaper]:
    """The synthetic review corpus with the calibrated offsets."""
    if not 0 <= design_fraction <= 1:
        raise ValueError("design_fraction must be in [0, 1]")
    papers = []
    for pid in range(n_papers):
        is_design = bool(rng.random() < design_fraction)
        # Calibration: design papers get a small merit/quality bump;
        # everyone matches the topic well.
        merit_mean = 2.35 if is_design else 2.2
        quality_mean = 2.3 if is_design else 2.2
        topic_mean = 3.3
        # Paper-level latent quality shifts all its reviews together.
        latent = float(rng.normal(0.0, 0.45))
        n_reviews = int(rng.integers(reviewers_range[0],
                                     reviewers_range[1] + 1))
        reviews = [
            Review(
                merit=_sample_score(rng, merit_mean + latent),
                quality=_sample_score(rng, quality_mean + latent),
                topic=_sample_score(rng, topic_mean + latent * 0.3),
            )
            for _ in range(n_reviews)
        ]
        papers.append(ReviewedPaper(paper_id=pid, is_design=is_design,
                                    reviews=reviews))
    # Accept the top papers by merit (a top-tier venue's selectivity).
    ranked = sorted(papers, key=lambda p: -p.score("merit"))
    for paper in ranked[: int(round(accept_rate * n_papers))]:
        paper.accepted = True
    return papers


def review_score_distributions(papers: Sequence[ReviewedPaper]
                               ) -> dict[str, dict[str, dict[str, float]]]:
    """The Figure 3 statistics: per aspect, per group (design /
    non-design / accepted / rejected), the violin summary (mean, median,
    IQR, whiskers)."""
    if not papers:
        raise ValueError("no papers")
    groups = {
        "design": [p for p in papers if p.is_design],
        "non-design": [p for p in papers if not p.is_design],
        "accepted": [p for p in papers if p.accepted],
        "rejected": [p for p in papers if not p.accepted],
    }
    result: dict[str, dict[str, dict[str, float]]] = {}
    for aspect in ASPECTS:
        result[aspect] = {
            group: summarize([p.score(aspect) for p in members])
            for group, members in groups.items() if members
        }
    return result


def score_findings(papers: Sequence[ReviewedPaper]) -> dict[str, object]:
    """Extract the paper's two numbered findings from a corpus.

    Finding 1: design articles have a slightly better merit distribution
    (median and mean). Finding 2: a significant percentage of design
    articles score well below 3 on merit or quality.
    """
    dists = review_score_distributions(papers)
    design_merit = dists["merit"].get("design", {})
    plain_merit = dists["merit"].get("non-design", {})
    design = [p for p in papers if p.is_design]
    below3 = [
        p for p in design
        if p.score("merit") < 2.75 or p.score("quality") < 2.75
    ]
    return {
        "finding1_design_merit_better": (
            design_merit.get("mean", 0) >= plain_merit.get("mean", 0)
            and design_merit.get("median", 0) >= plain_merit.get("median", 0)
        ),
        "design_merit_mean": design_merit.get("mean", float("nan")),
        "non_design_merit_mean": plain_merit.get("mean", float("nan")),
        "finding2_share_below_3": len(below3) / len(design) if design
        else float("nan"),
        "topic_scores_high": all(
            stats["median"] >= 3.0
            for stats in dists["topic"].values()),
    }
