"""Figure 2: design-article counts per venue per 5-year block since 1980."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.bibliometrics.corpus import VENUES, Paper


@dataclass(frozen=True)
class FiveYearBlock:
    start: int

    @property
    def label(self) -> str:
        return f"{self.start}-{self.start + 4}"

    def contains(self, year: int) -> bool:
        return self.start <= year <= self.start + 4


def blocks_since(first_year: int = 1980,
                 last_year: int = 2018) -> list[FiveYearBlock]:
    return [FiveYearBlock(start)
            for start in range(first_year, last_year + 1, 5)]


def design_articles_per_block(papers: Sequence[Paper],
                              first_year: int = 1980,
                              last_year: int = 2018
                              ) -> dict[str, dict[str, Optional[int]]]:
    """The Figure 2 matrix: ``{venue: {block_label: count-or-None}}``.

    ``None`` marks censored blocks — blocks fully before the venue
    existed ("some of the venues have started earlier, so for them only
    censured data is available"). The last block is typically incomplete
    (it simply counts what exists, as the figure notes).
    """
    if not papers:
        raise ValueError("empty corpus")
    blocks = blocks_since(first_year, last_year)
    venues = sorted({p.venue for p in papers})
    table: dict[str, dict[str, Optional[int]]] = {}
    for venue in venues:
        venue_first = VENUES[venue].first_year if venue in VENUES else (
            min(p.year for p in papers if p.venue == venue))
        row: dict[str, Optional[int]] = {}
        for block in blocks:
            if block.start + 4 < venue_first:
                row[block.label] = None  # censored: venue did not exist
                continue
            row[block.label] = sum(
                1 for p in papers
                if p.venue == venue and p.is_design
                and block.contains(p.year))
        table[venue] = row
    return table


def trend_is_increasing(row: dict[str, Optional[int]],
                        min_blocks: int = 4) -> bool:
    """Whether a venue shows the accumulating-design-articles trend:
    the mean of the later half of (non-censored, complete) blocks exceeds
    the mean of the earlier half."""
    counts = [v for v in row.values() if v is not None]
    if len(counts) < min_blocks:
        return False
    # Drop the final (incomplete) block from the comparison.
    counts = counts[:-1]
    half = len(counts) // 2
    if half == 0:
        return False
    early = sum(counts[:half]) / half
    late = sum(counts[half:]) / (len(counts) - half)
    return late > early


def marked_increase_since(papers: Sequence[Paper],
                          pivot_year: int = 2000) -> float:
    """Ratio of yearly design-article volume after vs. before the pivot —
    the 'marked increase ... since 2000' observation."""
    before_years = {p.year for p in papers if p.year < pivot_year}
    after_years = {p.year for p in papers if p.year >= pivot_year}
    if not before_years or not after_years:
        raise ValueError("corpus must span the pivot year")
    before = sum(1 for p in papers if p.is_design and p.year < pivot_year)
    after = sum(1 for p in papers if p.is_design and p.year >= pivot_year)
    return (after / len(after_years)) / max(before / len(before_years),
                                            1e-9)
