"""Meta-scientific evidence (paper §2, Figures 1–3).

The paper's first evidence class is bibliometric: keyword presence in top
venues (Fig. 1), counts of design articles per 5-year block since 1980
(Fig. 2), and distributions of review scores for design vs. non-design
submissions at an anonymized A-ranked conference (Fig. 3).

The real corpora are proprietary (DBLP scrapes, confidential review
data); this package substitutes calibrated synthetic corpora — the
analysis code is identical to what the real data would need, and the
generators are calibrated to the trends the paper reports (see
DESIGN.md's substitution table).
"""

from repro.bibliometrics.corpus import (
    Paper,
    VENUES,
    Venue,
    generate_corpus,
)
from repro.bibliometrics.keywords import keyword_presence
from repro.bibliometrics.trends import (
    FiveYearBlock,
    design_articles_per_block,
)
from repro.bibliometrics.reviews import (
    Review,
    ReviewedPaper,
    generate_review_corpus,
    review_score_distributions,
    score_findings,
)

__all__ = [
    "FiveYearBlock",
    "Paper",
    "Review",
    "ReviewedPaper",
    "VENUES",
    "Venue",
    "design_articles_per_block",
    "generate_corpus",
    "generate_review_corpus",
    "keyword_presence",
    "review_score_distributions",
    "score_findings",
]
