"""Prediction-driven cloud provisioning for MMOGs ([71], [87]).

The paper's design: predict the player load ahead of the cloud's
provisioning delay, provision server capacity to meet it, and measure the
NFR cost of mispredictions — under-provisioning degrades the game
(players above capacity), over-provisioning wastes money.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np


class LoadPredictor:
    """Base class: predict load ``horizon`` samples ahead of history."""

    name = "abstract"

    def predict(self, history: Sequence[float], horizon: int = 1) -> float:
        raise NotImplementedError


class LastValuePredictor(LoadPredictor):
    """Naive persistence: the future equals the present."""

    name = "last-value"

    def predict(self, history: Sequence[float], horizon: int = 1) -> float:
        if not len(history):
            return 0.0
        return float(history[-1])


class MovingAveragePredictor(LoadPredictor):
    """Mean of the last ``window`` samples."""

    name = "moving-average"

    def __init__(self, window: int = 6):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window

    def predict(self, history: Sequence[float], horizon: int = 1) -> float:
        if not len(history):
            return 0.0
        tail = list(history)[-self.window:]
        return float(np.mean(tail))


class TrendPredictor(LoadPredictor):
    """Linear extrapolation over the last ``window`` samples — the class of
    predictor the paper's MMOG provisioning used to stay ahead of the
    diurnal ramp."""

    name = "trend"

    def __init__(self, window: int = 6):
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window

    def predict(self, history: Sequence[float], horizon: int = 1) -> float:
        hist = list(history)
        if len(hist) < 2:
            return hist[-1] if hist else 0.0
        tail = np.asarray(hist[-self.window:], dtype=float)
        x = np.arange(tail.size)
        slope, intercept = np.polyfit(x, tail, 1)
        return float(max(0.0, intercept + slope * (tail.size - 1 + horizon)))


@dataclass
class ProvisioningResult:
    """Quality/cost of one provisioning policy run."""

    predictor: str
    players_per_server: int
    step_s: float
    demand: np.ndarray
    provisioned: np.ndarray  # servers online at each step
    server_hours: float = 0.0

    @property
    def capacity(self) -> np.ndarray:
        return self.provisioned * self.players_per_server

    @property
    def underprovisioned_fraction(self) -> float:
        """Fraction of time demand exceeded capacity (NFR violations)."""
        return float(np.mean(self.demand > self.capacity))

    @property
    def unserved_player_time(self) -> float:
        """Player-seconds above capacity (the degraded-experience mass)."""
        excess = np.maximum(self.demand - self.capacity, 0.0)
        return float(excess.sum() * self.step_s)

    @property
    def overprovisioned_capacity_time(self) -> float:
        """Server-player-seconds idle above demand (the waste mass)."""
        slack = np.maximum(self.capacity - self.demand, 0.0)
        return float(slack.sum() * self.step_s)

    @property
    def mean_utilization(self) -> float:
        cap = self.capacity
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(cap > 0, np.minimum(self.demand, cap) / cap, 0.0)
        return float(util.mean())


def run_provisioning(demand: Sequence[float],
                     predictor: LoadPredictor,
                     players_per_server: int = 100,
                     step_s: float = 300.0,
                     provisioning_delay_steps: int = 2,
                     headroom: float = 1.1,
                     min_servers: int = 1,
                     tracer=None, registry=None) -> ProvisioningResult:
    """Replay a demand signal against a prediction-driven policy.

    At each step the policy predicts demand ``provisioning_delay_steps``
    ahead, requests ``ceil(pred × headroom / players_per_server)`` servers,
    and the fleet reaches that size only after the delay — capturing the
    cloud's elasticity limit that the paper's experiments quantify.
    """
    if players_per_server <= 0:
        raise ValueError("players_per_server must be positive")
    if headroom < 1.0:
        raise ValueError("headroom must be >= 1.0")
    demand_arr = np.asarray(demand, dtype=float)
    n = demand_arr.size
    # This domain is time-stepped (no DES environment), so spans and
    # metric samples carry explicit times: step i happens at i * step_s.
    monitor = None
    if registry is not None:
        from repro.sim import Monitor
        monitor = Monitor(registry=registry, namespace="mmog")
    span = None
    if tracer is not None:
        span = tracer.start_span("mmog.provisioning", t=0.0,
                                 predictor=predictor.name, steps=n)
    provisioned = np.zeros(n)
    pending: list[tuple[int, int]] = []  # (effective_step, target)
    current = min_servers
    for i in range(n):
        # Apply provisioning decisions that have matured.
        for at, target in list(pending):
            if at <= i:
                current = target
                if span is not None:
                    tracer.add_event(span, "resize", t=i * step_s,
                                     servers=target)
                pending.remove((at, target))
        provisioned[i] = current
        if monitor is not None:
            monitor.record("demand", float(demand_arr[i]), time=i * step_s)
            monitor.record("provisioned", current, time=i * step_s)
        prediction = predictor.predict(demand_arr[: i + 1],
                                       horizon=provisioning_delay_steps)
        target = max(min_servers,
                     math.ceil(prediction * headroom / players_per_server))
        pending.append((i + provisioning_delay_steps, target))
    server_hours = float(provisioned.sum() * step_s / 3600.0)
    if span is not None:
        tracer.end_span(span, t=n * step_s, server_hours=server_hours)
    return ProvisioningResult(
        predictor=predictor.name, players_per_server=players_per_server,
        step_s=step_s, demand=demand_arr, provisioned=provisioned,
        server_hours=server_hours)


@dataclass
class BrownoutProvisioningResult(ProvisioningResult):
    """Provisioning run with a brownout controller riding the fleet.

    ``modes[i]`` is the :class:`~repro.resilience.ServiceMode` value at
    step ``i``; ``effective_capacity`` is the stretched capacity after
    shedding world-update fidelity; ``fidelity[i]`` is the fraction of
    world updates delivered.
    """

    modes: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=int))
    effective_capacity: np.ndarray = field(
        default_factory=lambda: np.zeros(0))
    fidelity: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: Player-seconds turned away at the door during CRITICAL steps.
    refused_player_time: float = 0.0
    #: Player-seconds above even the stretched capacity outside CRITICAL.
    unserved_effective_player_time: float = 0.0

    @property
    def mean_update_fidelity(self) -> float:
        """Demand-weighted world-update fidelity (what players felt)."""
        total = float(self.demand.sum())
        if total <= 0:
            return 1.0
        return float((self.fidelity * self.demand).sum() / total)

    @property
    def degraded_fraction(self) -> float:
        """Fraction of steps spent out of NORMAL mode."""
        if not self.modes.size:
            return 0.0
        return float(np.mean(self.modes > 0))


def run_brownout_provisioning(
        demand: Sequence[float],
        predictor: LoadPredictor,
        controller,
        players_per_server: int = 100,
        step_s: float = 300.0,
        provisioning_delay_steps: int = 2,
        headroom: float = 1.1,
        min_servers: int = 1,
        degraded_capacity_factor: float = 1.5,
        critical_capacity_factor: float = 2.0,
        fidelity_degraded: float = 0.6,
        fidelity_critical: float = 0.35,
        tracer=None, registry=None) -> BrownoutProvisioningResult:
    """Prediction-driven provisioning with brownout while elasticity lags.

    The elastic fleet still takes ``provisioning_delay_steps`` to grow —
    the flash-crowd gap the paper's MMOG studies quantify. Instead of
    degrading silently, the ``controller`` (a
    :class:`repro.resilience.BrownoutController`) watches instantaneous
    pressure (demand over nominal capacity) each step:

    - DEGRADED: shed non-essential world updates (fidelity drops to
      ``fidelity_degraded``), which stretches each server to
      ``degraded_capacity_factor`` times its nominal player count;
    - CRITICAL: minimal updates only (``fidelity_critical``), capacity
      stretched by ``critical_capacity_factor`` — and players beyond even
      that are *refused* at the door rather than admitted to an unplayable
      world.

    Refusing players is the last resort; the whole point of brownout is
    how much player time the fidelity ladder saves before that.
    """
    if degraded_capacity_factor < 1.0 or critical_capacity_factor < 1.0:
        raise ValueError("capacity factors must be >= 1.0")
    if not 0.0 < fidelity_critical <= fidelity_degraded <= 1.0:
        raise ValueError(
            "need 0 < fidelity_critical <= fidelity_degraded <= 1")
    base = run_provisioning(
        demand, predictor, players_per_server=players_per_server,
        step_s=step_s, provisioning_delay_steps=provisioning_delay_steps,
        headroom=headroom, min_servers=min_servers,
        tracer=tracer, registry=registry)
    monitor = None
    if registry is not None:
        from repro.sim import Monitor
        monitor = Monitor(registry=registry, namespace="mmog")
    n = base.demand.size
    span = None
    if tracer is not None:
        span = tracer.start_span("mmog.brownout", t=0.0,
                                 predictor=predictor.name, steps=n)
    modes = np.zeros(n, dtype=int)
    effective = np.zeros(n)
    fidelity = np.ones(n)
    refused = 0.0
    unserved_eff = 0.0
    prev_mode = 0
    for i in range(n):
        nominal_cap = base.provisioned[i] * players_per_server
        pressure = base.demand[i] / nominal_cap if nominal_cap > 0 else 1.0
        mode = controller.observe(pressure, now=i * step_s)
        modes[i] = mode.value
        if span is not None and mode.value != prev_mode:
            tracer.add_event(span, "mode_change", t=i * step_s,
                             mode=mode.name)
        prev_mode = mode.value
        if monitor is not None:
            monitor.record("fidelity",
                           (fidelity_critical if mode.value >= 2 else
                            fidelity_degraded if mode.value == 1 else 1.0),
                           time=i * step_s)
        if mode.value >= 2:  # CRITICAL
            factor, fid = critical_capacity_factor, fidelity_critical
        elif mode.value == 1:  # DEGRADED
            factor, fid = degraded_capacity_factor, fidelity_degraded
        else:
            factor, fid = 1.0, 1.0
        effective[i] = nominal_cap * factor
        fidelity[i] = fid
        excess = max(0.0, float(base.demand[i]) - effective[i])
        if mode.value >= 2:
            refused += excess * step_s
        else:
            unserved_eff += excess * step_s
    controller.finish(n * step_s)
    if monitor is not None and refused > 0:
        monitor.count("refused_player_time_s", amount=int(refused))
    if span is not None:
        tracer.end_span(span, t=n * step_s,
                        degraded_steps=int(np.sum(modes > 0)))
    return BrownoutProvisioningResult(
        predictor=f"{base.predictor}+brownout",
        players_per_server=players_per_server, step_s=step_s,
        demand=base.demand, provisioned=base.provisioned,
        server_hours=base.server_hours, modes=modes,
        effective_capacity=effective, fidelity=fidelity,
        refused_player_time=refused,
        unserved_effective_player_time=unserved_eff)


def static_provisioning(demand: Sequence[float],
                        players_per_server: int = 100,
                        step_s: float = 300.0,
                        percentile: float = 100.0) -> ProvisioningResult:
    """The non-elastic baseline: size the fleet for a demand percentile."""
    demand_arr = np.asarray(demand, dtype=float)
    target = math.ceil(
        np.percentile(demand_arr, percentile) / players_per_server)
    provisioned = np.full(demand_arr.size, max(target, 1), dtype=float)
    return ProvisioningResult(
        predictor=f"static-p{percentile:g}",
        players_per_server=players_per_server, step_s=step_s,
        demand=demand_arr, provisioned=provisioned,
        server_hours=float(provisioned.sum() * step_s / 3600.0))
