"""POGGI-style procedural game-content generation ([78]).

POGGI generated puzzle content at scale on grids: workers generate
candidate puzzle instances, grade their difficulty by solving them, and
keep instances matching the requested difficulty band. Here the puzzle is
the classic 3x3 sliding puzzle; difficulty is the optimal solution length
found by breadth-first search.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

SOLVED = (1, 2, 3, 4, 5, 6, 7, 8, 0)  # 0 is the blank
_MOVES = {
    0: (1, 3), 1: (0, 2, 4), 2: (1, 5),
    3: (0, 4, 6), 4: (1, 3, 5, 7), 5: (2, 4, 8),
    6: (3, 7), 7: (4, 6, 8), 8: (5, 7),
}


@dataclass(frozen=True)
class PuzzleInstance:
    """One generated puzzle with its graded difficulty."""

    board: tuple[int, ...]
    difficulty: int  # optimal moves to solve

    @property
    def solved(self) -> bool:
        return self.board == SOLVED


def _neighbors(board: tuple[int, ...]):
    blank = board.index(0)
    for target in _MOVES[blank]:
        new = list(board)
        new[blank], new[target] = new[target], new[blank]
        yield tuple(new)


def puzzle_difficulty(board: Sequence[int],
                      max_depth: int = 24) -> Optional[int]:
    """Optimal solution length by BFS; None if deeper than ``max_depth``
    (or unsolvable — half of all permutations)."""
    board = tuple(board)
    if sorted(board) != list(range(9)):
        raise ValueError("board must be a permutation of 0..8")
    if board == SOLVED:
        return 0
    seen = {board}
    frontier = deque([(board, 0)])
    while frontier:
        state, depth = frontier.popleft()
        if depth >= max_depth:
            continue
        for nxt in _neighbors(state):
            if nxt in seen:
                continue
            if nxt == SOLVED:
                return depth + 1
            seen.add(nxt)
            frontier.append((nxt, depth + 1))
    return None


def scramble(rng: np.random.Generator, walk_length: int
             ) -> tuple[int, ...]:
    """Random walk from the solved state (always solvable)."""
    board = SOLVED
    prev = None
    for _ in range(walk_length):
        options = [b for b in _neighbors(board) if b != prev]
        prev = board
        board = options[int(rng.integers(0, len(options)))]
    return board


def generate_puzzles(rng: np.random.Generator,
                     count: int,
                     difficulty_band: tuple[int, int] = (8, 16),
                     max_attempts: int = 10_000) -> list[PuzzleInstance]:
    """Generate ``count`` puzzles whose optimal length lies in the band.

    The generate-and-grade loop is the POGGI core; the rejection rate is
    what made distributed generation necessary at scale.
    """
    lo, hi = difficulty_band
    if lo < 1 or hi < lo:
        raise ValueError("invalid difficulty band")
    puzzles: list[PuzzleInstance] = []
    attempts = 0
    while len(puzzles) < count and attempts < max_attempts:
        attempts += 1
        board = scramble(rng, walk_length=int(rng.integers(lo, 2 * hi)))
        difficulty = puzzle_difficulty(board, max_depth=hi)
        if difficulty is not None and lo <= difficulty <= hi:
            puzzles.append(PuzzleInstance(board=board,
                                          difficulty=difficulty))
    if len(puzzles) < count:
        raise RuntimeError(
            f"only generated {len(puzzles)}/{count} puzzles in "
            f"{max_attempts} attempts")
    return puzzles


def generation_rejection_rate(rng: np.random.Generator,
                              difficulty_band: tuple[int, int],
                              samples: int = 200) -> float:
    """Fraction of generated candidates that fall outside the band."""
    lo, hi = difficulty_band
    rejected = 0
    for _ in range(samples):
        board = scramble(rng, walk_length=int(rng.integers(lo, 2 * hi)))
        difficulty = puzzle_difficulty(board, max_depth=hi)
        if difficulty is None or not lo <= difficulty <= hi:
            rejected += 1
    return rejected / samples
