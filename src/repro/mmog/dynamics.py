"""Player population dynamics: the longitudinal studies of Table 6.

The [71] (Runescape/MMORPG), [72] (MOBA), and [73] (online-social) studies
uncovered short-term (diurnal) and long-term (growth/decline) dynamics and
genre-specific session behaviour. :data:`GENRE_PROFILES` encodes the
stylized differences; :func:`simulate_population` produces the population
signal the provisioning experiments consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.workload.arrivals import DiurnalArrivals


@dataclass(frozen=True)
class GenreProfile:
    """Stylized dynamics of one game genre."""

    name: str
    #: Mean session length, seconds.
    mean_session_s: float
    #: Lognormal sigma of session length.
    session_sigma: float
    #: Diurnal amplitude of arrivals in [0, 1].
    diurnal_amplitude: float
    #: Long-term daily growth rate (can be negative: declining title).
    daily_growth: float
    #: Weekend arrival multiplier.
    weekend_boost: float


GENRE_PROFILES: dict[str, GenreProfile] = {
    # MMORPGs: long sessions, strong diurnal cycle, steady growth.
    "mmorpg": GenreProfile("mmorpg", mean_session_s=2.5 * 3600,
                           session_sigma=0.9, diurnal_amplitude=0.8,
                           daily_growth=0.004, weekend_boost=1.4),
    # MOBAs: match-length sessions, very strong evening peaks.
    "moba": GenreProfile("moba", mean_session_s=40 * 60,
                         session_sigma=0.4, diurnal_amplitude=0.9,
                         daily_growth=0.008, weekend_boost=1.6),
    # Online-social games: short, frequent sessions, flatter cycle.
    "social": GenreProfile("social", mean_session_s=12 * 60,
                           session_sigma=0.6, diurnal_amplitude=0.5,
                           daily_growth=0.012, weekend_boost=1.1),
    # A declining classic title.
    "declining": GenreProfile("declining", mean_session_s=2 * 3600,
                              session_sigma=0.9, diurnal_amplitude=0.8,
                              daily_growth=-0.01, weekend_boost=1.3),
}


@dataclass
class PopulationTrace:
    """Concurrent-player signal sampled on a regular grid."""

    genre: str
    times: np.ndarray
    population: np.ndarray
    arrivals: list[float] = field(default_factory=list)

    @property
    def peak(self) -> float:
        return float(self.population.max())

    @property
    def trough(self) -> float:
        return float(self.population.min())

    @property
    def peak_to_trough(self) -> float:
        return self.peak / max(self.trough, 1.0)

    def daily_peaks(self) -> np.ndarray:
        """Peak concurrent players per day (long-term trend signal)."""
        day = 86400.0
        n_days = int(math.ceil(self.times[-1] / day)) if len(self.times) else 0
        peaks = []
        for d in range(n_days):
            mask = (self.times >= d * day) & (self.times < (d + 1) * day)
            if mask.any():
                peaks.append(float(self.population[mask].max()))
        return np.asarray(peaks)

    def long_term_growth(self) -> float:
        """Fitted daily growth rate of the log of daily peaks."""
        peaks = self.daily_peaks()
        if peaks.size < 3:
            return float("nan")
        days = np.arange(peaks.size)
        valid = peaks > 0
        slope = np.polyfit(days[valid], np.log(peaks[valid]), 1)[0]
        return float(slope)


def simulate_population(rng: np.random.Generator,
                        genre: str = "mmorpg",
                        days: int = 7,
                        base_arrivals_per_s: float = 0.05,
                        sample_step_s: float = 300.0) -> PopulationTrace:
    """Simulate session arrivals/departures; return the population signal.

    Arrivals follow a diurnal non-homogeneous Poisson process whose base
    rate compounds daily at the genre's growth rate (and gets the weekend
    boost on days 5-6 of each week); sessions last lognormal durations.
    """
    if genre not in GENRE_PROFILES:
        raise KeyError(f"unknown genre {genre!r}; known: "
                       f"{sorted(GENRE_PROFILES)}")
    profile = GENRE_PROFILES[genre]
    day = 86400.0
    arrivals: list[float] = []
    for d in range(days):
        rate = base_arrivals_per_s * (1 + profile.daily_growth) ** d
        if d % 7 in (5, 6):
            rate *= profile.weekend_boost
        process = DiurnalArrivals(
            base_rate=rate, rng=rng,
            amplitude=profile.diurnal_amplitude, period_s=day,
            start=d * day)
        arrivals.extend(t for t in process.times((d + 1) * day))
    arrivals.sort()
    mu = math.log(profile.mean_session_s) - profile.session_sigma**2 / 2
    durations = rng.lognormal(mu, profile.session_sigma,
                              size=len(arrivals))
    departures = np.asarray(arrivals) + durations
    grid = np.arange(0.0, days * day + sample_step_s / 2, sample_step_s)
    starts = np.searchsorted(np.asarray(arrivals), grid, side="right")
    ends = np.searchsorted(np.sort(departures), grid, side="right")
    population = (starts - ends).astype(float)
    return PopulationTrace(genre=genre, times=grid, population=population,
                           arrivals=arrivals)
