"""RTS scalability: RTSenv, points of interest, Area of Simulation, Mirror.

The [76] discovery: RTS compute cost depends not just on unit count but on
*interactive details* — where units are and how many actionable items share
a screen. Replays showed RTS games have (i) multiple points of interest,
(ii) tens of carefully-managed entities at some, (iii) hundreds of casually
managed entities elsewhere. The Area-of-Simulation technique ([81])
exploits this: full-fidelity simulation only near points of interest,
cheap aggregate simulation elsewhere. Mirror ([82]) offloads part of the
frame computation to the cloud.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class PointOfInterest:
    """A battle or staging area the player attends to, with its entities."""

    name: str
    entities: int
    #: Micro-managed POIs need per-entity pairwise interaction checks.
    micromanaged: bool = True


@dataclass
class RTSWorkload:
    """One match state: points of interest plus background entities."""

    pois: list[PointOfInterest]
    background_entities: int = 0

    @property
    def total_entities(self) -> int:
        return self.background_entities + sum(p.entities for p in self.pois)


#: Cost constants, in seconds of frame time on a reference machine.
#: Calibrated so a ~100-entity uniform melee sits at the 30 Hz budget —
#: the scalability wall RTSenv locates.
PAIRWISE_COST = 2.0e-6     # per entity-pair inside a simulated area
ENTITY_COST = 2.0e-4       # per entity baseline (pathing, state)
AGGREGATE_COST = 1.0e-5    # per entity under aggregate (low-fidelity) sim


def rts_frame_cost(workload: RTSWorkload,
                   uniform_fidelity: bool = True) -> float:
    """Frame cost under uniform full-fidelity simulation.

    Pairwise interactions are computed globally when ``uniform_fidelity``
    — the cost model that fails to scale in RTSenv's sweeps.
    """
    n = workload.total_entities
    if uniform_fidelity:
        return ENTITY_COST * n + PAIRWISE_COST * n * (n - 1) / 2
    # Fidelity only inside POIs (the Area-of-Simulation accounting).
    cost = AGGREGATE_COST * workload.background_entities
    for poi in workload.pois:
        m = poi.entities
        cost += ENTITY_COST * m
        if poi.micromanaged:
            cost += PAIRWISE_COST * m * (m - 1) / 2
    return cost


@dataclass
class AreaOfSimulation:
    """The [81] technique: full simulation near POIs, aggregate elsewhere."""

    workload: RTSWorkload

    @property
    def full_cost(self) -> float:
        return rts_frame_cost(self.workload, uniform_fidelity=True)

    @property
    def aos_cost(self) -> float:
        return rts_frame_cost(self.workload, uniform_fidelity=False)

    @property
    def speedup(self) -> float:
        return self.full_cost / max(self.aos_cost, 1e-12)

    def max_supported_entities(self, budget: float,
                               frame_hz: float = 30.0) -> int:
        """Background entities supportable within a per-second budget."""
        per_frame = budget / frame_hz
        poi_cost = rts_frame_cost(
            RTSWorkload(pois=self.workload.pois, background_entities=0),
            uniform_fidelity=False)
        headroom = per_frame - poi_cost
        if headroom <= 0:
            return 0
        return int(headroom / AGGREGATE_COST)


@dataclass
class MirrorOffload:
    """The [82] mirroring architecture: offload a fraction of frame work.

    The mobile device computes ``1 - offload_fraction`` of the frame; the
    cloud mirror computes the rest, costing one network round trip. Offload
    pays when device frame time exceeds RTT + cloud time.
    """

    device_speed: float = 1.0     # work units per second
    cloud_speed: float = 10.0
    rtt_s: float = 0.05

    def frame_time(self, frame_cost: float,
                   offload_fraction: float) -> float:
        if not 0 <= offload_fraction <= 1:
            raise ValueError("offload_fraction must be in [0, 1]")
        local = frame_cost * (1 - offload_fraction) / self.device_speed
        if offload_fraction == 0:
            return local
        remote = frame_cost * offload_fraction / self.cloud_speed + self.rtt_s
        return max(local, remote)

    def best_offload(self, frame_cost: float,
                     grid: int = 101) -> tuple[float, float]:
        """(fraction, frame_time) minimizing frame time."""
        fractions = np.linspace(0, 1, grid)
        times = [self.frame_time(frame_cost, float(f)) for f in fractions]
        best = int(np.argmin(times))
        return float(fractions[best]), float(times[best])


def replay_derived_workload(rng: np.random.Generator,
                            n_pois: Optional[int] = None
                            ) -> RTSWorkload:
    """A workload with the replay-study shape ([81]): a few micromanaged
    POIs of tens of entities, more casual POIs of hundreds, plus
    background units."""
    n_pois = n_pois if n_pois is not None else int(rng.integers(2, 6))
    pois = []
    for i in range(n_pois):
        if rng.random() < 0.5:
            pois.append(PointOfInterest(
                f"battle-{i}", entities=int(rng.integers(10, 50)),
                micromanaged=True))
        else:
            pois.append(PointOfInterest(
                f"staging-{i}", entities=int(rng.integers(100, 400)),
                micromanaged=False))
    return RTSWorkload(pois=pois,
                       background_entities=int(rng.integers(200, 1000)))


def rtsenv_sweep(entity_counts: Sequence[int],
                 frame_budget: float = 1 / 30.0) -> list[dict[str, float]]:
    """The RTSenv experiment: frame cost vs. unit count, all units in one
    uniform melee. Returns rows with cost and whether the frame budget (a
    playable 30 Hz) is blown — locating the scalability wall."""
    rows = []
    for n in entity_counts:
        workload = RTSWorkload(
            pois=[PointOfInterest("melee", entities=int(n))],
            background_entities=0)
        cost = rts_frame_cost(workload, uniform_fidelity=True)
        rows.append({
            "entities": float(n),
            "frame_cost": cost,
            "playable": float(cost <= frame_budget),
        })
    return rows
