"""Toxicity detection in multiplayer chat ([77]).

A lexicon-plus-context detector over synthetic chat: profanity and slurs
score base toxicity, amplified by shouting, repetition, and targeting
other players — the feature family the paper's study used. A generator
produces labelled synthetic chat with planted toxic players so detector
quality is measurable (precision/recall).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

#: A deliberately mild stand-in lexicon (scores in (0, 1]).
TOXIC_LEXICON: dict[str, float] = {
    "noob": 0.3, "trash": 0.5, "idiot": 0.7, "loser": 0.5, "garbage": 0.5,
    "uninstall": 0.6, "report": 0.2, "worst": 0.3, "useless": 0.5,
    "hate": 0.6, "stupid": 0.6, "pathetic": 0.6, "clown": 0.4,
}

FRIENDLY_PHRASES = [
    "good game", "well played", "nice shot", "thanks team",
    "group up mid", "push now", "need healing", "on my way",
    "great save", "gl hf",
]

TOXIC_TEMPLATES = [
    "you are such a {w}", "{w} team honestly", "report this {w}",
    "uninstall you {w}", "absolute {w}", "my team is {w}",
]


@dataclass
class ChatMessage:
    author: str
    text: str
    time: float
    #: Ground-truth label (known for synthetic chat).
    toxic: Optional[bool] = None


class ToxicityDetector:
    """Scores messages in [0, 1] and classifies above a threshold."""

    def __init__(self, threshold: float = 0.5,
                 lexicon: Optional[dict[str, float]] = None):
        if not 0 < threshold <= 1:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = threshold
        self.lexicon = dict(lexicon or TOXIC_LEXICON)
        self._recent: dict[str, list[float]] = {}

    def score(self, message: ChatMessage) -> float:
        text = message.text
        words = re.findall(r"[a-z']+", text.lower())
        if not words:
            return 0.0
        base = max((self.lexicon.get(w, 0.0) for w in words), default=0.0)
        if base == 0.0:
            return 0.0
        # Context amplifiers.
        if text.isupper() and len(text) > 5:
            base = min(1.0, base + 0.2)          # shouting
        if any(w in ("you", "your") for w in words):
            base = min(1.0, base + 0.15)         # targeting
        history = self._recent.setdefault(message.author, [])
        if history and message.time - history[-1] < 30.0:
            base = min(1.0, base + 0.1)          # rapid-fire repetition
        history.append(message.time)
        return base

    def is_toxic(self, message: ChatMessage) -> bool:
        return self.score(message) >= self.threshold

    def evaluate(self, messages: Sequence[ChatMessage]
                 ) -> dict[str, float]:
        """Precision/recall/F1 against ground-truth labels."""
        tp = fp = fn = tn = 0
        for msg in messages:
            if msg.toxic is None:
                raise ValueError("evaluate needs labelled messages")
            predicted = self.is_toxic(msg)
            if predicted and msg.toxic:
                tp += 1
            elif predicted and not msg.toxic:
                fp += 1
            elif not predicted and msg.toxic:
                fn += 1
            else:
                tn += 1
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        f1 = (2 * precision * recall / (precision + recall)
              if precision + recall else 0.0)
        return {"precision": precision, "recall": recall, "f1": f1,
                "accuracy": (tp + tn) / max(len(messages), 1)}

    def repeat_offenders(self, messages: Sequence[ChatMessage],
                         min_toxic: int = 3) -> list[str]:
        """Players with at least ``min_toxic`` toxic messages."""
        counts: dict[str, int] = {}
        for msg in messages:
            if self.is_toxic(msg):
                counts[msg.author] = counts.get(msg.author, 0) + 1
        return sorted(a for a, c in counts.items() if c >= min_toxic)


def generate_chat(rng: np.random.Generator, n_players: int = 20,
                  n_messages: int = 400,
                  toxic_player_fraction: float = 0.15,
                  toxic_message_rate: float = 0.6) -> list[ChatMessage]:
    """Synthetic labelled chat with planted toxic players."""
    if not 0 <= toxic_player_fraction <= 1:
        raise ValueError("toxic_player_fraction must be in [0, 1]")
    players = [f"p{i:02d}" for i in range(n_players)]
    n_toxic = int(round(n_players * toxic_player_fraction))
    toxic_players = set(players[:n_toxic])
    words = sorted(TOXIC_LEXICON)
    messages = []
    t = 0.0
    for _ in range(n_messages):
        t += float(rng.exponential(20.0))
        author = players[int(rng.integers(0, n_players))]
        is_toxic_msg = (author in toxic_players
                        and rng.random() < toxic_message_rate)
        if is_toxic_msg:
            template = TOXIC_TEMPLATES[int(rng.integers(
                0, len(TOXIC_TEMPLATES)))]
            word = words[int(rng.integers(0, len(words)))]
            text = template.format(w=word)
            if rng.random() < 0.3:
                text = text.upper()
        else:
            text = FRIENDLY_PHRASES[int(rng.integers(
                0, len(FRIENDLY_PHRASES)))]
        messages.append(ChatMessage(author=author, text=text, time=t,
                                    toxic=is_toxic_msg))
    return messages
