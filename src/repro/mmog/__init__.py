"""MMOG ecosystems (paper §6.2, Table 6).

The paper decomposes the MMOG ecosystem into four functions; all four are
modelled:

1. virtual-world operation — :mod:`repro.mmog.world` (zones, sessions,
   capacity) and :mod:`repro.mmog.rts` (RTSenv scalability, points of
   interest, the Area-of-Simulation technique, Mirror offloading);
2. gaming analytics — :mod:`repro.mmog.dynamics` (the longitudinal
   player-dynamics studies) and :mod:`repro.mmog.provisioning`
   (prediction-driven cloud provisioning for MMOGs);
3. procedural game-content generation — :mod:`repro.mmog.pgcg`
   (POGGI-style distributed puzzle generation);
4. meta-gaming — :mod:`repro.mmog.social` (implicit social networks,
   matchmaking) and :mod:`repro.mmog.toxicity` (toxicity detection).
"""

from repro.mmog.world import VirtualWorld, Zone, PlayerSession
from repro.mmog.dynamics import (
    GENRE_PROFILES,
    GenreProfile,
    PopulationTrace,
    simulate_population,
)
from repro.mmog.provisioning import (
    BrownoutProvisioningResult,
    LastValuePredictor,
    MovingAveragePredictor,
    TrendPredictor,
    ProvisioningResult,
    run_brownout_provisioning,
    run_provisioning,
)
from repro.mmog.rts import (
    AreaOfSimulation,
    MirrorOffload,
    PointOfInterest,
    RTSWorkload,
    rts_frame_cost,
    rtsenv_sweep,
)
from repro.mmog.social import (
    InteractionGraph,
    matchmaking_quality,
    build_interaction_graph,
)
from repro.mmog.toxicity import ToxicityDetector, generate_chat
from repro.mmog.pgcg import PuzzleInstance, generate_puzzles, puzzle_difficulty
from repro.mmog.analytics import (
    CameoAnalytics,
    SessionRecord,
    generate_sessions,
)
from repro.mmog.yardstick import YardstickReport, capacity_study, run_yardstick

__all__ = [
    "AreaOfSimulation",
    "BrownoutProvisioningResult",
    "CameoAnalytics",
    "SessionRecord",
    "YardstickReport",
    "capacity_study",
    "generate_sessions",
    "run_yardstick",
    "GENRE_PROFILES",
    "GenreProfile",
    "InteractionGraph",
    "LastValuePredictor",
    "MirrorOffload",
    "MovingAveragePredictor",
    "PlayerSession",
    "PointOfInterest",
    "PopulationTrace",
    "ProvisioningResult",
    "PuzzleInstance",
    "RTSWorkload",
    "ToxicityDetector",
    "TrendPredictor",
    "VirtualWorld",
    "Zone",
    "build_interaction_graph",
    "generate_chat",
    "generate_puzzles",
    "matchmaking_quality",
    "puzzle_difficulty",
    "rts_frame_cost",
    "rtsenv_sweep",
    "run_brownout_provisioning",
    "run_provisioning",
    "simulate_population",
]
