"""Implicit social networks in games and matchmaking ([74], [91], [75]).

Players who repeatedly share matches form an implicit social network; the
paper's studies build the graph from co-play records, find communities,
and use graph proximity for matchmaking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import networkx as nx
import numpy as np


@dataclass(frozen=True)
class CoPlayRecord:
    """One match: the players who shared it."""

    match_id: int
    players: tuple[str, ...]


class InteractionGraph:
    """The implicit social network: weighted co-play graph."""

    def __init__(self):
        self.graph = nx.Graph()

    def add_match(self, players: Sequence[str]) -> None:
        players = list(dict.fromkeys(players))  # dedupe, keep order
        for player in players:
            if not self.graph.has_node(player):
                self.graph.add_node(player, matches=0)
            self.graph.nodes[player]["matches"] += 1
        for i, a in enumerate(players):
            for b in players[i + 1:]:
                if self.graph.has_edge(a, b):
                    self.graph[a][b]["weight"] += 1
                else:
                    self.graph.add_edge(a, b, weight=1)

    @property
    def n_players(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def n_ties(self) -> int:
        return self.graph.number_of_edges()

    def tie_strength(self, a: str, b: str) -> int:
        if self.graph.has_edge(a, b):
            return self.graph[a][b]["weight"]
        return 0

    def strong_ties(self, min_weight: int = 2) -> list[tuple[str, str, int]]:
        """Repeated co-play pairs — the *implicit* relationships."""
        return [(a, b, d["weight"])
                for a, b, d in self.graph.edges(data=True)
                if d["weight"] >= min_weight]

    def communities(self) -> list[set[str]]:
        """Greedy-modularity communities (guilds/friend clusters)."""
        if self.graph.number_of_edges() == 0:
            return [{n} for n in self.graph.nodes]
        return [set(c) for c in nx.community.greedy_modularity_communities(
            self.graph, weight="weight")]

    def suggest_teammates(self, player: str, k: int = 5) -> list[str]:
        """Matchmaking by social proximity: strongest ties first, then
        friends-of-friends by shared-neighbour count."""
        if player not in self.graph:
            return []
        direct = sorted(
            self.graph[player].items(),
            key=lambda kv: (-kv[1]["weight"], kv[0]))
        suggestions = [name for name, _ in direct]
        if len(suggestions) < k:
            fof: dict[str, int] = {}
            for friend in self.graph[player]:
                for candidate in self.graph[friend]:
                    if candidate != player and candidate not in self.graph[player]:
                        fof[candidate] = fof.get(candidate, 0) + 1
            suggestions += sorted(fof, key=lambda c: (-fof[c], c))
        return suggestions[:k]


def build_interaction_graph(records: Sequence[CoPlayRecord]
                            ) -> InteractionGraph:
    graph = InteractionGraph()
    for record in records:
        graph.add_match(record.players)
    return graph


def generate_coplay(rng: np.random.Generator, n_players: int = 60,
                    n_matches: int = 300, n_groups: int = 6,
                    party_size: int = 4,
                    social_bias: float = 0.8) -> list[CoPlayRecord]:
    """Synthetic co-play with planted friend groups.

    With probability ``social_bias`` a match is drawn from within one
    planted group (friends queueing together); otherwise players are
    sampled uniformly (solo queue). Community detection should recover
    the planted groups when bias is high.
    """
    if n_players < party_size:
        raise ValueError("need at least party_size players")
    players = [f"player-{i:03d}" for i in range(n_players)]
    groups = np.array_split(np.arange(n_players), n_groups)
    records = []
    for match_id in range(n_matches):
        if rng.random() < social_bias:
            group = groups[int(rng.integers(0, n_groups))]
            size = min(party_size, group.size)
            idx = rng.choice(group, size=size, replace=False)
        else:
            idx = rng.choice(n_players, size=party_size, replace=False)
        records.append(CoPlayRecord(
            match_id=match_id,
            players=tuple(players[int(i)] for i in idx)))
    return records


def matchmaking_quality(graph: InteractionGraph,
                        parties: Sequence[Sequence[str]]) -> float:
    """Mean tie strength inside proposed parties (higher = more social)."""
    strengths = []
    for party in parties:
        party = list(party)
        for i, a in enumerate(party):
            for b in party[i + 1:]:
                strengths.append(graph.tie_strength(a, b))
    return float(np.mean(strengths)) if strengths else 0.0
