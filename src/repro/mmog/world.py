"""The virtual world: zones, sessions, and capacity (Function 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Optional

_session_ids = count()


@dataclass
class PlayerSession:
    """One player's connected session."""

    player: str
    start: float
    session_id: int = field(default_factory=lambda: next(_session_ids))
    zone: Optional[str] = None
    end: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start


@dataclass
class Zone:
    """A shard/region of the world with a player capacity.

    MMOGs raise "some of the strictest NFRs": above ``soft_capacity`` the
    tick rate degrades linearly until ``hard_capacity``, beyond which
    joins are refused — both effects the provisioning experiments measure.
    """

    name: str
    soft_capacity: int = 100
    hard_capacity: int = 150
    base_tick_hz: float = 10.0
    players: set[int] = field(default_factory=set)

    def __post_init__(self):
        if self.hard_capacity < self.soft_capacity:
            raise ValueError("hard_capacity must be >= soft_capacity")

    @property
    def population(self) -> int:
        return len(self.players)

    @property
    def tick_hz(self) -> float:
        """Current update frequency; degrades above the soft capacity."""
        if self.population <= self.soft_capacity:
            return self.base_tick_hz
        over = self.population - self.soft_capacity
        span = max(self.hard_capacity - self.soft_capacity, 1)
        degradation = min(over / span, 1.0)
        return self.base_tick_hz * (1.0 - 0.7 * degradation)

    @property
    def overloaded(self) -> bool:
        return self.population > self.soft_capacity

    def try_join(self, session: PlayerSession) -> bool:
        if self.population >= self.hard_capacity:
            return False
        self.players.add(session.session_id)
        session.zone = self.name
        return True

    def leave(self, session: PlayerSession) -> None:
        self.players.discard(session.session_id)
        session.zone = None


class VirtualWorld:
    """A collection of zones with least-loaded placement."""

    def __init__(self, zones: Optional[list[Zone]] = None):
        self.zones: dict[str, Zone] = {z.name: z for z in (zones or [])}
        self.rejected_joins = 0

    def add_zone(self, zone: Zone) -> None:
        if zone.name in self.zones:
            raise ValueError(f"duplicate zone {zone.name}")
        self.zones[zone.name] = zone

    def remove_zone(self, name: str) -> Zone:
        zone = self.zones.get(name)
        if zone is None:
            raise KeyError(name)
        if zone.population:
            raise RuntimeError(f"zone {name} still has players")
        return self.zones.pop(name)

    @property
    def population(self) -> int:
        return sum(z.population for z in self.zones.values())

    @property
    def total_soft_capacity(self) -> int:
        return sum(z.soft_capacity for z in self.zones.values())

    def place(self, session: PlayerSession) -> Optional[Zone]:
        """Least-loaded join; None (and a rejection count) if all full."""
        candidates = sorted(self.zones.values(),
                            key=lambda z: (z.population, z.name))
        for zone in candidates:
            if zone.try_join(session):
                return zone
        self.rejected_joins += 1
        return None

    def overloaded_zones(self) -> list[Zone]:
        return [z for z in self.zones.values() if z.overloaded]

    def worst_tick_hz(self) -> float:
        if not self.zones:
            return 0.0
        return min(z.tick_hz for z in self.zones.values())
