"""Yardstick: a benchmark for Minecraft-like services ([84]).

Yardstick drives bot players into a Minecraft-like server and measures
how the tick rate degrades with population — locating the service's
real capacity (the population where ticks drop below the playability
floor), which the paper's group found to be far below vendor claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.mmog.world import PlayerSession, Zone


@dataclass
class YardstickSample:
    population: int
    tick_hz: float
    joined: bool


@dataclass
class YardstickReport:
    """The benchmark's output: tick-vs-population curve and capacity."""

    samples: list[YardstickSample]
    playability_floor_hz: float

    @property
    def max_playable_population(self) -> int:
        """Largest population with tick rate at or above the floor."""
        playable = [s.population for s in self.samples
                    if s.joined and s.tick_hz >= self.playability_floor_hz]
        return max(playable) if playable else 0

    @property
    def hard_capacity_hit(self) -> bool:
        return any(not s.joined for s in self.samples)

    @property
    def degradation_onset(self) -> Optional[int]:
        """Population where the tick rate first drops below nominal."""
        nominal = self.samples[0].tick_hz if self.samples else 0.0
        for s in self.samples:
            if s.joined and s.tick_hz < nominal - 1e-9:
                return s.population
        return None

    def curve(self) -> list[tuple[int, float]]:
        return [(s.population, s.tick_hz) for s in self.samples
                if s.joined]


def run_yardstick(zone: Zone, max_bots: int = 500,
                  playability_floor_hz: float = 5.0) -> YardstickReport:
    """Drive bots into the zone one by one, sampling the tick rate."""
    if max_bots < 1:
        raise ValueError("max_bots must be >= 1")
    samples = []
    for i in range(max_bots):
        session = PlayerSession(player=f"bot-{i:04d}", start=float(i))
        joined = zone.try_join(session)
        samples.append(YardstickSample(
            population=zone.population, tick_hz=zone.tick_hz,
            joined=joined))
        if not joined:
            break
    return YardstickReport(samples=samples,
                           playability_floor_hz=playability_floor_hz)


def capacity_study(soft_capacities: Sequence[int],
                   hard_factor: float = 1.5,
                   playability_floor_hz: float = 5.0
                   ) -> list[dict[str, float]]:
    """Yardstick across server configurations: how does real (playable)
    capacity scale with nominal (soft) capacity?"""
    rows = []
    for soft in soft_capacities:
        zone = Zone(f"server-{soft}", soft_capacity=soft,
                    hard_capacity=int(soft * hard_factor))
        report = run_yardstick(zone, max_bots=int(soft * hard_factor) + 10,
                               playability_floor_hz=playability_floor_hz)
        rows.append({
            "nominal_capacity": float(soft),
            "max_playable": float(report.max_playable_population),
            "degradation_onset": float(report.degradation_onset or soft),
            "hard_capacity_hit": float(report.hard_capacity_hit),
        })
    return rows
