"""CAMEO: continuous gaming analytics on cloud resources ([79]).

CAMEO combined NoSQL and cloud technology to compute gaming analytics
continuously, *within a budget*: the operator picks how much cloud
capacity to rent, which bounds how much data each analysis pass can
touch; sampling covers the rest. This module provides:

- a session-log generator with power-law player activity (heavy gamers
  dominate events — the reason naive sampling biases KPIs);
- exact KPIs: daily active users (DAU), day-over-day retention, and
  churn;
- :class:`CameoAnalytics`: sampled continuous analysis with a cloud cost
  model and the budget → sampling-fraction planning knob, plus the
  accuracy-vs-budget trade-off the paper's design navigates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

DAY_S = 86400.0


@dataclass(frozen=True)
class SessionRecord:
    """One play session of one player."""

    player: str
    start: float
    end: float

    def __post_init__(self):
        if self.end <= self.start:
            raise ValueError("session must end after it starts")

    @property
    def day(self) -> int:
        return int(self.start // DAY_S)


def generate_sessions(rng: np.random.Generator,
                      n_players: int = 500,
                      days: int = 7,
                      mean_sessions_per_day: float = 1.2,
                      churn_per_day: float = 0.03,
                      mean_session_s: float = 1800.0) -> list[SessionRecord]:
    """Power-law player activity with gradual churn.

    Player i's activity weight follows a Zipf-like 1/(i+1)^0.8; each day
    a ``churn_per_day`` fraction of the still-active population quits for
    good.
    """
    if n_players < 1 or days < 1:
        raise ValueError("need at least one player and one day")
    weights = np.array([1.0 / (i + 1) ** 0.8 for i in range(n_players)])
    weights /= weights.mean()
    active = np.ones(n_players, dtype=bool)
    sessions: list[SessionRecord] = []
    for day in range(days):
        quitters = rng.random(n_players) < churn_per_day
        active &= ~quitters
        for player_idx in np.nonzero(active)[0]:
            lam = mean_sessions_per_day * weights[player_idx]
            n_sessions = rng.poisson(lam)
            for _ in range(n_sessions):
                start = day * DAY_S + float(rng.uniform(0, DAY_S))
                duration = float(rng.exponential(mean_session_s)) + 60.0
                sessions.append(SessionRecord(
                    player=f"p{player_idx:04d}", start=start,
                    end=start + duration))
    sessions.sort(key=lambda s: s.start)
    return sessions


# -- exact KPIs ---------------------------------------------------------------
def dau(sessions: Sequence[SessionRecord], day: int) -> int:
    """Distinct players with a session starting on ``day``."""
    return len({s.player for s in sessions if s.day == day})


def retention(sessions: Sequence[SessionRecord], day: int) -> float:
    """Fraction of day-``day`` players active again on day+1."""
    today = {s.player for s in sessions if s.day == day}
    tomorrow = {s.player for s in sessions if s.day == day + 1}
    if not today:
        return float("nan")
    return len(today & tomorrow) / len(today)


def churned(sessions: Sequence[SessionRecord], day: int,
            horizon_days: int = 3) -> float:
    """Fraction of day-``day`` players never seen in the next horizon."""
    today = {s.player for s in sessions if s.day == day}
    later = {s.player for s in sessions
             if day < s.day <= day + horizon_days}
    if not today:
        return float("nan")
    return len(today - later) / len(today)


# -- CAMEO: sampled continuous analytics under budget ------------------------
@dataclass
class AnalyticsReport:
    """One continuous-analytics configuration's output and cost."""

    sampling_fraction: float
    dau_estimates: dict[int, float]
    dau_exact: dict[int, int]
    events_processed: int
    cloud_cost: float

    @property
    def mean_relative_error(self) -> float:
        errors = []
        for day, exact in self.dau_exact.items():
            if exact == 0:
                continue
            errors.append(abs(self.dau_estimates[day] - exact) / exact)
        return float(np.mean(errors)) if errors else float("nan")


class CameoAnalytics:
    """Continuous analytics with player-level sampling.

    ``cost_per_event`` is the cloud cost of ingesting + analyzing one
    session record (CAMEO's per-analysis cloud bill, normalized).
    Sampling is by *player* (hash-based), so a player's sessions are all
    in or all out — the unbiased design for per-user KPIs.
    """

    def __init__(self, cost_per_event: float = 0.0005):
        if cost_per_event <= 0:
            raise ValueError("cost_per_event must be positive")
        self.cost_per_event = cost_per_event

    def _sampled(self, sessions: Sequence[SessionRecord],
                 fraction: float) -> list[SessionRecord]:
        if not 0 < fraction <= 1:
            raise ValueError("sampling fraction must be in (0, 1]")
        import zlib
        buckets = 10_000
        cutoff = fraction * buckets
        # Stable (cross-process) player hash, unlike built-in hash().
        return [s for s in sessions
                if (zlib.crc32(s.player.encode()) % buckets) < cutoff]

    def analyze(self, sessions: Sequence[SessionRecord],
                fraction: float = 1.0) -> AnalyticsReport:
        sample = self._sampled(sessions, fraction)
        days = sorted({s.day for s in sessions})
        estimates = {
            day: dau(sample, day) / fraction for day in days
        }
        exact = {day: dau(sessions, day) for day in days}
        return AnalyticsReport(
            sampling_fraction=fraction,
            dau_estimates=estimates,
            dau_exact=exact,
            events_processed=len(sample),
            cloud_cost=len(sample) * self.cost_per_event,
        )

    def max_fraction_for_budget(self, sessions: Sequence[SessionRecord],
                                budget: float) -> float:
        """The CAMEO knob: the largest sampling fraction the budget buys."""
        if budget <= 0:
            raise ValueError("budget must be positive")
        full_cost = len(sessions) * self.cost_per_event
        return min(1.0, budget / full_cost) if full_cost > 0 else 1.0

    def analyze_within_budget(self, sessions: Sequence[SessionRecord],
                              budget: float) -> AnalyticsReport:
        fraction = self.max_fraction_for_budget(sessions, budget)
        report = self.analyze(sessions, fraction)
        assert report.cloud_cost <= budget * 1.05  # sampling granularity
        return report
