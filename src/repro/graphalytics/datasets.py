"""Dataset generators and their PAD-relevant properties."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import networkx as nx
import numpy as np


@dataclass(frozen=True)
class DatasetProperties:
    """The structural properties that make the 'D' of PAD matter."""

    name: str
    n_vertices: int
    n_edges: int
    max_degree: int
    mean_degree: float
    #: Degree skew: max/mean degree. Power-law graphs score high; this is
    #: what breaks GPU-style regular-parallel platforms ([109]).
    degree_skew: float
    clustering: float

    @property
    def is_skewed(self) -> bool:
        return self.degree_skew > 10.0


def dataset_properties(name: str, graph: nx.Graph) -> DatasetProperties:
    degrees = [d for _, d in graph.degree()]
    mean_degree = float(np.mean(degrees)) if degrees else 0.0
    max_degree = max(degrees) if degrees else 0
    return DatasetProperties(
        name=name,
        n_vertices=graph.number_of_nodes(),
        n_edges=graph.number_of_edges(),
        max_degree=max_degree,
        mean_degree=mean_degree,
        degree_skew=max_degree / mean_degree if mean_degree else 0.0,
        clustering=float(nx.average_clustering(graph))
        if graph.number_of_nodes() else 0.0,
    )


def _scale_free(n: int, rng: np.random.Generator) -> nx.Graph:
    """Barabási-Albert: the social-network-like, heavily skewed dataset."""
    return nx.barabasi_albert_graph(n, m=3, seed=int(rng.integers(2**31)))


def _small_world(n: int, rng: np.random.Generator) -> nx.Graph:
    """Watts-Strogatz: high clustering, low skew."""
    return nx.watts_strogatz_graph(n, k=6, p=0.1,
                                   seed=int(rng.integers(2**31)))


def _road(n: int, rng: np.random.Generator) -> nx.Graph:
    """Grid-like road network: regular degrees, huge diameter."""
    side = max(2, int(np.sqrt(n)))
    graph = nx.grid_2d_graph(side, side)
    return nx.convert_node_labels_to_integers(graph)


def _random_uniform(n: int, rng: np.random.Generator) -> nx.Graph:
    """Erdős–Rényi with mean degree ~6: no structure at all."""
    p = min(1.0, 6.0 / max(n - 1, 1))
    return nx.gnp_random_graph(n, p, seed=int(rng.integers(2**31)))


DATASET_GENERATORS: dict[str, Callable[[int, np.random.Generator],
                                       nx.Graph]] = {
    "scale-free": _scale_free,
    "small-world": _small_world,
    "road": _road,
    "random": _random_uniform,
}


def make_dataset(name: str, n_vertices: int,
                 rng: np.random.Generator,
                 weighted: bool = False) -> nx.Graph:
    """Generate a dataset; optionally attach uniform(1,10) edge weights
    (needed by SSSP)."""
    if name not in DATASET_GENERATORS:
        raise KeyError(f"unknown dataset family {name!r}; known: "
                       f"{sorted(DATASET_GENERATORS)}")
    if n_vertices < 4:
        raise ValueError("n_vertices must be >= 4")
    graph = DATASET_GENERATORS[name](n_vertices, rng)
    if weighted:
        for u, v in graph.edges:
            graph[u][v]["weight"] = float(rng.uniform(1.0, 10.0))
    return graph
