"""The Graphalytics ecosystem (paper §6.5, Table 8).

- :mod:`repro.graphalytics.algorithms` — the six LDBC Graphalytics
  kernels (BFS, PageRank, WCC, CDLP, LCC, SSSP), implemented over
  networkx graphs;
- :mod:`repro.graphalytics.datasets` — dataset generators with the
  properties that drive the "D" of the PAD triangle (degree skew,
  clustering, diameter class);
- :mod:`repro.graphalytics.platforms` — platform performance models with
  distinct cost profiles, including GPU-like and heterogeneous platforms
  (the "H" of the HPAD law [106]);
- :mod:`repro.graphalytics.benchmark` — the benchmark harness: the
  P×A×D sweep, the PAD-law interaction analysis, Granula-style phase
  breakdowns [100], and Grade10-style bottleneck attribution [108].
"""

from repro.graphalytics.algorithms import (
    ALGORITHMS,
    AlgorithmResult,
    bfs,
    cdlp,
    lcc,
    pagerank,
    run_algorithm,
    sssp,
    wcc,
)
from repro.graphalytics.datasets import (
    DATASET_GENERATORS,
    DatasetProperties,
    dataset_properties,
    make_dataset,
)
from repro.graphalytics.platforms import (
    PLATFORMS,
    PhaseBreakdown,
    Platform,
    PlatformRun,
)
from repro.graphalytics.benchmark import (
    BenchmarkReport,
    pad_interaction_analysis,
    run_benchmark,
)

__all__ = [
    "ALGORITHMS",
    "AlgorithmResult",
    "BenchmarkReport",
    "DATASET_GENERATORS",
    "DatasetProperties",
    "PLATFORMS",
    "PhaseBreakdown",
    "Platform",
    "PlatformRun",
    "bfs",
    "cdlp",
    "dataset_properties",
    "lcc",
    "make_dataset",
    "pad_interaction_analysis",
    "pagerank",
    "run_algorithm",
    "run_benchmark",
    "sssp",
    "wcc",
]
