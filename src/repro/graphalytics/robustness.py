"""Straggler mitigation for graph-analytics jobs via hedged execution.

Graphalytics-style platform runs are long, and one slow executor (skewed
partition, sick node) multiplies a job's completion time — the classic
straggler problem. Retry does not help a job that is slow-but-alive; the
mitigation is *hedging*: after a quantile delay, launch a speculative
duplicate and take whichever finishes first.

This module replays a set of modeled job times (e.g. the
``modeled_time_s`` column of a :class:`~repro.graphalytics.benchmark.
BenchmarkReport`) through the DES with a :class:`~repro.faults.models.
StragglerModel` and an optional :class:`~repro.faults.policies.Hedge`,
quantifying how much tail the hedge buys back and what it costs in
duplicate work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.faults.models import StragglerModel
from repro.faults.policies import Hedge
from repro.sim import AllOf, Environment


@dataclass
class StragglerRunResult:
    """Completion statistics of one straggler-afflicted batch."""

    n_jobs: int
    makespan_s: float
    mean_time_s: float
    p95_time_s: float
    stragglers: int
    #: Total attempts launched (> n_jobs when hedging duplicated work).
    attempts: int
    hedge_wins: int

    @property
    def duplicate_work_fraction(self) -> float:
        return self.attempts / self.n_jobs - 1.0 if self.n_jobs else 0.0


def run_jobs_with_stragglers(
        job_times_s: Sequence[float],
        straggler: StragglerModel,
        hedge: Optional[Hedge] = None,
        env: Optional[Environment] = None) -> StragglerRunResult:
    """Run every job concurrently; each *attempt* redraws its straggler fate.

    Without a hedge, a straggler multiplies its job's time. With a hedge,
    the duplicate attempt redraws — it is unlikely to straggle too, so the
    winner is usually the healthy copy.
    """
    if not job_times_s:
        raise ValueError("need at least one job time")
    env = env or Environment()
    times: list[float] = []

    def attempt(base_s: float):
        yield env.timeout(base_s * straggler.runtime_factor())

    def job(base_s: float):
        start = env.now
        if hedge is not None:
            yield from hedge.run(env, lambda: attempt(base_s))
        else:
            yield env.process(attempt(base_s))
        times.append(env.now - start)

    jobs = [env.process(job(float(t))) for t in job_times_s]
    env.run(until=AllOf(env, jobs))
    arr = np.asarray(times)
    return StragglerRunResult(
        n_jobs=len(arr),
        makespan_s=float(env.now),
        mean_time_s=float(arr.mean()),
        p95_time_s=float(np.percentile(arr, 95)),
        stragglers=straggler.stragglers,
        attempts=hedge.launched if hedge is not None else len(arr),
        hedge_wins=hedge.hedge_wins if hedge is not None else 0,
    )
