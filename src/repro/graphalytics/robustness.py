"""Robustness for graph-analytics jobs: hedging and superstep recovery.

Graphalytics-style platform runs are long, and two failure shapes
dominate. A slow executor (skewed partition, sick node) multiplies a
job's completion time — the straggler problem, mitigated by *hedging*:
after a quantile delay, launch a speculative duplicate and take
whichever finishes first. A crashed executor loses the job's in-memory
state entirely — mitigated by *superstep checkpointing*: iterative
kernels (pagerank, cdlp, sssp) are BSP computations whose state is
consistent exactly at superstep barriers, so checkpoints land on those
boundaries and a crash resumes at the last checkpointed superstep
instead of iteration zero.

:func:`run_jobs_with_stragglers` replays modeled job times through the
DES with a :class:`~repro.faults.models.StragglerModel` and an optional
:class:`~repro.faults.policies.Hedge`. :func:`run_supersteps_with_recovery`
replays an iterative kernel's superstep profile (see
:func:`superstep_profile`) under :class:`~repro.faults.models.CrashRestart`
with per-superstep checkpointing, accounting lost supersteps, checkpoint
overhead, and recovery time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.faults.models import CrashRestart, StragglerModel
from repro.faults.policies import Hedge
from repro.recovery import CheckpointedJob, CheckpointPolicy, CheckpointStore
from repro.sim import AllOf, Environment


@dataclass
class StragglerRunResult:
    """Completion statistics of one straggler-afflicted batch."""

    n_jobs: int
    makespan_s: float
    mean_time_s: float
    p95_time_s: float
    stragglers: int
    #: Total attempts launched (> n_jobs when hedging duplicated work).
    attempts: int
    hedge_wins: int

    @property
    def duplicate_work_fraction(self) -> float:
        return self.attempts / self.n_jobs - 1.0 if self.n_jobs else 0.0


def run_jobs_with_stragglers(
        job_times_s: Sequence[float],
        straggler: StragglerModel,
        hedge: Optional[Hedge] = None,
        env: Optional[Environment] = None) -> StragglerRunResult:
    """Run every job concurrently; each *attempt* redraws its straggler fate.

    Without a hedge, a straggler multiplies its job's time. With a hedge,
    the duplicate attempt redraws — it is unlikely to straggle too, so the
    winner is usually the healthy copy.
    """
    if not job_times_s:
        raise ValueError("need at least one job time")
    env = env or Environment()
    times: list[float] = []

    def attempt(base_s: float):
        yield env.timeout(base_s * straggler.runtime_factor())

    def job(base_s: float):
        start = env.now
        if hedge is not None:
            yield from hedge.run(env, lambda: attempt(base_s))
        else:
            yield env.process(attempt(base_s))
        times.append(env.now - start)

    jobs = [env.process(job(float(t))) for t in job_times_s]
    env.run(until=AllOf(env, jobs))
    arr = np.asarray(times)
    return StragglerRunResult(
        n_jobs=len(arr),
        makespan_s=float(env.now),
        mean_time_s=float(arr.mean()),
        p95_time_s=float(np.percentile(arr, 95)),
        stragglers=straggler.stragglers,
        attempts=hedge.launched if hedge is not None else len(arr),
        hedge_wins=hedge.hedge_wins if hedge is not None else 0,
    )


def superstep_profile(run) -> tuple[int, float]:
    """Derive ``(n_supersteps, seconds_per_superstep)`` from a platform run.

    Iterative Graphalytics kernels report their superstep count in
    ``result.iterations``; the modeled compute phase spread evenly over
    them gives the per-superstep cost. Accepts a
    :class:`~repro.graphalytics.platforms.PlatformRun`.
    """
    n = max(1, int(run.result.iterations))
    return n, run.breakdown.compute_s / n


@dataclass
class SuperstepRecoveryResult:
    """Completion accounting of one checkpointed iterative kernel run."""

    algorithm: str
    n_supersteps: int
    superstep_s: float
    work_s: float
    makespan_s: float
    crashes: int
    #: Supersteps re-executed because a crash rolled them back.
    lost_supersteps: int
    lost_work_s: float
    checkpoint_time_s: float
    recovery_time_s: float
    downtime_s: float
    checkpoints_written: int
    restores: int
    corrupt_fallbacks: int

    @property
    def makespan_inflation(self) -> float:
        return self.makespan_s / self.work_s - 1.0 if self.work_s else 0.0


def run_supersteps_with_recovery(
        n_supersteps: int,
        superstep_s: float,
        *,
        mtbf_s: float,
        mttr_s: float,
        rng: np.random.Generator,
        policy: Optional[CheckpointPolicy] = None,
        store: Optional[CheckpointStore] = None,
        checkpoint_size_mb: float = 200.0,
        restart_cost_s: float = 1.0,
        algorithm: str = "pagerank",
        env: Optional[Environment] = None,
        tracer=None, registry=None) -> SuperstepRecoveryResult:
    """Run an iterative kernel under crashes with superstep checkpointing.

    The kernel is BSP: state is only consistent at superstep barriers, so
    the job quantizes checkpoint placement to ``superstep_s`` boundaries
    (``quantum_s``). Without a policy/store pair the kernel restarts from
    superstep zero on every crash — the baseline the lost-work accounting
    is judged against.
    """
    if n_supersteps < 1:
        raise ValueError("n_supersteps must be >= 1")
    if superstep_s <= 0:
        raise ValueError("superstep_s must be positive")
    env = env or Environment()
    span = None
    if tracer is not None:
        if tracer.env is None:
            tracer.bind(env)
        span = tracer.start_span("graphalytics.supersteps",
                                 algorithm=algorithm,
                                 n_supersteps=n_supersteps)
    monitor = None
    if registry is not None:
        from repro.sim import Monitor
        monitor = Monitor(env, registry=registry, namespace="graphalytics")
    job = CheckpointedJob(
        env, work_s=n_supersteps * superstep_s,
        policy=policy, store=store, quantum_s=superstep_s,
        checkpoint_size_mb=checkpoint_size_mb,
        restart_cost_s=restart_cost_s, name=algorithm,
        monitor=monitor, tracer=tracer, span_parent=span)
    CrashRestart(env, [job], rng, mtbf_s=mtbf_s, mttr_s=mttr_s,
                 name=f"{algorithm}-crash")
    env.run(until=job.done)
    stats = job.stats()
    if span is not None:
        tracer.end_span(span, crashes=stats.crashes,
                        lost_supersteps=int(round(stats.lost_work_s
                                                  / superstep_s)))
    return SuperstepRecoveryResult(
        algorithm=algorithm,
        n_supersteps=n_supersteps,
        superstep_s=superstep_s,
        work_s=stats.work_s,
        makespan_s=stats.makespan_s,
        crashes=stats.crashes,
        lost_supersteps=int(round(stats.lost_work_s / superstep_s)),
        lost_work_s=stats.lost_work_s,
        checkpoint_time_s=stats.checkpoint_time_s,
        recovery_time_s=stats.recovery_time_s,
        downtime_s=stats.downtime_s,
        checkpoints_written=stats.checkpoints_written,
        restores=stats.restores,
        corrupt_fallbacks=stats.corrupt_fallbacks,
    )
