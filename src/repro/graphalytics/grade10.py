"""Grade10: performance models fitted from benchmark runs ([108]).

The Graphalytics ecosystem's question: "How to use the deep results to
obtain model systems, without (much) effort?" Grade10's answer: fit a
per-platform performance model from the observed phase breakdowns, then
*predict* unseen (algorithm, dataset) cells and attribute bottlenecks
without re-running.

The model mirrors the platform cost structure (setup + load×edges +
compute×edge-visits + barrier×iterations) but its coefficients are
*learned* by least squares from :class:`PlatformRun` observations —
so it works for platforms whose true cost model is unknown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.graphalytics.platforms import PlatformRun


@dataclass
class FittedPlatformModel:
    """Learned cost coefficients of one platform."""

    platform: str
    setup_s: float
    load_per_edge_s: float
    compute_per_edge_visit_s: float
    per_iteration_s: float
    #: Mean relative error on the training runs.
    training_error: float

    def predict(self, n_edges: float, edges_visited: float,
                iterations: float) -> float:
        return (self.setup_s
                + self.load_per_edge_s * n_edges
                + self.compute_per_edge_visit_s * edges_visited
                + self.per_iteration_s * iterations)


@dataclass(frozen=True)
class Observation:
    """One training observation: features plus measured time."""

    platform: str
    n_edges: float
    edges_visited: float
    iterations: float
    time_s: float


def observations_from_runs(runs: Sequence[PlatformRun],
                           work_scale: float = 300.0) -> list[Observation]:
    """Extract training observations from benchmark runs."""
    obs = []
    for run in runs:
        if run.failed:
            continue
        # The load phase divided by its (unknown) coefficient is not
        # recoverable; use the kernel's own work accounting, which any
        # Granula-instrumented run exposes.
        obs.append(Observation(
            platform=run.platform,
            n_edges=run.result.edges_visited / max(run.result.iterations,
                                                   1) * work_scale,
            edges_visited=run.result.edges_visited * work_scale,
            iterations=float(run.result.iterations),
            time_s=run.modeled_time_s,
        ))
    return obs


def fit_platform_model(observations: Sequence[Observation],
                       platform: str) -> FittedPlatformModel:
    """Non-negative least-squares fit of the four-term cost model."""
    rows = [o for o in observations if o.platform == platform]
    if len(rows) < 4:
        raise ValueError(
            f"need at least 4 observations for {platform!r}, got "
            f"{len(rows)}")
    X = np.array([[1.0, o.n_edges, o.edges_visited, o.iterations]
                  for o in rows])
    y = np.array([o.time_s for o in rows])
    coef, *_ = np.linalg.lstsq(X, y, rcond=None)
    coef = np.maximum(coef, 0.0)  # cost coefficients are non-negative
    model = FittedPlatformModel(
        platform=platform,
        setup_s=float(coef[0]),
        load_per_edge_s=float(coef[1]),
        compute_per_edge_visit_s=float(coef[2]),
        per_iteration_s=float(coef[3]),
        training_error=0.0,
    )
    predictions = X @ coef
    rel_err = np.abs(predictions - y) / np.maximum(y, 1e-9)
    return FittedPlatformModel(
        platform=platform, setup_s=model.setup_s,
        load_per_edge_s=model.load_per_edge_s,
        compute_per_edge_visit_s=model.compute_per_edge_visit_s,
        per_iteration_s=model.per_iteration_s,
        training_error=float(rel_err.mean()),
    )


def cross_validate(observations: Sequence[Observation], platform: str
                   ) -> float:
    """Leave-one-out mean relative prediction error — how well the
    fitted model generalizes to unseen (A, D) cells."""
    rows = [o for o in observations if o.platform == platform]
    if len(rows) < 5:
        raise ValueError("need at least 5 observations to cross-validate")
    errors = []
    for held_out in range(len(rows)):
        train = [o for i, o in enumerate(rows) if i != held_out]
        model = fit_platform_model(train, platform)
        target = rows[held_out]
        predicted = model.predict(target.n_edges, target.edges_visited,
                                  target.iterations)
        errors.append(abs(predicted - target.time_s)
                      / max(target.time_s, 1e-9))
    return float(np.mean(errors))
