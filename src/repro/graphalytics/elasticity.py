"""Elasticity in graph analytics ([111], the Table 8 elasticity row).

The [111] benchmark asks how graph-processing platforms behave when
resources change *during* execution. Graph jobs have phases of very
different useful parallelism (loading is nearly serial; the superstep
core scales; the tail of a traversal does not), so:

- a **static-small** deployment is cheap but slow;
- a **static-large** deployment is fast but *wastes* capacity during the
  low-parallelism phases (provisioned ≫ usable);
- an **elastic** deployment tracks each phase's useful parallelism,
  paying a reconfiguration pause per capacity change.

The model: a job is a sequence of :class:`WorkPhase` (work volume, max
useful scale); capacity is a timeline of :class:`CapacityPhase`;
progress rate is ``base_rate × min(capacity, useful)``; the *footprint*
charges provisioned capacity × time, used or not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class WorkPhase:
    """One phase of the job: ``work`` units, useful up to ``max_scale``."""

    name: str
    work: float
    max_scale: float

    def __post_init__(self):
        if self.work <= 0 or self.max_scale <= 0:
            raise ValueError(f"phase {self.name}: work and max_scale must "
                             "be positive")


@dataclass(frozen=True)
class CapacityPhase:
    """Provisioned capacity ``scale`` from ``start`` onward."""

    start: float
    scale: float


#: A stylized graph-analytics job: serial load, scalable supersteps,
#: poorly-scaling convergence tail.
DEFAULT_JOB: tuple[WorkPhase, ...] = (
    WorkPhase("load", work=600_000.0, max_scale=1.0),
    WorkPhase("supersteps", work=3_000_000.0, max_scale=8.0),
    WorkPhase("tail", work=400_000.0, max_scale=1.5),
)


@dataclass
class ElasticRun:
    """Outcome of one elastic (or static) execution."""

    label: str
    makespan_s: float
    #: Provisioned capacity × time — what you pay for.
    resource_seconds: float
    #: Capacity × time actually used by the job.
    used_resource_seconds: float
    reconfigurations: int
    reconfiguration_time_s: float

    @property
    def efficiency(self) -> float:
        if self.resource_seconds == 0:
            return 0.0
        return self.used_resource_seconds / self.resource_seconds

    @property
    def overhead_fraction(self) -> float:
        if self.makespan_s == 0:
            return 0.0
        return self.reconfiguration_time_s / self.makespan_s


def run_elastic(job: Sequence[WorkPhase],
                capacity: Sequence[CapacityPhase],
                base_rate: float = 1000.0,
                reconfig_penalty_s: float = 20.0,
                label: str = "elastic",
                max_time_s: float = 10**9) -> ElasticRun:
    """Process the job's phases through the capacity timeline."""
    if not job:
        raise ValueError("job needs at least one phase")
    capacity = sorted(capacity, key=lambda p: p.start)
    if not capacity or capacity[0].start != 0.0:
        raise ValueError("capacity must start at t=0")
    if any(c.scale < 0 for c in capacity):
        raise ValueError("capacity scales must be >= 0")

    t = 0.0
    provisioned = 0.0
    used = 0.0
    reconfigs = 0
    reconfig_time = 0.0
    cap_idx = 0
    work_idx = 0
    remaining = job[0].work
    paused_until = 0.0
    while work_idx < len(job):
        if t >= max_time_s:
            raise RuntimeError(f"{label}: did not finish in {max_time_s}s")
        scale = capacity[cap_idx].scale
        # Next capacity boundary (if any).
        next_change = (capacity[cap_idx + 1].start
                       if cap_idx + 1 < len(capacity) else float("inf"))
        if t >= next_change - 1e-12:
            cap_idx += 1
            reconfigs += 1
            reconfig_time += reconfig_penalty_s
            provisioned += capacity[cap_idx].scale * reconfig_penalty_s
            t += reconfig_penalty_s
            paused_until = t
            continue
        useful = min(scale, job[work_idx].max_scale)
        rate = base_rate * useful
        if rate <= 0:
            # Idle until the next capacity change.
            if next_change == float("inf"):
                raise RuntimeError(
                    f"{label}: zero capacity with work remaining")
            provisioned += scale * (next_change - t)
            t = next_change
            continue
        finish_in = remaining / rate
        segment = min(finish_in, next_change - t)
        provisioned += scale * segment
        used += useful * segment
        remaining -= rate * segment
        t += segment
        if remaining <= 1e-9:
            work_idx += 1
            if work_idx < len(job):
                remaining = job[work_idx].work
    return ElasticRun(label=label, makespan_s=t,
                      resource_seconds=provisioned,
                      used_resource_seconds=used,
                      reconfigurations=reconfigs,
                      reconfiguration_time_s=reconfig_time)


def elasticity_study(job: Sequence[WorkPhase] = DEFAULT_JOB,
                     base_rate: float = 1000.0,
                     small: float = 1.0, large: float = 8.0,
                     reconfig_penalty_s: float = 20.0
                     ) -> dict[str, ElasticRun]:
    """The [111] comparison: static-small vs static-large vs elastic.

    The elastic capacity timeline tracks each phase's useful parallelism
    (computed from the job's own structure, as a workflow-aware
    autoscaler would).
    """
    static_small = run_elastic(job, [CapacityPhase(0.0, small)],
                               base_rate, reconfig_penalty_s,
                               label="static-small")
    static_large = run_elastic(job, [CapacityPhase(0.0, large)],
                               base_rate, reconfig_penalty_s,
                               label="static-large")
    # Elastic: provision each phase's useful parallelism (capped by
    # 'large'), transitioning at the phase boundaries it would hit.
    phases = []
    t = 0.0
    for idx, wp in enumerate(job):
        scale = min(wp.max_scale, large)
        phases.append(CapacityPhase(t, scale))
        t += wp.work / (base_rate * scale) + (
            reconfig_penalty_s if idx + 1 < len(job) else 0.0)
    elastic = run_elastic(job, phases, base_rate, reconfig_penalty_s,
                          label="elastic")
    return {run.label: run for run in (static_small, static_large,
                                       elastic)}
