"""The six LDBC Graphalytics algorithm kernels.

Each kernel returns an :class:`AlgorithmResult` carrying the per-vertex
output *and* the iteration/edge-visit counts the platform cost models
consume — the quantities Granula breaks performance down into.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

import networkx as nx
import numpy as np


@dataclass
class AlgorithmResult:
    """Output plus the work accounting of one kernel run."""

    algorithm: str
    values: dict[Any, float]
    iterations: int
    edges_visited: int

    def __len__(self) -> int:
        return len(self.values)


def bfs(graph: nx.Graph, source: Any) -> AlgorithmResult:
    """Breadth-first search: per-vertex depth from the source
    (unreachable vertices get +inf, per the LDBC spec)."""
    if source not in graph:
        raise KeyError(f"source {source!r} not in graph")
    depth = {v: float("inf") for v in graph.nodes}
    depth[source] = 0.0
    frontier = deque([source])
    edges_visited = 0
    max_depth = 0
    while frontier:
        u = frontier.popleft()
        for w in graph.neighbors(u):
            edges_visited += 1
            if depth[w] == float("inf"):
                depth[w] = depth[u] + 1
                max_depth = max(max_depth, int(depth[w]))
                frontier.append(w)
    return AlgorithmResult("bfs", depth, iterations=max_depth,
                           edges_visited=edges_visited)


def pagerank(graph: nx.Graph, damping: float = 0.85,
             max_iterations: int = 30,
             tolerance: float = 1e-6) -> AlgorithmResult:
    """Power-iteration PageRank (the fixed-iteration LDBC variant with an
    early-out on convergence)."""
    n = graph.number_of_nodes()
    if n == 0:
        return AlgorithmResult("pagerank", {}, 0, 0)
    nodes = list(graph.nodes)
    index = {v: i for i, v in enumerate(nodes)}
    rank = np.full(n, 1.0 / n)
    out_degree = np.array([max(graph.degree(v), 1) for v in nodes],
                          dtype=float)
    edges_visited = 0
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        new_rank = np.full(n, (1 - damping) / n)
        contrib = damping * rank / out_degree
        for v in nodes:
            i = index[v]
            for w in graph.neighbors(v):
                new_rank[index[w]] += contrib[i]
                edges_visited += 1
        delta = np.abs(new_rank - rank).sum()
        rank = new_rank
        if delta < tolerance:
            break
    return AlgorithmResult("pagerank",
                           {v: float(rank[index[v]]) for v in nodes},
                           iterations=iterations,
                           edges_visited=edges_visited)


def wcc(graph: nx.Graph) -> AlgorithmResult:
    """Weakly connected components: per-vertex component label."""
    labels: dict[Any, float] = {}
    edges_visited = 0
    for comp_id, component in enumerate(nx.connected_components(graph)):
        for v in component:
            labels[v] = float(comp_id)
        edges_visited += sum(graph.degree(v) for v in component)
    return AlgorithmResult("wcc", labels, iterations=1,
                           edges_visited=edges_visited)


def cdlp(graph: nx.Graph, max_iterations: int = 10) -> AlgorithmResult:
    """Community detection by (synchronous, deterministic) label
    propagation: each vertex adopts the smallest most-frequent neighbour
    label — the LDBC-specified tie-break."""
    labels = {v: v for v in graph.nodes}
    edges_visited = 0
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        new_labels = {}
        changed = False
        for v in graph.nodes:
            counts: dict[Any, int] = {}
            for w in graph.neighbors(v):
                counts[labels[w]] = counts.get(labels[w], 0) + 1
                edges_visited += 1
            if counts:
                best = max(counts.values())
                new = min(l for l, c in counts.items() if c == best)
            else:
                new = labels[v]
            new_labels[v] = new
            changed = changed or new != labels[v]
        labels = new_labels
        if not changed:
            break
    return AlgorithmResult(
        "cdlp", {v: float(hash(l) % 10**9) if not isinstance(l, (int, float))
                 else float(l) for v, l in labels.items()},
        iterations=iterations, edges_visited=edges_visited)


def lcc(graph: nx.Graph) -> AlgorithmResult:
    """Local clustering coefficient per vertex."""
    values = {}
    edges_visited = 0
    for v in graph.nodes:
        neighbors = list(graph.neighbors(v))
        k = len(neighbors)
        edges_visited += k
        if k < 2:
            values[v] = 0.0
            continue
        links = 0
        neighbor_set = set(neighbors)
        for w in neighbors:
            links += sum(1 for x in graph.neighbors(w) if x in neighbor_set)
            edges_visited += graph.degree(w)
        values[v] = links / (k * (k - 1))
    return AlgorithmResult("lcc", values, iterations=1,
                           edges_visited=edges_visited)


def sssp(graph: nx.Graph, source: Any,
         weight: str = "weight") -> AlgorithmResult:
    """Single-source shortest paths (Dijkstra; unit weights if absent)."""
    if source not in graph:
        raise KeyError(f"source {source!r} not in graph")
    import heapq
    dist = {v: float("inf") for v in graph.nodes}
    dist[source] = 0.0
    heap = [(0.0, source)]
    edges_visited = 0
    settled = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for w in graph.neighbors(u):
            edges_visited += 1
            step = graph[u][w].get(weight, 1.0)
            if d + step < dist[w]:
                dist[w] = d + step
                heapq.heappush(heap, (dist[w], w))
    return AlgorithmResult("sssp", dist, iterations=len(settled),
                           edges_visited=edges_visited)


#: The LDBC Graphalytics suite. Values: (function, needs_source).
ALGORITHMS: dict[str, tuple] = {
    "bfs": (bfs, True),
    "pagerank": (pagerank, False),
    "wcc": (wcc, False),
    "cdlp": (cdlp, False),
    "lcc": (lcc, False),
    "sssp": (sssp, True),
}


def run_algorithm(name: str, graph: nx.Graph,
                  source: Optional[Any] = None) -> AlgorithmResult:
    """Dispatch one kernel, picking a default source where needed."""
    if name not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {name!r}; known: "
                       f"{sorted(ALGORITHMS)}")
    fn, needs_source = ALGORITHMS[name]
    if needs_source:
        if source is None:
            if graph.number_of_nodes() == 0:
                raise ValueError("empty graph")
            source = min(graph.nodes)
        return fn(graph, source)
    return fn(graph)
