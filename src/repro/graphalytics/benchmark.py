"""The benchmark harness and the PAD-law analysis.

``run_benchmark`` sweeps the Platform × Algorithm × Dataset grid (the PAD
triangle of [105]); ``pad_interaction_analysis`` quantifies the law —
performance depends on the *interaction*, so no platform dominates and
rankings flip across (A, D) cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Optional, Sequence

import numpy as np

from repro.graphalytics.datasets import make_dataset
from repro.graphalytics.platforms import PLATFORMS, Platform, PlatformRun
from repro.sim import RandomStreams


@dataclass
class BenchmarkReport:
    """All runs of one benchmark sweep plus convenience views."""

    runs: list[PlatformRun] = field(default_factory=list)

    def cell(self, algorithm: str, dataset: str) -> list[PlatformRun]:
        return [r for r in self.runs
                if r.algorithm == algorithm and r.dataset == dataset]

    def ranking(self, algorithm: str, dataset: str) -> list[str]:
        """Platforms fastest-first in one (A, D) cell; failures last."""
        cell = self.cell(algorithm, dataset)
        return [r.platform for r in sorted(
            cell, key=lambda r: (r.modeled_time_s, r.platform))]

    def cells(self) -> list[tuple[str, str]]:
        return sorted({(r.algorithm, r.dataset) for r in self.runs})

    def winners(self) -> dict[tuple[str, str], str]:
        return {cell: self.ranking(*cell)[0] for cell in self.cells()}

    def failures(self) -> list[PlatformRun]:
        return [r for r in self.runs if r.failed]

    def rows(self) -> list[dict]:
        return [{
            "platform": r.platform, "algorithm": r.algorithm,
            "dataset": r.dataset, "time_s": round(r.modeled_time_s, 4),
            "bottleneck": r.breakdown.bottleneck() if not r.failed
            else "failed",
        } for r in self.runs]


def run_benchmark(platforms: Optional[Sequence[Platform]] = None,
                  algorithms: Sequence[str] = ("bfs", "pagerank", "wcc",
                                               "cdlp", "lcc", "sssp"),
                  datasets: Sequence[str] = ("scale-free", "small-world",
                                             "road", "random"),
                  n_vertices: int = 2000,
                  seed: int = 0,
                  work_scale: float = 300.0) -> BenchmarkReport:
    """The Graphalytics sweep: every platform runs every algorithm on
    every dataset (same graph instance per dataset across platforms).

    ``work_scale`` extrapolates the measured sample to a realistically
    sized dataset (see :meth:`Platform.model_time`).
    """
    platforms = list(platforms) if platforms is not None else list(
        PLATFORMS.values())
    streams = RandomStreams(seed)
    report = BenchmarkReport()
    for dataset_name in datasets:
        graph = make_dataset(dataset_name, n_vertices,
                             streams.get(f"dataset:{dataset_name}"),
                             weighted=True)
        for algorithm in algorithms:
            for platform in platforms:
                report.runs.append(
                    platform.run(algorithm, graph, dataset_name,
                                 work_scale=work_scale))
    return report


def pad_interaction_analysis(report: BenchmarkReport) -> dict[str, object]:
    """Quantify the PAD law on a benchmark report.

    Returns:

    - ``distinct_rankings``: number of distinct platform orderings across
      (A, D) cells — the law holds when > 1;
    - ``no_dominant_platform``: True when no platform wins every cell;
    - ``winner_counts``: wins per platform;
    - ``interaction_strength``: 1 - (wins of the most-winning platform /
      cells) — 0 means one platform dominates (no law), higher means the
      interaction decides.
    """
    winners = report.winners()
    if not winners:
        raise ValueError("empty benchmark report")
    rankings = {cell: tuple(report.ranking(*cell))
                for cell in report.cells()}
    winner_counts: dict[str, int] = {}
    for winner in winners.values():
        winner_counts[winner] = winner_counts.get(winner, 0) + 1
    top_wins = max(winner_counts.values())
    return {
        "n_cells": len(winners),
        "distinct_rankings": len(set(rankings.values())),
        "no_dominant_platform": top_wins < len(winners),
        "winner_counts": dict(sorted(winner_counts.items())),
        "interaction_strength": 1.0 - top_wins / len(winners),
    }


def hpad_analysis(report: BenchmarkReport,
                  heterogeneous: Sequence[str] = ("gpu", "hybrid-cpu-gpu"),
                  ) -> dict[str, object]:
    """The HPAD refinement ([106]): on heterogeneous hardware the 'H'
    dimension matters — heterogeneous platforms win only on the subset of
    (A, D) cells whose structure suits them, and can fail outright
    (device memory) elsewhere."""
    het = set(heterogeneous)
    winners = report.winners()
    het_wins = [cell for cell, w in winners.items() if w in het]
    het_failures = [r for r in report.failures() if r.platform in het]
    return {
        "het_win_cells": sorted(het_wins),
        "het_win_fraction": len(het_wins) / len(winners) if winners else 0.0,
        "het_failures": [(r.platform, r.algorithm, r.dataset)
                         for r in het_failures],
        "pad_only_special_case": 0.0 < (
            len(het_wins) / len(winners) if winners else 0.0) < 1.0,
    }
