"""Platform performance models with distinct cost profiles.

Each platform *really runs* the kernel (over networkx) for correct output,
then models the runtime from the kernel's work accounting and the
dataset's structure. The profiles are stylized from the paper's studies:

- ``cpu-single``: no distribution overhead, but no parallelism — wins on
  small graphs;
- ``cpu-distributed``: parallel edge processing but a per-iteration
  synchronization barrier — loses on high-diameter/iterative workloads;
- ``gpu``: an order of magnitude faster per edge, but degree skew breaks
  its regular parallelism ([109]) and device memory caps the graph size;
- ``hybrid-cpu-gpu``: the heterogeneous platform of [110]/[106] — between
  the two, with a milder skew penalty.

Because each profile is sensitive to a different dataset/algorithm
property, platform rankings flip across the PAD grid — the PAD law.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional

import networkx as nx

from repro.graphalytics.algorithms import AlgorithmResult, run_algorithm
from repro.graphalytics.datasets import DatasetProperties, dataset_properties


@dataclass
class PhaseBreakdown:
    """Granula-style phase decomposition of one run ([100])."""

    setup_s: float
    load_s: float
    compute_s: float

    @property
    def total_s(self) -> float:
        return self.setup_s + self.load_s + self.compute_s

    def bottleneck(self) -> str:
        """Grade10-style attribution: the dominating phase."""
        phases = {"setup": self.setup_s, "load": self.load_s,
                  "compute": self.compute_s}
        return max(sorted(phases), key=lambda k: phases[k])


@dataclass
class PlatformRun:
    """One (platform, algorithm, dataset) cell of the benchmark."""

    platform: str
    algorithm: str
    dataset: str
    modeled_time_s: float
    breakdown: PhaseBreakdown
    result: AlgorithmResult
    wall_clock_s: float = 0.0
    failed: bool = False
    failure_reason: str = ""


@dataclass(frozen=True)
class Platform:
    """A platform's cost profile (seconds per unit of work)."""

    name: str
    setup_s: float               # job submission / JVM / kernel launch
    load_per_edge_s: float       # graph ingest
    compute_per_edge_s: float    # per edge visit
    per_iteration_s: float       # per-superstep barrier
    #: Skew penalty: compute cost multiplied by (1 + skew_factor × skew/100).
    skew_factor: float = 0.0
    #: Maximum edges that fit (None = unbounded).
    max_edges: Optional[int] = None

    def model_time(self, props: DatasetProperties,
                   result: AlgorithmResult,
                   work_scale: float = 1.0) -> PhaseBreakdown:
        """Model the runtime.

        ``work_scale`` treats the measured graph as a 1/work_scale sample
        of the real dataset: edge work and memory footprint scale up,
        iteration counts (diameter-driven) do not — the standard
        sample-then-extrapolate calibration of simulation-based
        benchmarking (Challenge C3).
        """
        scaled_edges = props.n_edges * work_scale
        if self.max_edges is not None and scaled_edges > self.max_edges:
            raise MemoryError(
                f"{self.name}: graph of {scaled_edges:.0f} edges exceeds "
                f"device capacity {self.max_edges}")
        skew_penalty = 1.0 + self.skew_factor * props.degree_skew / 100.0
        compute = (result.edges_visited * work_scale
                   * self.compute_per_edge_s * skew_penalty
                   + result.iterations * self.per_iteration_s)
        return PhaseBreakdown(
            setup_s=self.setup_s,
            load_s=scaled_edges * self.load_per_edge_s,
            compute_s=compute,
        )

    def run(self, algorithm: str, graph: nx.Graph, dataset_name: str,
            source: Any = None, work_scale: float = 1.0) -> PlatformRun:
        """Execute the kernel and model the platform's runtime."""
        props = dataset_properties(dataset_name, graph)
        # Wall clock is deliberate here: it measures the *real* networkx
        # kernel execution for the diagnostic `wall_clock_s` field and
        # never feeds modeled (sim) time.
        t0 = time.perf_counter()  # simlint: disable=SL002
        result = run_algorithm(algorithm, graph, source=source)
        wall = time.perf_counter() - t0  # simlint: disable=SL002
        try:
            breakdown = self.model_time(props, result, work_scale)
        except MemoryError as err:
            return PlatformRun(
                platform=self.name, algorithm=algorithm,
                dataset=dataset_name, modeled_time_s=float("inf"),
                breakdown=PhaseBreakdown(0, 0, 0), result=result,
                wall_clock_s=wall, failed=True, failure_reason=str(err))
        return PlatformRun(
            platform=self.name, algorithm=algorithm, dataset=dataset_name,
            modeled_time_s=breakdown.total_s, breakdown=breakdown,
            result=result, wall_clock_s=wall)


#: The benchmark's platform roster.
PLATFORMS: dict[str, Platform] = {p.name: p for p in [
    Platform("cpu-single", setup_s=0.5,
             load_per_edge_s=4e-7, compute_per_edge_s=2.5e-7,
             per_iteration_s=0.0005, skew_factor=0.0),
    Platform("cpu-distributed", setup_s=8.0,
             load_per_edge_s=1.5e-7, compute_per_edge_s=3e-8,
             per_iteration_s=0.35, skew_factor=2.0),
    Platform("gpu", setup_s=2.0,
             load_per_edge_s=2.5e-7, compute_per_edge_s=4e-9,
             per_iteration_s=0.01, skew_factor=300.0,
             max_edges=2_000_000),
    Platform("hybrid-cpu-gpu", setup_s=4.0,
             load_per_edge_s=2e-7, compute_per_edge_s=1.2e-8,
             per_iteration_s=0.08, skew_factor=15.0),
]}
