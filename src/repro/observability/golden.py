"""The golden-trace regression harness: capture, diff, bless.

Every scenario in :data:`repro.observability.scenarios.SCENARIOS` has a
committed *golden document* under ``tests/golden/<name>.json``: the
scenario's full span trace, its metrics snapshot, its summary dict, and
a content digest, all captured at :data:`~repro.observability.scenarios.
GOLDEN_SEED`. The regression test re-runs each scenario and diffs the
fresh document against the committed one **structurally** — span by
span, field by field — so a behavior change fails with a readable list
of what moved (a span's status flipped, a retry event appeared, a
metric's total changed), not an opaque hash mismatch.

Workflow when a diff is *intended* (you changed domain behavior on
purpose): re-bless the corpus and commit the updated files together
with the code change, so the trace diff is reviewable in the PR::

    python -m repro.observability.golden --update

CLI::

    python -m repro.observability.golden --check            # diff all
    python -m repro.observability.golden --update [name...] # re-bless
    python -m repro.observability.golden --list             # corpus
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.observability.scenarios import GOLDEN_SEED, SCENARIOS, \
    run_scenario

#: Bump when the golden *document* schema (not the trace schema) changes.
GOLDEN_FORMAT_VERSION = 1

#: Default corpus location: ``tests/golden/`` at the repo root.
GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden"

#: Span fields compared by the structural diff, in report order.
_SPAN_FIELDS = ("name", "domain", "status", "parent_id",
                "t_start", "t_end", "tags", "events")

_MAX_DIFF_LINES = 25


def capture(name: str, seed: int = GOLDEN_SEED) -> dict:
    """Run one scenario and build its golden document."""
    tracer, registry, summary = run_scenario(name, seed=seed)
    return {
        "format": GOLDEN_FORMAT_VERSION,
        "scenario": name,
        "seed": seed,
        "digest": tracer.digest(),
        "trace": tracer.to_dict(),
        "metrics": registry.snapshot(),
        "summary": summary,
    }


def document_json(doc: dict) -> str:
    """Canonical serialization of a golden document (what gets committed)."""
    return json.dumps(doc, sort_keys=True, indent=1,
                      ensure_ascii=True) + "\n"


def golden_path(name: str, directory: Optional[Path] = None) -> Path:
    return (directory or GOLDEN_DIR) / f"{name}.json"


def load(name: str, directory: Optional[Path] = None) -> dict:
    path = golden_path(name, directory)
    if not path.exists():
        raise FileNotFoundError(
            f"no golden document for {name!r} at {path}; bless it with "
            f"`python -m repro.observability.golden --update {name}`")
    return json.loads(path.read_text())


# -- structural diff ---------------------------------------------------------

def diff_traces(expected: dict, actual: dict) -> list[str]:
    """Span-level structural diff of two serialized traces.

    Returns human-readable difference lines (empty = traces match).
    Spans are matched by ``span_id`` — ids are allocation-ordered, so an
    inserted or dropped span shifts everything after it and shows up as
    a count mismatch plus the first diverging span.
    """
    diffs: list[str] = []
    exp_spans = expected.get("spans", [])
    act_spans = actual.get("spans", [])
    if expected.get("meta") != actual.get("meta"):
        diffs.append(f"trace meta: expected {expected.get('meta')!r}, "
                     f"got {actual.get('meta')!r}")
    if len(exp_spans) != len(act_spans):
        diffs.append(f"span count: expected {len(exp_spans)}, "
                     f"got {len(act_spans)}")
    for exp, act in zip(exp_spans, act_spans):
        label = f"span #{exp.get('span_id')} {exp.get('name')!r}"
        for fld in _SPAN_FIELDS:
            if exp.get(fld) != act.get(fld):
                diffs.append(f"{label} {fld}: expected {exp.get(fld)!r}, "
                             f"got {act.get(fld)!r}")
    return diffs


def diff_metrics(expected: dict, actual: dict) -> list[str]:
    """Key- and value-level diff of two registry snapshots."""
    diffs: list[str] = []
    for key in sorted(set(expected) - set(actual)):
        diffs.append(f"metric {key!r}: missing from this run")
    for key in sorted(set(actual) - set(expected)):
        diffs.append(f"metric {key!r}: not in the golden snapshot")
    for key in sorted(set(expected) & set(actual)):
        if expected[key] != actual[key]:
            diffs.append(f"metric {key!r}: expected {expected[key]!r}, "
                         f"got {actual[key]!r}")
    return diffs


def diff_documents(expected: dict, actual: dict) -> list[str]:
    """Full structural diff of two golden documents."""
    diffs = diff_traces(expected.get("trace", {}), actual.get("trace", {}))
    diffs += diff_metrics(expected.get("metrics", {}),
                          actual.get("metrics", {}))
    if expected.get("summary") != actual.get("summary"):
        diffs.append(f"summary: expected {expected.get('summary')!r}, "
                     f"got {actual.get('summary')!r}")
    if not diffs and expected.get("digest") != actual.get("digest"):
        # Should be unreachable: the digest covers exactly the trace the
        # span diff just compared. Report it rather than hide it.
        diffs.append(f"digest: expected {expected.get('digest')}, "
                     f"got {actual.get('digest')} (with no span diff!)")
    return diffs


def clip_diffs(diffs: list[str], limit: int = _MAX_DIFF_LINES) -> list[str]:
    if len(diffs) <= limit:
        return diffs
    return diffs[:limit] + [f"... and {len(diffs) - limit} more differences"]


def check(name: str, directory: Optional[Path] = None,
          seed: int = GOLDEN_SEED) -> list[str]:
    """Re-run ``name`` and diff against its committed golden document."""
    return clip_diffs(diff_documents(load(name, directory),
                                     capture(name, seed=seed)))


def update(names: Optional[list[str]] = None,
           directory: Optional[Path] = None,
           seed: int = GOLDEN_SEED) -> list[Path]:
    """Re-capture and write golden documents (the blessing step)."""
    directory = directory or GOLDEN_DIR
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name in names or list(SCENARIOS):
        doc = capture(name, seed=seed)
        path = golden_path(name, directory)
        path.write_text(document_json(doc))
        written.append(path)
    return written


# -- CLI ---------------------------------------------------------------------

def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability.golden",
        description="Capture, check, and bless golden scenario traces.")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--check", action="store_true",
                       help="diff every scenario against its golden file")
    group.add_argument("--update", action="store_true",
                       help="re-capture golden files (bless current "
                            "behavior)")
    group.add_argument("--list", action="store_true",
                       help="list scenarios and their golden digests")
    parser.add_argument("names", nargs="*",
                        help="scenario subset (default: all)")
    parser.add_argument("--seed", type=int, default=GOLDEN_SEED)
    parser.add_argument("--dir", type=Path, default=None,
                        help=f"corpus directory (default: {GOLDEN_DIR})")
    args = parser.parse_args(argv)

    names = args.names or list(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        parser.error(f"unknown scenarios: {unknown}; "
                     f"known: {sorted(SCENARIOS)}")

    if args.list:
        for name in names:
            try:
                doc = load(name, args.dir)
                print(f"{name:<16} {doc['digest'][:16]}  "
                      f"{doc['trace']['n_spans']} spans")
            except FileNotFoundError:
                print(f"{name:<16} (not blessed)")
        return 0

    if args.update:
        for path in update(names, args.dir, seed=args.seed):
            print(f"blessed {path}")
        return 0

    failed = 0
    for name in names:
        try:
            diffs = check(name, args.dir, seed=args.seed)
        except FileNotFoundError as exc:
            print(f"{name}: MISSING — {exc}")
            failed += 1
            continue
        if diffs:
            failed += 1
            print(f"{name}: {len(diffs)} difference(s)")
            for line in diffs:
                print(f"  {line}")
        else:
            print(f"{name}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
