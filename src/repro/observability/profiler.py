"""The sim profiler: wall-clock attribution for simulation hot paths.

The ROADMAP's "fast as the hardware allows" goal needs to know *where*
host time goes before any perf PR can claim a win. The profiler hooks
:meth:`repro.sim.Environment.step` (via ``Environment.profiled``) and
attributes real wall-clock time two ways:

- per **event kind** (``Timeout``, ``Process``, ``Initialize``, ...):
  how many dispatches of each kind, and how much host time their
  callbacks burned;
- per **process** (by generator name, e.g. ``_execute``, ``driver``,
  ``_reaper``): how many resumes each process function received and how
  much host time they cost — the "top-N hot processes" of the
  ``--profile`` report.

Reading the wall clock is exactly what sim code must never do (simlint
SL002) — the profiler is the measurement instrument, not sim logic, and
nothing it observes feeds back into simulated behavior, so the reads
are inline-disabled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ProfileEntry", "SimProfiler"]


@dataclass
class ProfileEntry:
    """One attribution bucket: dispatch/resume count and wall seconds."""

    name: str
    count: int = 0
    wall_s: float = 0.0

    def add(self, dt: float) -> None:
        self.count += 1
        self.wall_s += dt


@dataclass
class ProfileReport:
    """A rendered snapshot of the profiler (see :meth:`SimProfiler.report`)."""

    wall_s: float
    dispatches: int
    by_kind: list[ProfileEntry] = field(default_factory=list)
    by_process: list[ProfileEntry] = field(default_factory=list)

    @property
    def events_per_s(self) -> float:
        return self.dispatches / self.wall_s if self.wall_s > 0 else 0.0


class SimProfiler:
    """Collects wall-clock attribution from profiled environments.

    Use as a context manager (it installs itself process-wide via
    :meth:`repro.sim.Environment.profiled` and times the block)::

        profiler = SimProfiler()
        with profiler:
            run_overload_scenario(seed=7)
        print(profiler.report(top=10))
    """

    def __init__(self):
        self.kinds: dict[str, ProfileEntry] = {}
        self.processes: dict[str, ProfileEntry] = {}
        self.dispatches = 0
        #: Wall seconds spent inside profiled event callbacks.
        self.callback_wall_s = 0.0
        #: Wall seconds of the profiled block (enter to exit).
        self.wall_s = 0.0
        self._block_t0: Optional[float] = None
        self._ctx = None

    # -- the clock (the one sanctioned wall-clock read) --------------------
    @staticmethod
    def clock() -> float:
        return time.perf_counter()  # simlint: disable=SL002

    # -- Environment.step hooks --------------------------------------------
    def account_dispatch(self, kind: str, dt: float) -> None:
        entry = self.kinds.get(kind)
        if entry is None:
            entry = self.kinds[kind] = ProfileEntry(kind)
        entry.add(dt)
        self.dispatches += 1
        self.callback_wall_s += dt

    def account_callback(self, callback, dt: float) -> None:
        owner = getattr(callback, "__self__", None)
        generator = getattr(owner, "_generator", None)
        if generator is None:
            return  # not a process resume (e.g. a Condition check)
        name = getattr(generator, "__name__", type(owner).__name__)
        entry = self.processes.get(name)
        if entry is None:
            entry = self.processes[name] = ProfileEntry(name)
        entry.add(dt)

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "SimProfiler":
        from repro.sim import Environment
        self._block_t0 = self.clock()
        self._ctx = Environment.profiled(self)
        self._ctx.__enter__()
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self._ctx.__exit__(exc_type, exc_val, exc_tb)
        self._ctx = None
        self.wall_s += self.clock() - self._block_t0
        self._block_t0 = None

    # -- reporting ---------------------------------------------------------
    def events_per_s(self) -> float:
        return self.dispatches / self.wall_s if self.wall_s > 0 else 0.0

    def top_processes(self, n: int = 10) -> list[ProfileEntry]:
        return sorted(self.processes.values(),
                      key=lambda e: (-e.wall_s, e.name))[:n]

    def top_kinds(self, n: int = 10) -> list[ProfileEntry]:
        return sorted(self.kinds.values(),
                      key=lambda e: (-e.wall_s, e.name))[:n]

    def snapshot(self) -> ProfileReport:
        return ProfileReport(
            wall_s=self.wall_s,
            dispatches=self.dispatches,
            by_kind=self.top_kinds(n=len(self.kinds)),
            by_process=self.top_processes(n=len(self.processes)),
        )

    def report(self, top: int = 10) -> str:
        """The ``--profile`` report: totals, hot processes, event kinds."""
        lines = [
            f"sim profile: {self.dispatches} dispatches in "
            f"{self.wall_s:.3f}s wall "
            f"({self.events_per_s():,.0f} events/s), "
            f"{self.callback_wall_s:.3f}s in callbacks",
            "",
            f"top {top} processes by wall time:",
            f"  {'process':<28}{'resumes':>10}{'wall s':>10}{'us/resume':>12}",
        ]
        for entry in self.top_processes(top):
            per = entry.wall_s / entry.count * 1e6 if entry.count else 0.0
            lines.append(f"  {entry.name:<28}{entry.count:>10}"
                         f"{entry.wall_s:>10.4f}{per:>12.1f}")
        lines += [
            "",
            "event kinds:",
            f"  {'kind':<28}{'dispatches':>10}{'wall s':>10}",
        ]
        for entry in self.top_kinds(top):
            lines.append(f"  {entry.name:<28}{entry.count:>10}"
                         f"{entry.wall_s:>10.4f}")
        return "\n".join(lines)
