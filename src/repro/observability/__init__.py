"""Observability for scenario runs: spans, metrics, and the sim profiler.

The paper's decade of design experiments all rest on *measuring* running
ecosystems; this package is the unified way to see what a scenario did:

- :class:`Tracer` / :class:`Span` — structured, hierarchical tracing in
  sim time with deterministic serialization and a content digest
  (the substrate of the golden-trace regression harness in
  :mod:`repro.observability.golden`);
- :class:`MetricsRegistry` — namespaced metrics
  (``serverless.invocations.shed``) with labels, absorbed from the
  per-domain :class:`~repro.sim.Monitor` instances, exported
  Prometheus-style;
- :class:`SimProfiler` — wall-clock and event-count attribution per
  process and per event kind, for the ``--profile`` report.

Submodules :mod:`~repro.observability.scenarios` (canonical small
scenarios per domain) and :mod:`~repro.observability.golden` (the
golden-trace corpus tooling, also a CLI:
``python -m repro.observability.golden --update``) import the domain
packages and are therefore *not* re-exported here — import them
explicitly.
"""

from repro.observability.profiler import ProfileEntry, SimProfiler
from repro.sim.registry import (
    METRIC_NAME_RE,
    MetricsRegistry,
    metric_name,
)
from repro.observability.trace import (
    Span,
    SpanEvent,
    TRACE_FORMAT_VERSION,
    Tracer,
)

__all__ = [
    "METRIC_NAME_RE",
    "MetricsRegistry",
    "ProfileEntry",
    "SimProfiler",
    "Span",
    "SpanEvent",
    "TRACE_FORMAT_VERSION",
    "Tracer",
    "metric_name",
]
