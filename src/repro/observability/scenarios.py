"""Canonical small scenarios, one per domain — the golden-trace corpus.

Each scenario is a deterministic function of ``seed`` alone: it runs a
deliberately small configuration of one domain with a
:class:`~repro.observability.Tracer` and a
:class:`~repro.observability.MetricsRegistry` attached, and returns a
short summary dict. The serialized trace + metrics snapshot of each
scenario is committed under ``tests/golden/`` and structurally diffed on
every test run (see :mod:`repro.observability.golden`), so any behavior
change in a domain's event flow shows up as a span diff — reviewable,
blameable, and re-blessed only on purpose.

Keep scenarios SMALL (sub-second each): the corpus runs in every test
session. Changing a scenario's configuration invalidates its golden
trace; re-bless with ``python -m repro.observability.golden --update``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sim.registry import MetricsRegistry
from repro.observability.trace import Tracer

#: Bump together with a scenario change that intentionally rewrites its
#: golden trace, so the corpus files record why they changed.
SCENARIO_REVISION = 1


def scenario_serverless(tracer: Tracer, registry: MetricsRegistry,
                        seed: int) -> dict:
    """Transient faults + retries on a small FaaS platform."""
    from repro.faults.chaos import run_serverless_scenario
    return run_serverless_scenario(
        seed=seed, error_rate=0.2, retry=True, n_invocations=30,
        rate_per_s=4.0, runtime_s=0.4, tracer=tracer, registry=registry)


def scenario_scheduling(tracer: Tracer, registry: MetricsRegistry,
                        seed: int) -> dict:
    """A bag of tasks on a crashing cluster with requeue."""
    from repro.faults.chaos import run_scheduling_scenario
    return run_scheduling_scenario(
        seed=seed, mtbf_s=400.0, mttr_s=40.0, requeue=True,
        n_tasks=24, n_machines=4, tracer=tracer, registry=registry)


def scenario_p2p(tracer: Tracer, registry: MetricsRegistry,
                 seed: int) -> dict:
    """A small swarm with churn under Poisson arrivals."""
    from repro.p2p.peer import ContentDescriptor
    from repro.p2p.swarm import SwarmConfig, run_swarm
    from repro.p2p.tracker import Tracker
    from repro.sim import RandomStreams
    from repro.workload.arrivals import PoissonArrivals

    streams = RandomStreams(seed)
    config = SwarmConfig(
        content=ContentDescriptor("golden", "720p", size_mb=40.0),
        initial_seeds=1, round_s=10.0, horizon_s=1800.0,
        seed_linger_s=300.0, mean_session_s=900.0)
    arrivals = PoissonArrivals(rate=1 / 120.0,
                               rng=streams.get("p2p-arrivals"))
    result = run_swarm(config, Tracker("golden"), streams.get("p2p-swarm"),
                       arrivals=arrivals, tracer=tracer, registry=registry)
    return {
        "peers": len(result.peers),
        "completed": len(result.completed),
        "churned": result.churned_count,
        "peak_swarm_size": result.peak_swarm_size(),
    }


def scenario_graphalytics(tracer: Tracer, registry: MetricsRegistry,
                          seed: int) -> dict:
    """A checkpointed BSP kernel under crash-restart faults."""
    from repro.graphalytics.robustness import run_supersteps_with_recovery
    from repro.recovery import CheckpointStore, PeriodicCheckpoint
    from repro.sim import Environment, RandomStreams

    streams = RandomStreams(seed)
    env = Environment()
    result = run_supersteps_with_recovery(
        n_supersteps=12, superstep_s=5.0,
        mtbf_s=45.0, mttr_s=8.0, rng=streams.get("graphalytics-crash"),
        policy=PeriodicCheckpoint(15.0),
        store=CheckpointStore(env, tier="local"),
        checkpoint_size_mb=50.0, restart_cost_s=1.0,
        algorithm="pagerank", env=env, tracer=tracer, registry=registry)
    return {
        "crashes": result.crashes,
        "lost_supersteps": result.lost_supersteps,
        "checkpoints": result.checkpoints_written,
        "makespan_s": round(result.makespan_s, 6),
    }


def scenario_mmog(tracer: Tracer, registry: MetricsRegistry,
                  seed: int) -> dict:
    """Brownout provisioning against a noisy diurnal demand ramp."""
    from repro.mmog.provisioning import TrendPredictor, \
        run_brownout_provisioning
    from repro.resilience import BrownoutController
    from repro.sim import RandomStreams

    rng = RandomStreams(seed).get("mmog-demand")
    steps = 48
    demand = [max(0.0, 600.0 + 450.0 * math.sin(2 * math.pi * i / steps)
                  + float(rng.normal(0.0, 40.0)))
              for i in range(steps)]
    result = run_brownout_provisioning(
        demand, TrendPredictor(window=4), BrownoutController(),
        players_per_server=100, step_s=300.0,
        provisioning_delay_steps=2, tracer=tracer, registry=registry)
    return {
        "server_hours": round(result.server_hours, 6),
        "degraded_fraction": round(result.degraded_fraction, 6),
        "mean_update_fidelity": round(result.mean_update_fidelity, 6),
    }


def scenario_autoscaling(tracer: Tracer, registry: MetricsRegistry,
                         seed: int) -> dict:
    """Map-reduce workflows under a reactive autoscaler."""
    from repro.autoscaling.autoscalers import make_autoscaler
    from repro.autoscaling.experiment import ExperimentConfig, \
        run_autoscaling_experiment
    from repro.sim import RandomStreams
    from repro.workload.task import MapReduceJob

    rng = RandomStreams(seed).get("autoscaling-work")
    workflows = [
        MapReduceJob(n_maps=3, n_reduces=2,
                     map_work=float(rng.uniform(60.0, 120.0)),
                     reduce_work=float(rng.uniform(90.0, 150.0)),
                     submit_time=i * 180.0, name=f"mr{i}")
        for i in range(3)
    ]
    result = run_autoscaling_experiment(
        workflows, make_autoscaler("react"),
        ExperimentConfig(step_s=30.0, provisioning_delay_steps=1,
                         max_supply=64.0),
        tracer=tracer, registry=registry)
    return {
        "workflows": result.n_workflows,
        "violations": result.deadline_violations,
        "mean_makespan": round(result.mean_makespan, 6),
        "resource_seconds": round(result.resource_seconds, 6),
    }


def scenario_recovery(tracer: Tracer, registry: MetricsRegistry,
                      seed: int) -> dict:
    """One checkpointed job under crash-restart, Daly-optimal interval."""
    from repro.faults.chaos import run_recovery_scenario
    result = run_recovery_scenario(
        seed=seed, policy="daly", work_s=400.0, mtbf_s=150.0,
        mttr_s=10.0, checkpoint_size_mb=50.0, restart_cost_s=1.0,
        tracer=tracer, registry=registry)
    return {k: result[k] for k in
            ("crashes", "checkpoints", "restores", "makespan_s")}


def scenario_partition(tracer: Tracer, registry: MetricsRegistry,
                       seed: int) -> dict:
    """The composed-ecosystem chaos study: partition + gray + invariants."""
    from repro.faults.chaos import run_partition_scenario
    result = run_partition_scenario(
        seed=seed, n_tasks=40, task_rate_per_s=0.8,
        n_invocations=60, invoke_rate_per_s=1.2,
        tracer=tracer, registry=registry)
    return {k: result[k] for k in
            ("offered", "admitted", "door_shed", "submitted", "completed",
             "lost", "misdispatches", "lost_reports", "scheduler_crashes",
             "suspicions", "false_suspicions", "gray_worker_suspected",
             "messages_sent", "messages_blocked", "messages_dropped",
             "invariant_checks", "invariant_violations", "makespan_s")}


def scenario_failover(tracer: Tracer, registry: MetricsRegistry,
                      seed: int) -> dict:
    """Replicated control plane: leader partitioned away, standby fences."""
    from repro.faults.chaos import run_failover_scenario
    result = run_failover_scenario(seed=seed, tracer=tracer,
                                   registry=registry)
    return {k: result[k] for k in
            ("offered", "admitted", "submitted", "completed", "lost",
             "misdispatches", "lost_reports", "scheduler_crashes",
             "failovers", "promotions", "terms_with_leader",
             "leader_timeline", "final_leader", "final_term", "elections",
             "failover_mttr_s", "records_shipped", "ship_resends",
             "unshipped_at_promotion", "stale_dispatches",
             "fenced_writes_rejected", "old_leader_deposed_at_s",
             "messages_blocked", "messages_dropped",
             "invariant_checks", "invariant_violations", "makespan_s")}


#: The corpus: name -> scenario function. Insertion order is the run and
#: report order everywhere (CLI, tests).
SCENARIOS = {
    "serverless": scenario_serverless,
    "scheduling": scenario_scheduling,
    "p2p": scenario_p2p,
    "graphalytics": scenario_graphalytics,
    "mmog": scenario_mmog,
    "autoscaling": scenario_autoscaling,
    "recovery": scenario_recovery,
    "partition": scenario_partition,
    "failover": scenario_failover,
}

#: Scenarios that intentionally compose *several* domains in one world:
#: their metrics carry each participating domain's own namespace
#: (``scheduling.*``, ``serverless.*``, ``network.*``, ...) rather than
#: the scenario's name, and the metric-catalog namespacing test exempts
#: them accordingly.
COMPOSED_SCENARIOS = frozenset({"partition", "failover"})

#: The seed every golden trace is blessed under.
GOLDEN_SEED = 7


def run_scenario(name: str, seed: int = GOLDEN_SEED
                 ) -> tuple[Tracer, MetricsRegistry, dict]:
    """Run one canonical scenario; returns (tracer, registry, summary)."""
    try:
        fn = SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; "
                       f"known: {sorted(SCENARIOS)}") from None
    tracer = Tracer(name=name)
    tracer.meta.update({"scenario": name, "seed": seed,
                        "revision": SCENARIO_REVISION})
    registry = MetricsRegistry()
    summary = fn(tracer, registry, seed)
    return tracer, registry, summary
