"""Back-compat shim: the metrics registry now lives in :mod:`repro.sim`.

The registry moved to :mod:`repro.sim.registry` so that
:class:`~repro.sim.Monitor` (which constructs a private registry when
none is supplied) no longer imports *up* the stack into
``repro.observability`` — the one edge that violated the layering DAG
simlint rule SL008 enforces (see ``docs/architecture.md``). Importing
from this module keeps working; new code should import from
:mod:`repro.sim`.
"""

from __future__ import annotations

from repro.sim.registry import METRIC_NAME_RE, MetricsRegistry, metric_name

__all__ = ["METRIC_NAME_RE", "MetricsRegistry", "metric_name"]
