"""Structured tracing: hierarchical spans over simulated time.

A :class:`Span` is a named interval of *sim* time with a domain, tags,
point events, and an optional parent — the unit the golden-trace
regression harness diffs. A :class:`Tracer` allocates spans with stable,
monotone ids, binds to one or more :class:`~repro.sim.Environment`
clocks, and serializes the whole trace to a canonical JSON form whose
SHA-256 content digest identifies the *behavior* of a scenario run:
same seed, same code, same digest — byte for byte.

Spans deliberately do not use an implicit "current span" stack across
``yield`` boundaries: simulation processes interleave, so parenting is
explicit (``tracer.start_span(..., parent=root)``). The context-manager
form :meth:`Tracer.span` exists for straight-line (non-yielding)
regions only.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Iterator, Optional

__all__ = ["Span", "SpanEvent", "Tracer", "TRACE_FORMAT_VERSION"]

#: Bump when the serialized trace schema changes (golden corpora must be
#: re-blessed with ``python -m repro.observability.golden --update``).
TRACE_FORMAT_VERSION = 1

#: Sim-time decimals kept in serialized traces. Same-seed runs produce
#: bit-identical floats, so this is cosmetic — it keeps the JSON tidy and
#: the diffs readable, not a tolerance mechanism.
_TIME_DECIMALS = 9


def _round(t: Optional[float]) -> Optional[float]:
    return None if t is None else round(float(t), _TIME_DECIMALS)


def _jsonable_tag(value: Any) -> Any:
    """Coerce a tag value into a deterministic JSON scalar."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return _round(value)
    return str(value)


@dataclass(slots=True)
class SpanEvent:
    """A point-in-time annotation inside a span (retry, crash, shed...)."""

    t: float
    name: str
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {"t": _round(self.t), "name": self.name}
        if self.fields:
            out["fields"] = {k: _jsonable_tag(v)
                             for k, v in sorted(self.fields.items())}
        return out


@dataclass(slots=True)
class Span:
    """A named interval of simulated time, possibly nested under a parent."""

    span_id: int
    name: str
    domain: str
    t_start: float
    t_end: Optional[float] = None
    parent_id: Optional[int] = None
    tags: dict = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)
    status: str = "ok"

    @property
    def finished(self) -> bool:
        return self.t_end is not None

    @property
    def duration(self) -> Optional[float]:
        if self.t_end is None:
            return None
        return self.t_end - self.t_start

    def set_tag(self, key: str, value: Any) -> "Span":
        self.tags[key] = value
        return self

    def to_dict(self) -> dict:
        out = {
            "span_id": self.span_id,
            "name": self.name,
            "domain": self.domain,
            "t_start": _round(self.t_start),
            "t_end": _round(self.t_end),
            "parent_id": self.parent_id,
            "status": self.status,
            "tags": {k: _jsonable_tag(v)
                     for k, v in sorted(self.tags.items())},
        }
        if self.events:
            out["events"] = [e.to_dict() for e in self.events]
        return out


class Tracer:
    """Allocates, finishes, and serializes :class:`Span` objects.

    The tracer's clock is the bound environment's ``now`` (see
    :meth:`bind`); every span/event method also accepts an explicit
    ``t=`` for time-stepped domains (MMOG provisioning, autoscaling)
    that advance time outside a DES environment.
    """

    def __init__(self, name: str = "trace"):
        self.name = name
        self._ids = count()
        self.spans: list[Span] = []
        self._env = None
        #: Free-form run metadata (seed, scenario name, config digest...).
        #: Keep values JSON scalars — they serialize into the trace.
        self.meta: dict = {}

    # -- clock -------------------------------------------------------------
    @property
    def env(self):
        """The bound environment, or None (see :meth:`bind`)."""
        return self._env

    def bind(self, env) -> "Tracer":
        """Use ``env.now`` as the default clock for spans and events."""
        self._env = env
        return self

    def now(self, t: Optional[float] = None) -> float:
        if t is not None:
            return float(t)
        if self._env is None:
            raise ValueError(
                "tracer is not bound to an environment; pass t= explicitly "
                "or call tracer.bind(env) first")
        return self._env.now

    # -- span lifecycle ----------------------------------------------------
    def start_span(self, name: str, domain: Optional[str] = None,
                   parent: Optional[Span] = None,
                   t: Optional[float] = None, **tags: Any) -> Span:
        """Open a span at the current (or given) time.

        ``domain`` defaults to the first dotted component of ``name``
        (``"serverless.invoke"`` -> ``"serverless"``).
        """
        span = Span(
            span_id=next(self._ids),
            name=name,
            domain=domain if domain is not None else name.split(".", 1)[0],
            t_start=self.now(t),
            parent_id=parent.span_id if parent is not None else None,
            tags=dict(tags),
        )
        self.spans.append(span)
        return span

    def end_span(self, span: Span, t: Optional[float] = None,
                 status: Optional[str] = None, **tags: Any) -> Span:
        """Close ``span`` at the current (or given) time."""
        if span.t_end is not None:
            raise ValueError(f"span {span.name}#{span.span_id} already ended")
        span.t_end = self.now(t)
        if status is not None:
            span.status = status
        span.tags.update(tags)
        return span

    def add_event(self, span: Span, name: str,
                  t: Optional[float] = None, **fields: Any) -> SpanEvent:
        """Attach a point event to ``span`` at the current (or given) time."""
        event = SpanEvent(t=self.now(t), name=name, fields=dict(fields))
        span.events.append(event)
        return event

    @contextmanager
    def span(self, name: str, domain: Optional[str] = None,
             parent: Optional[Span] = None,
             t: Optional[float] = None, **tags: Any) -> Iterator[Span]:
        """Context-manager span for straight-line regions (no ``yield``\\ s).

        An escaping exception marks the span ``status="error"`` before
        re-raising.
        """
        span = self.start_span(name, domain=domain, parent=parent,
                               t=t, **tags)
        # Unbound tracers have no clock to read at exit; a straight-line
        # region cannot advance time anyway, so it ends where it began.
        end_t = None if self._env is not None else span.t_start
        try:
            yield span
        except BaseException:
            self.end_span(span, t=end_t, status="error")
            raise
        self.end_span(span, t=end_t)

    # -- queries -----------------------------------------------------------
    def find(self, name: str) -> list[Span]:
        """All spans with exactly this name, in id (creation) order."""
        return [s for s in self.spans if s.name == name]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def open_spans(self) -> list[Span]:
        return [s for s in self.spans if s.t_end is None]

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """The canonical trace document (stable key and span order)."""
        return {
            "format": TRACE_FORMAT_VERSION,
            "name": self.name,
            "meta": {k: _jsonable_tag(v)
                     for k, v in sorted(self.meta.items())},
            "n_spans": len(self.spans),
            "spans": [s.to_dict()
                      for s in sorted(self.spans,
                                      key=lambda s: s.span_id)],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Deterministic JSON: sorted keys, stable separators, no locale."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent,
                          separators=(",", ": ") if indent else (",", ":"),
                          ensure_ascii=True)

    def digest(self) -> str:
        """SHA-256 content digest of the canonical JSON serialization."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def summary(self) -> str:
        """A short human-readable digest of the trace for reports."""
        by_name: dict[str, int] = {}
        for span in self.spans:
            by_name[span.name] = by_name.get(span.name, 0) + 1
        lines = [f"trace {self.name!r}: {len(self.spans)} spans, "
                 f"digest {self.digest()[:12]}"]
        for name in sorted(by_name):
            lines.append(f"  {name}: {by_name[name]}")
        return "\n".join(lines)
