"""Cost models for cloud resources.

Reproduces the cost-analysis dimension of the autoscaling experiments
(§6.7: "an analysis of cost metrics based on several real-world cost
models") and the business-model work in the MMOG domain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Pricing for one instance type under one billing scheme.

    Parameters
    ----------
    name:
        Human-readable scheme name.
    price_per_hour:
        Price of one instance-hour.
    billing_granularity_s:
        Charged time rounds *up* to a multiple of this (3600 for classic
        EC2 hourly billing, 60 for per-minute, 1 for per-second billing).
    minimum_charge_s:
        Minimum charged duration per provisioning (e.g., 60 s minimum).
    upfront:
        One-time fee per instance (reserved-instance style).
    """

    name: str
    price_per_hour: float
    billing_granularity_s: float = 3600.0
    minimum_charge_s: float = 0.0
    upfront: float = 0.0

    def charge(self, seconds: float, instances: int = 1) -> float:
        """Total price for running ``instances`` for ``seconds`` each."""
        if seconds < 0:
            raise ValueError("negative duration")
        billed = max(seconds, self.minimum_charge_s)
        if self.billing_granularity_s > 0:
            billed = math.ceil(
                billed / self.billing_granularity_s) * self.billing_granularity_s
        return instances * (self.upfront + billed / 3600.0 * self.price_per_hour)

    def charge_intervals(self, intervals: list[tuple[float, float]]) -> float:
        """Total price for a list of (start, stop) provisioning intervals."""
        return sum(self.charge(stop - start) for start, stop in intervals)


#: Classic on-demand pricing, hourly billing (the model most of the paper's
#: era used; e.g., EC2 m3-class instances).
ON_DEMAND_PRICING = CostModel(
    name="on-demand-hourly", price_per_hour=0.28,
    billing_granularity_s=3600.0)

#: Per-second billing with one-minute minimum (post-2017 cloud pricing).
PER_SECOND_PRICING = CostModel(
    name="on-demand-per-second", price_per_hour=0.28,
    billing_granularity_s=1.0, minimum_charge_s=60.0)

#: Reserved instances: upfront fee buys a cheaper hourly rate.
RESERVED_PRICING = CostModel(
    name="reserved", price_per_hour=0.08,
    billing_granularity_s=3600.0, upfront=0.35)


def cheapest_for(duration_s: float,
                 models: list[CostModel]) -> tuple[CostModel, float]:
    """The cheapest model for a single provisioning of ``duration_s``."""
    if not models:
        raise ValueError("no cost models supplied")
    best = min(models, key=lambda m: (m.charge(duration_s), m.name))
    return best, best.charge(duration_s)
