"""Failure injection: machines fail and recover over simulated time.

Availability is one of the paper's first-class non-functional requirements
(P3); experiments use this injector to test designs under churn. The
machinery is the generic :class:`repro.faults.models.CrashRestart` model
specialized to :class:`~repro.cluster.machine.Machine` targets: a crash
wipes the machine's allocations *at failure time* (bumping its incarnation
so in-flight releases are recognized as stale), and repair simply returns
it to service.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.machine import Machine
from repro.faults.models import CrashRestart
from repro.sim import Environment, Monitor


class FailureInjector(CrashRestart):
    """Fails and repairs machines of a cluster with exponential holding times.

    Parameters
    ----------
    mtbf_s:
        Mean time between failures per machine.
    mttr_s:
        Mean time to repair.
    on_failure:
        Optional callback invoked as ``on_failure(machine)`` when a machine
        goes down — schedulers use it to requeue the victim's tasks.
    """

    def __init__(self, env: Environment, cluster: Cluster,
                 rng: np.random.Generator,
                 mtbf_s: float = 24 * 3600.0, mttr_s: float = 600.0,
                 on_failure: Optional[Callable[[Machine], None]] = None,
                 monitor: Optional[Monitor] = None):
        self.cluster = cluster
        self._up_monitor = monitor
        super().__init__(
            env, cluster.machines, rng, mtbf_s=mtbf_s, mttr_s=mttr_s,
            on_fail=on_failure, monitor=monitor, name="machine")

    # Keep the historical callback attribute name as an alias.
    @property
    def on_failure(self):
        return self.on_fail

    @on_failure.setter
    def on_failure(self, callback):
        self.on_fail = callback

    def fail_now(self, machine: Machine) -> None:
        super().fail_now(machine)
        if self._up_monitor is not None:
            self._up_monitor.record(
                "up_machines", len(self.cluster.up_machines()))

    def repair_now(self, machine: Machine) -> None:
        super().repair_now(machine)
        if self._up_monitor is not None:
            self._up_monitor.record(
                "up_machines", len(self.cluster.up_machines()))

    def availability(self) -> float:
        """Fraction of machines currently up."""
        return len(self.cluster.up_machines()) / len(self.cluster.machines)
