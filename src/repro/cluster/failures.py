"""Failure injection: machines fail and recover over simulated time.

Availability is one of the paper's first-class non-functional requirements
(P3); experiments use this injector to test designs under churn.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.machine import Machine, MachineState
from repro.sim import Environment, Monitor


class FailureInjector:
    """Fails and repairs machines of a cluster with exponential holding times.

    Parameters
    ----------
    mtbf_s:
        Mean time between failures per machine.
    mttr_s:
        Mean time to repair.
    on_failure:
        Optional callback invoked as ``on_failure(machine)`` when a machine
        goes down — schedulers use it to requeue the victim's tasks.
    """

    def __init__(self, env: Environment, cluster: Cluster,
                 rng: np.random.Generator,
                 mtbf_s: float = 24 * 3600.0, mttr_s: float = 600.0,
                 on_failure: Optional[Callable[[Machine], None]] = None,
                 monitor: Optional[Monitor] = None):
        if mtbf_s <= 0 or mttr_s <= 0:
            raise ValueError("mtbf_s and mttr_s must be positive")
        self.env = env
        self.cluster = cluster
        self.rng = rng
        self.mtbf_s = mtbf_s
        self.mttr_s = mttr_s
        self.on_failure = on_failure
        self.monitor = monitor
        self.failures = 0
        self.repairs = 0
        self._procs = [
            env.process(self._machine_life(machine))
            for machine in cluster.machines
        ]

    def _machine_life(self, machine: Machine):
        while True:
            yield self.env.timeout(float(self.rng.exponential(self.mtbf_s)))
            if machine.state is not MachineState.UP:
                continue
            machine.state = MachineState.DOWN
            self.failures += 1
            if self.monitor is not None:
                self.monitor.count("machine_failures", key=machine.name)
                self.monitor.record(
                    "up_machines", len(self.cluster.up_machines()))
            if self.on_failure is not None:
                self.on_failure(machine)
            yield self.env.timeout(float(self.rng.exponential(self.mttr_s)))
            machine.state = MachineState.UP
            machine.used_cores = 0
            machine.used_memory_gb = 0.0
            self.repairs += 1
            if self.monitor is not None:
                self.monitor.record(
                    "up_machines", len(self.cluster.up_machines()))

    def availability(self) -> float:
        """Fraction of machines currently up."""
        return len(self.cluster.up_machines()) / len(self.cluster.machines)
