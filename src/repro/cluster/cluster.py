"""Clusters, multi-cluster deployments, and geo-distributed datacenters."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.cluster.machine import Machine, MachineState


class Cluster:
    """A named set of machines behaving as one scheduling domain."""

    def __init__(self, name: str, machines: Iterable[Machine]):
        self.name = name
        self.machines = list(machines)
        if not self.machines:
            raise ValueError(f"cluster {name}: needs at least one machine")
        names = [m.name for m in self.machines]
        if len(set(names)) != len(names):
            raise ValueError(f"cluster {name}: duplicate machine names")

    @classmethod
    def homogeneous(cls, name: str, n_machines: int, cores: int = 8,
                    speed: float = 1.0, memory_gb: float = 32.0) -> "Cluster":
        """Convenience constructor for identical machines."""
        machines = [
            Machine(f"{name}-m{i:04d}", cores=cores, speed=speed,
                    memory_gb=memory_gb)
            for i in range(n_machines)
        ]
        return cls(name, machines)

    def __repr__(self) -> str:
        return f"<Cluster {self.name}: {len(self.machines)} machines>"

    def __len__(self) -> int:
        return len(self.machines)

    @property
    def total_cores(self) -> int:
        return sum(m.cores for m in self.machines if m.state is MachineState.UP)

    @property
    def used_cores(self) -> int:
        return sum(m.used_cores for m in self.machines
                   if m.state is MachineState.UP)

    @property
    def free_cores(self) -> int:
        return sum(m.free_cores for m in self.machines)

    @property
    def utilization(self) -> float:
        total = self.total_cores
        return self.used_cores / total if total else 0.0

    def up_machines(self) -> list[Machine]:
        return [m for m in self.machines if m.state is MachineState.UP]

    def first_fit(self, cores: int, memory_gb: float = 0.0
                  ) -> Optional[Machine]:
        """The first machine that can host the request, or ``None``."""
        for machine in self.machines:
            if machine.can_fit(cores, memory_gb):
                return machine
        return None

    def best_fit(self, cores: int, memory_gb: float = 0.0
                 ) -> Optional[Machine]:
        """The feasible machine with the fewest free cores (tightest fit)."""
        candidates = [m for m in self.machines if m.can_fit(cores, memory_gb)]
        if not candidates:
            return None
        return min(candidates, key=lambda m: (m.free_cores, m.name))

    def worst_fit(self, cores: int, memory_gb: float = 0.0
                  ) -> Optional[Machine]:
        """The feasible machine with the most free cores (load spreading)."""
        candidates = [m for m in self.machines if m.can_fit(cores, memory_gb)]
        if not candidates:
            return None
        return max(candidates, key=lambda m: (m.free_cores, m.name))

    def add_machine(self, machine: Machine) -> None:
        if any(m.name == machine.name for m in self.machines):
            raise ValueError(f"duplicate machine name {machine.name}")
        self.machines.append(machine)

    def remove_machine(self, name: str) -> Machine:
        for idx, machine in enumerate(self.machines):
            if machine.name == name:
                if machine.used_cores:
                    raise RuntimeError(
                        f"machine {name} still has {machine.used_cores} "
                        "cores allocated")
                return self.machines.pop(idx)
        raise KeyError(name)


class MultiCluster:
    """Several clusters operated together (the DAS model, Table 9 'MCD')."""

    def __init__(self, name: str, clusters: Iterable[Cluster]):
        self.name = name
        self.clusters = list(clusters)
        if not self.clusters:
            raise ValueError("at least one cluster required")

    def __repr__(self) -> str:
        return f"<MultiCluster {self.name}: {len(self.clusters)} clusters>"

    @property
    def total_cores(self) -> int:
        return sum(c.total_cores for c in self.clusters)

    @property
    def free_cores(self) -> int:
        return sum(c.free_cores for c in self.clusters)

    @property
    def utilization(self) -> float:
        total = self.total_cores
        used = sum(c.used_cores for c in self.clusters)
        return used / total if total else 0.0

    def least_loaded_cluster(self) -> Cluster:
        return min(self.clusters, key=lambda c: (c.utilization, c.name))

    def first_fit(self, cores: int, memory_gb: float = 0.0):
        for cluster in self.clusters:
            machine = cluster.first_fit(cores, memory_gb)
            if machine is not None:
                return cluster, machine
        return None, None


class Site:
    """One geographic site of a geo-distributed datacenter."""

    def __init__(self, name: str, cluster: Cluster, region: str = "eu-west"):
        self.name = name
        self.cluster = cluster
        self.region = region

    def __repr__(self) -> str:
        return f"<Site {self.name} ({self.region})>"


class GeoDatacenter:
    """Geo-distributed datacenter: sites plus an inter-site latency matrix.

    Latencies are one-way, in milliseconds; used by geo-aware placement
    (MMOG operation, Table 9 'GDC' environments).
    """

    def __init__(self, name: str, sites: Iterable[Site],
                 latency_ms: Optional[dict[tuple[str, str], float]] = None):
        self.name = name
        self.sites = {site.name: site for site in sites}
        if not self.sites:
            raise ValueError("at least one site required")
        self._latency = dict(latency_ms or {})
        # Make the matrix symmetric and reflexive.
        for (a, b), value in list(self._latency.items()):
            self._latency.setdefault((b, a), value)
        for site in self.sites:
            self._latency[(site, site)] = 0.0

    def latency_ms(self, a: str, b: str) -> float:
        try:
            return self._latency[(a, b)]
        except KeyError:
            raise KeyError(f"no latency entry for sites ({a}, {b})") from None

    @property
    def total_cores(self) -> int:
        return sum(site.cluster.total_cores for site in self.sites.values())

    def nearest_site(self, client_latencies: dict[str, float]) -> Site:
        """The site with minimal latency to a client.

        ``client_latencies`` maps site name -> RTT of the client to it.
        """
        name = min(client_latencies, key=lambda s: (client_latencies[s], s))
        return self.sites[name]

    def sites_within(self, origin: str, max_latency_ms: float) -> list[Site]:
        """Sites reachable from ``origin`` within a latency bound."""
        return [
            site for name, site in sorted(self.sites.items())
            if self.latency_ms(origin, name) <= max_latency_ms
        ]
