"""An IaaS cloud: VM provisioning with delays and billing.

This is the "elastic, by credit-card" substrate the paper's MMOG and
autoscaling work runs on: resources arrive only after a provisioning delay,
and every provisioned interval is billed under a :class:`CostModel`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import Optional

from repro.cluster.cost import CostModel, ON_DEMAND_PRICING
from repro.cluster.machine import Machine
from repro.sim import Environment


class VMState(enum.Enum):
    REQUESTED = "requested"
    BOOTING = "booting"
    RUNNING = "running"
    TERMINATED = "terminated"


class BillingModel(enum.Enum):
    ON_DEMAND = "on-demand"
    RESERVED = "reserved"


@dataclass
class VM:
    """A virtual machine instance with its lifetime bookkeeping."""

    vm_id: int
    machine: Machine
    state: VMState = VMState.REQUESTED
    requested_at: float = 0.0
    running_at: Optional[float] = None
    terminated_at: Optional[float] = None
    billing: BillingModel = BillingModel.ON_DEMAND

    @property
    def billable_interval(self) -> Optional[tuple[float, float]]:
        """(start, stop) of the billed period; clouds bill from request."""
        if self.terminated_at is None:
            return None
        return (self.requested_at, self.terminated_at)


class Cloud:
    """An infinite-capacity (or capped) IaaS provider.

    Parameters
    ----------
    env:
        Simulation environment.
    provisioning_delay_s:
        Time from request to RUNNING (VM boot + image fetch); the paper's
        autoscaling experiments show this delay dominates elasticity.
    cost_model:
        Pricing applied to every instance.
    capacity:
        Maximum concurrent instances (None = unbounded, the usual cloud
        illusion).
    """

    def __init__(self, env: Environment,
                 provisioning_delay_s: float = 60.0,
                 deprovisioning_delay_s: float = 10.0,
                 cost_model: CostModel = ON_DEMAND_PRICING,
                 capacity: Optional[int] = None,
                 cores_per_vm: int = 4,
                 speed: float = 1.0):
        self.env = env
        self.provisioning_delay_s = provisioning_delay_s
        self.deprovisioning_delay_s = deprovisioning_delay_s
        self.cost_model = cost_model
        self.capacity = capacity
        self.cores_per_vm = cores_per_vm
        self.speed = speed
        self._ids = count()
        self.vms: dict[int, VM] = {}
        #: Completed billing intervals of terminated VMs.
        self.billed_intervals: list[tuple[float, float]] = []

    # -- queries -------------------------------------------------------------
    def running_vms(self) -> list[VM]:
        return [vm for vm in self.vms.values() if vm.state is VMState.RUNNING]

    def pending_vms(self) -> list[VM]:
        return [vm for vm in self.vms.values()
                if vm.state in (VMState.REQUESTED, VMState.BOOTING)]

    @property
    def active_count(self) -> int:
        return len(self.running_vms()) + len(self.pending_vms())

    def running_cores(self) -> int:
        return sum(vm.machine.cores for vm in self.running_vms())

    # -- lifecycle -------------------------------------------------------------
    def provision(self) -> "ProvisionRequest":
        """Request one VM; returns an object whose ``.event`` fires RUNNING.

        Use from a process::

            req = cloud.provision()
            vm = yield req.event
        """
        if self.capacity is not None and self.active_count >= self.capacity:
            raise CapacityError(
                f"cloud at capacity ({self.capacity} instances)")
        vm = VM(
            vm_id=next(self._ids),
            machine=Machine(
                name=f"vm-{len(self.vms)}", cores=self.cores_per_vm,
                speed=self.speed),
            requested_at=self.env.now,
        )
        self.vms[vm.vm_id] = vm
        done = self.env.event()
        self.env.process(self._boot(vm, done))
        return ProvisionRequest(vm=vm, event=done)

    def _boot(self, vm: VM, done):
        vm.state = VMState.BOOTING
        yield self.env.timeout(self.provisioning_delay_s)
        if vm.state is VMState.TERMINATED:
            # Terminated while booting; billing interval already recorded.
            done.succeed(vm)
            return
        vm.state = VMState.RUNNING
        vm.running_at = self.env.now
        done.succeed(vm)

    def terminate(self, vm: VM) -> None:
        """Terminate an instance (idempotent)."""
        if vm.state is VMState.TERMINATED:
            return
        if vm.machine.used_cores:
            raise RuntimeError(
                f"terminating VM {vm.vm_id} with {vm.machine.used_cores} "
                "cores still allocated")
        vm.state = VMState.TERMINATED
        vm.terminated_at = self.env.now + self.deprovisioning_delay_s
        self.billed_intervals.append(vm.billable_interval)

    # -- billing -------------------------------------------------------------
    def total_cost(self, until: Optional[float] = None) -> float:
        """Accumulated cost: closed intervals plus still-open instances."""
        now = until if until is not None else self.env.now
        cost = self.cost_model.charge_intervals(self.billed_intervals)
        for vm in self.vms.values():
            if vm.state is not VMState.TERMINATED:
                cost += self.cost_model.charge(now - vm.requested_at)
        return cost


@dataclass
class ProvisionRequest:
    vm: VM
    event: object  # repro.sim Event that fires with the VM when RUNNING


class CapacityError(RuntimeError):
    """Raised when a capped cloud cannot take another instance."""
