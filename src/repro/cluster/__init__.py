"""Datacenter substrate: machines, clusters, clouds, failures, and cost.

Models the environments of the paper's experiments (Table 9's Env column):
own clusters (CL), grids (G), public clouds (CD), multi-cluster deployments
(MCD), and geo-distributed datacenters (GDC).
"""

from repro.cluster.machine import Machine, MachineState
from repro.cluster.cluster import Cluster, MultiCluster, Site, GeoDatacenter
from repro.cluster.cloud import Cloud, VM, VMState, BillingModel
from repro.cluster.cost import CostModel, ON_DEMAND_PRICING, RESERVED_PRICING
from repro.cluster.failures import FailureInjector

__all__ = [
    "BillingModel",
    "Cloud",
    "Cluster",
    "CostModel",
    "FailureInjector",
    "GeoDatacenter",
    "Machine",
    "MachineState",
    "MultiCluster",
    "ON_DEMAND_PRICING",
    "RESERVED_PRICING",
    "Site",
    "VM",
    "VMState",
]
