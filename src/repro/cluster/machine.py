"""Machines: the unit of computation in a cluster."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class MachineState(enum.Enum):
    """Operational state of a machine."""

    UP = "up"
    DOWN = "down"
    DRAINING = "draining"


@dataclass
class Machine:
    """A physical or virtual machine.

    Attributes
    ----------
    name:
        Unique identifier within its cluster.
    cores:
        Number of task slots.
    speed:
        Relative execution speed; a task with ``work`` units of work takes
        ``work / speed`` time on this machine.
    memory_gb:
        Memory size, used by memory-aware placement policies.
    """

    name: str
    cores: int = 1
    speed: float = 1.0
    memory_gb: float = 16.0
    state: MachineState = MachineState.UP
    #: Cores currently allocated to running tasks.
    used_cores: int = 0
    #: Memory currently allocated.
    used_memory_gb: float = 0.0
    #: Bookkeeping for utilization accounting.
    busy_time: float = 0.0
    #: Bumped on every crash; allocations from earlier incarnations are void.
    incarnation: int = 0
    tags: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"machine {self.name}: cores must be positive")
        if self.speed <= 0:
            raise ValueError(f"machine {self.name}: speed must be positive")

    @property
    def free_cores(self) -> int:
        if self.state is not MachineState.UP:
            return 0
        return self.cores - self.used_cores

    @property
    def free_memory_gb(self) -> float:
        if self.state is not MachineState.UP:
            return 0.0
        return self.memory_gb - self.used_memory_gb

    def can_fit(self, cores: int, memory_gb: float = 0.0) -> bool:
        """Whether a task needing ``cores`` and ``memory_gb`` fits right now."""
        return (self.state is MachineState.UP
                and self.free_cores >= cores
                and self.free_memory_gb >= memory_gb - 1e-9)

    def allocate(self, cores: int, memory_gb: float = 0.0) -> None:
        if not self.can_fit(cores, memory_gb):
            raise RuntimeError(
                f"machine {self.name}: cannot allocate {cores} cores / "
                f"{memory_gb} GB (free: {self.free_cores} cores / "
                f"{self.free_memory_gb} GB, state={self.state.value})")
        self.used_cores += cores
        self.used_memory_gb += memory_gb

    def release(self, cores: int, memory_gb: float = 0.0,
                incarnation: Optional[int] = None) -> bool:
        """Return an allocation; True if it was actually accounted.

        Callers that may outlive a crash pass the ``incarnation`` observed
        at :meth:`allocate` time: a crash (:meth:`fail`) wipes all
        allocations and bumps the incarnation, so a release for a task that
        died mid-crash is recognized as stale and ignored instead of
        double-freeing or driving the counters negative.
        """
        if incarnation is not None and incarnation != self.incarnation:
            return False  # stale: allocation already wiped by a crash
        if cores > self.used_cores:
            if incarnation is None and self.incarnation > 0:
                # Legacy caller racing a crash: tolerate, clamp to empty.
                self.used_cores = 0
                self.used_memory_gb = 0.0
                return False
            raise RuntimeError(
                f"machine {self.name}: releasing {cores} cores but only "
                f"{self.used_cores} allocated")
        self.used_cores -= cores
        self.used_memory_gb = max(0.0, self.used_memory_gb - memory_gb)
        return True

    # -- fail-stop life-cycle ----------------------------------------------
    def fail(self) -> None:
        """Crash: everything running here dies and its allocations vanish."""
        self.state = MachineState.DOWN
        self.used_cores = 0
        self.used_memory_gb = 0.0
        self.incarnation += 1

    def repair(self) -> None:
        """Return to service (allocations were already wiped at crash time)."""
        self.state = MachineState.UP

    @property
    def is_up(self) -> bool:
        return self.state is MachineState.UP

    def runtime_of(self, work: float) -> float:
        """Wall-clock time for ``work`` normalized work units."""
        return work / self.speed

    @property
    def utilization(self) -> float:
        """Instantaneous core utilization in [0, 1]."""
        return self.used_cores / self.cores
