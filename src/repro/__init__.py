"""AtLarge reproduction: executable systems behind the ATLARGE design vision.

This library reproduces, as working Python systems, the artifacts of
*The AtLarge Vision on the Design of Distributed Systems and Ecosystems*
(Iosup et al., ICDCS 2019):

- ``repro.sim`` — a from-scratch discrete-event simulation kernel;
- ``repro.cluster`` / ``repro.workload`` — datacenter and workload substrates;
- ``repro.core`` — the ATLARGE design framework, executable (design spaces,
  exploration processes, the Basic Design Cycle, catalogs of principles,
  challenges, and problem archetypes);
- ``repro.refarch`` — the evolving datacenter reference architecture (Fig. 9);
- ``repro.p2p`` / ``repro.mmog`` / ``repro.serverless`` /
  ``repro.graphalytics`` / ``repro.scheduling`` / ``repro.autoscaling`` —
  the seven experiment domains of Section 6;
- ``repro.bibliometrics`` — the meta-scientific evidence of Figures 1–3.

See DESIGN.md for the system inventory and EXPERIMENTS.md for paper-versus-
measured results for every table and figure.
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "cluster",
    "workload",
    "core",
    "refarch",
    "p2p",
    "mmog",
    "serverless",
    "graphalytics",
    "scheduling",
    "autoscaling",
    "bibliometrics",
]
