"""The architecture manifests: layering DAG, hot files, event loops.

This module is the checked-in, reviewable statement of the repo's
architecture — rule SL008 enforces :data:`LAYERS`/:data:`FILE_LAYERS`,
and the perf rule SL009 reads :data:`HOT_FILE_SUFFIXES`,
:data:`SLOTS_REQUIRED` and :data:`EVENT_LOOP_FUNCTIONS`. Changing an
architectural dependency therefore *is* a diff to this file, not a
silent drift. ``docs/architecture.md`` renders the same DAG as a table
and is parse-tested against this manifest.
"""

from __future__ import annotations

__all__ = [
    "DOMAIN_DEPS", "EVENT_LOOP_FUNCTIONS", "FILE_LAYERS", "HARNESS",
    "HOT_FILE_SUFFIXES", "LAYERS", "SLOTS_REQUIRED", "layer_for_module",
]

#: The wildcard layer: composition harnesses that exist to wire every
#: other layer together (chaos scenarios, the golden-trace corpus).
#: Modules mapped here by :data:`FILE_LAYERS` may import anything.
HARNESS = "harness"

#: What the experiment domains may depend on. Domains sit mid-stack:
#: they build on the kernel, fault models, resilience patterns,
#: recovery machinery, workload generators, and the cluster model —
#: never on each other or on the observability/analysis layers above.
DOMAIN_DEPS = frozenset(
    {"sim", "faults", "resilience", "recovery", "workload", "cluster"})

#: package under ``repro/`` -> packages it may import from. A package
#: may always import itself; anything not listed here is a finding (new
#: packages must be placed in the DAG on arrival).
LAYERS: dict[str, frozenset[str]] = {
    # -- foundation: the deterministic kernel imports nothing ------------
    "sim": frozenset(),
    # -- design-process framework (paper §5): pure, kernel-free ----------
    "core": frozenset(),
    "refarch": frozenset({"core"}),
    # -- first ring: each builds on the kernel alone ---------------------
    "analysis": frozenset({"sim"}),
    "faults": frozenset({"sim"}),
    "resilience": frozenset({"sim"}),
    "recovery": frozenset({"sim", "faults"}),
    "workload": frozenset({"sim"}),
    "invariants": frozenset({"sim"}),
    # -- infrastructure models -------------------------------------------
    "cluster": frozenset({"sim", "faults", "workload"}),
    #: Hot-standby control plane: election + shipping + fencing. Built on
    #: detection (resilience) and the WAL (recovery); the scheduler it
    #: replicates is duck-typed, never imported (no upward edge).
    "replication": frozenset({"sim", "resilience", "recovery"}),
    # -- experiment domains ----------------------------------------------
    "autoscaling": DOMAIN_DEPS,
    "bibliometrics": frozenset({"sim", "workload"}),
    "bigdata": frozenset({"sim", "workload"}),
    "graphalytics": DOMAIN_DEPS,
    "mmog": DOMAIN_DEPS,
    "p2p": DOMAIN_DEPS,
    "scheduling": DOMAIN_DEPS,
    "serverless": DOMAIN_DEPS,
    # -- top: cross-cutting observation (never imported by domains) ------
    "observability": frozenset({"sim"}),
    #: Chaos-fuzzing campaigns: generates fault schedules (sim RNG
    #: streams), executes them through the chaos harness (faults), and
    #: judges runs with trace digests (analysis sanitizers). Sits at the
    #: top next to observability; nothing imports it.
    "campaign": frozenset({"sim", "faults", "analysis"}),
}

#: Per-file overrides (matched by path suffix). The two harness modules
#: deliberately import the whole stack; everything else in their
#: packages stays bound by :data:`LAYERS`.
FILE_LAYERS: dict[str, str] = {
    "repro/faults/chaos.py": HARNESS,
    "repro/observability/scenarios.py": HARNESS,
}


def layer_for_module(module: str, path: str) -> str | None:
    """Layer name for a dotted module, or None when out of scope.

    ``path`` is consulted for :data:`FILE_LAYERS` suffix overrides.
    """
    norm = path.replace("\\", "/")
    for suffix, layer in FILE_LAYERS.items():
        if norm.endswith(suffix):
            return layer
    parts = module.split(".")
    if len(parts) >= 2 and parts[0] == "repro":
        return parts[1]
    return None


#: Files whose classes sit on the per-event hot path: every class here
#: that is an Event subclass (or listed in :data:`SLOTS_REQUIRED`) must
#: declare ``__slots__`` (SL009).
HOT_FILE_SUFFIXES: tuple[str, ...] = (
    "repro/sim/events.py",
    "repro/sim/environment.py",
    "repro/sim/resources.py",
    "repro/sim/network.py",
    "repro/scheduling/simulator.py",
    "repro/serverless/platform.py",
    "repro/observability/trace.py",
)

#: Non-Event classes that are nevertheless created or touched per event
#: and must be slotted (SL009). Keyed by qualname.
SLOTS_REQUIRED: frozenset[str] = frozenset({
    "repro.sim.environment.Environment",
    "repro.sim.network.Network",
    "repro.observability.trace.Span",
    "repro.observability.trace.SpanEvent",
    "repro.serverless.platform.Invocation",
})

#: Designated event-loop functions: the inner loops the whole simulator
#: funnels through. Inside these, SL009 flags repeated ``self.<attr>``
#: loads under a loop (pre-bind them to locals; attributes the function
#: itself assigns are exempt — they are genuinely mutable state).
EVENT_LOOP_FUNCTIONS: frozenset[str] = frozenset({
    "repro.sim.environment.Environment.run",
    "repro.sim.network.Network.send",
    "repro.sim.resources.Store._dispatch",
    "repro.sim.resources.Container._dispatch",
    "repro.scheduling.simulator.ClusterSimulator._try_schedule",
})
