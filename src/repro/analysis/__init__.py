"""simlint: static analysis and runtime sanitizers for the sim kernel.

The deterministic :class:`repro.sim.Environment` and the named
:class:`repro.sim.RandomStreams` only deliver reproducibility (the paper's
Challenge C3) if every domain model keeps honoring their contracts — no
hidden global RNG state, no wall clock, events only from the environment,
resources released on every path. This package makes those obligations
machine-checked:

- :mod:`repro.analysis.rules` — the per-file AST lint rules SL001–SL006;
- :mod:`repro.analysis.graph` — the project symbol table and call graph
  behind the whole-program rules;
- :mod:`repro.analysis.layers` — the checked-in architecture manifest
  (package layering DAG, hot files, slots/event-loop registries);
- :mod:`repro.analysis.project_rules` — the interprocedural rules: the
  flow-aware SL001 RNG-provenance pass plus SL007–SL010;
- :mod:`repro.analysis.lint` — the CLI / API driver
  (``python -m repro.analysis.lint src/``);
- :mod:`repro.analysis.baseline` — the ``.simlint-baseline`` suppression
  file for intentional, documented exceptions;
- :mod:`repro.analysis.sanitizers` — opt-in runtime checks: the
  determinism sanitizer (same seed ⇒ same event trace), the
  resource-leak sanitizer (no outstanding acquires at teardown), and the
  shared-state sanitizer (no unordered same-timestamp writes).
"""

from repro.analysis.rules import Finding, RULES, lint_source
from repro.analysis.baseline import Baseline
from repro.analysis.graph import Project, build_project
from repro.analysis.layers import LAYERS, layer_for_module
from repro.analysis.project_rules import PROJECT_RULES, run_project_rules

_LAZY = {
    "lint_file": "lint", "lint_paths": "lint", "lint_sources": "lint",
    "main": "lint",
    "DeterminismSanitizer": "sanitizers", "DeterminismViolation": "sanitizers",
    "ResourceLeakError": "sanitizers", "ResourceLeakSanitizer": "sanitizers",
    "SharedStateSanitizer": "sanitizers", "SharedStateViolation": "sanitizers",
    "TraceDigest": "sanitizers",
    "WatchedDict": "sanitizers", "WatchedList": "sanitizers",
    "WatchedSet": "sanitizers",
}


# The CLI and the sanitizers load lazily: the linter itself is pure stdlib
# (a bare CI runner can `python -m repro.analysis.lint` without the sim
# stack's numpy dependency), and eagerly importing the CLI module here
# would trip runpy's double-import warning under `python -m`.
def __getattr__(name):
    module = _LAZY.get(name)
    if module is not None:
        import importlib
        return getattr(
            importlib.import_module(f"repro.analysis.{module}"), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Baseline",
    "DeterminismSanitizer",
    "DeterminismViolation",
    "Finding",
    "LAYERS",
    "PROJECT_RULES",
    "Project",
    "ResourceLeakError",
    "ResourceLeakSanitizer",
    "RULES",
    "SharedStateSanitizer",
    "SharedStateViolation",
    "TraceDigest",
    "WatchedDict",
    "WatchedList",
    "WatchedSet",
    "build_project",
    "layer_for_module",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "run_project_rules",
]
