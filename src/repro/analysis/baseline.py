"""The ``.simlint-baseline`` file: explicit, reviewable suppressions.

A baseline entry records a finding the team has examined and accepted —
typically a cross-process acquire/release protocol the AST can't follow,
or a diagnostic wall-clock read that never feeds sim state. Entries are
keyed by ``(code, path, stripped source line)`` so they survive unrelated
line-number drift but go stale (and start failing CI) the moment the
flagged code itself changes.

File format: tab-separated ``CODE<TAB>path<TAB>snippet`` lines; ``#``
comments and blank lines are ignored.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.analysis.rules import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = ".simlint-baseline"


class Baseline:
    """Loads, matches, and writes baseline entries."""

    def __init__(self, entries: Iterable[tuple[str, str, str]] = ()):
        self.entries: set[tuple[str, str, str]] = set(entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        entries = []
        with open(path, encoding="utf-8") as fh:
            for raw in fh:
                line = raw.rstrip("\n")
                if not line.strip() or line.lstrip().startswith("#"):
                    continue
                parts = line.split("\t")
                if len(parts) != 3:
                    raise ValueError(
                        f"{path}: malformed baseline line {line!r} "
                        "(expected CODE<TAB>path<TAB>snippet)")
                entries.append((parts[0], parts[1], parts[2]))
        return cls(entries)

    @classmethod
    def load_if_exists(cls, path: str) -> "Baseline":
        if os.path.isfile(path):
            return cls.load(path)
        return cls()

    def matches(self, finding: Finding) -> bool:
        return (finding.code, finding.path, finding.snippet) in self.entries

    def split(self, findings: Iterable[Finding]
              ) -> tuple[list[Finding], list[Finding]]:
        """(new findings, baselined findings)."""
        new, known = [], []
        for f in findings:
            (known if self.matches(f) else new).append(f)
        return new, known

    def write(self, path: str, findings: Iterable[Finding]) -> None:
        rows = sorted({(f.code, f.path, f.snippet) for f in findings})
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("# simlint baseline — accepted findings, one per line.\n")
            fh.write("# Format: CODE<TAB>path<TAB>stripped source line.\n")
            fh.write("# Regenerate: python -m repro.analysis.lint src/ "
                     "--write-baseline\n")
            for code, fpath, snippet in rows:
                fh.write(f"{code}\t{fpath}\t{snippet}\n")
