"""Project symbol table and call graph for whole-program lint passes.

The per-file rules in :mod:`repro.analysis.rules` see one module at a
time; the project rules (SL007–SL010 and the interprocedural SL001
flow pass in :mod:`repro.analysis.project_rules`) need to know *who
calls whom* across the tree. This module builds that view with nothing
but :mod:`ast`:

- :func:`build_project` parses a ``{path: source}`` mapping into a
  :class:`Project` — modules, classes, functions, and one
  :class:`CallSite` per call expression;
- call targets are resolved through import aliases, module-level names,
  ``self.method()`` (including project-resolvable base classes), and
  ``module.func()``. Anything dynamic — a callable in a variable, a
  subscripted lookup, ``getattr`` — resolves to ``UNKNOWN``, and
  **unknown never produces a finding**: the analysis is deliberately
  under-approximate so every report is actionable;
- :meth:`Project.reachable_from` walks the resolved edges (cycles are
  fine) — rules use it to ask "can a sim process reach this write?".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.rules import _Module, _is_event_yield

__all__ = [
    "PROJECT", "EXTERNAL", "UNKNOWN",
    "CallSite", "ClassInfo", "FunctionInfo", "Project", "ProjectModule",
    "build_project", "module_name_for_path",
]

#: Resolution kinds for :class:`CallSite`.
PROJECT = "project"    # resolved to a function/class built from the sources
EXTERNAL = "external"  # resolved to a dotted name outside the project
UNKNOWN = "unknown"    # dynamic dispatch — produces no findings, ever


def module_name_for_path(path: str) -> str:
    """Dotted module name for a source path.

    ``src/repro/sim/events.py`` -> ``repro.sim.events``. Paths without a
    ``repro`` segment (e.g. test fixtures) become single-segment modules
    named after the file, which makes a lone file a one-module project.
    """
    parts = path.replace("\\", "/").split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
        return ".".join(parts)
    return parts[-1]


@dataclass
class FunctionInfo:
    """One function or method, with the derived facts the rules share."""

    qualname: str                #: ``repro.sim.events.Process._resume``
    module: str                  #: dotted module name
    name: str                    #: bare name
    class_name: Optional[str]    #: enclosing class, if a method
    node: ast.AST                #: the FunctionDef / AsyncFunctionDef
    is_generator: bool = False
    #: Generator that yields kernel events — a sim-process body.
    is_sim_process: bool = False

    @property
    def params(self) -> list[str]:
        a = self.node.args
        return ([p.arg for p in a.posonlyargs] + [p.arg for p in a.args]
                + [p.arg for p in a.kwonlyargs])

    def param_default(self, param: str) -> Optional[ast.expr]:
        """Default expression for ``param``, or None if required."""
        a = self.node.args
        positional = [p.arg for p in a.posonlyargs] + [p.arg for p in a.args]
        if param in positional:
            offset = len(positional) - len(a.defaults)
            idx = positional.index(param) - offset
            return a.defaults[idx] if idx >= 0 else None
        for kw, default in zip(a.kwonlyargs, a.kw_defaults):
            if kw.arg == param:
                return default
        return None


@dataclass
class ClassInfo:
    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Declares ``__slots__`` directly or via ``@dataclass(slots=True)``.
    has_slots: bool = False


@dataclass
class CallSite:
    """One call expression, with its (attempted) resolution."""

    caller: str             #: qualname of the enclosing function/module
    module: str             #: module the call appears in
    node: ast.Call
    kind: str               #: PROJECT | EXTERNAL | UNKNOWN
    target: Optional[str]   #: qualname (project) or dotted name (external)


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for t in targets:
            if isinstance(t, ast.Name) and t.id == "__slots__":
                return True
    for deco in node.decorator_list:
        if isinstance(deco, ast.Call):
            name = deco.func
            if (isinstance(name, ast.Name) and name.id == "dataclass"
                    or isinstance(name, ast.Attribute)
                    and name.attr == "dataclass"):
                for kw in deco.keywords:
                    if (kw.arg == "slots"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True):
                        return True
    return False


class ProjectModule:
    """One parsed module plus its symbol tables."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.name = module_name_for_path(path)
        self.is_package = path.replace("\\", "/").endswith("__init__.py")
        tree = ast.parse(source, filename=path)
        self.mod = _Module(tree, source, path)
        self.tree = tree
        #: Import alias -> dotted target, for project-absolute imports
        #: (``from repro.sim import Environment`` -> Environment ->
        #: ``repro.sim.Environment``; ``import repro.sim.rng as r`` ->
        #: r -> ``repro.sim.rng``). Only in-project roots are recorded;
        #: external libraries go through ``_Module.canonical``.
        self.imports: dict[str, str] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._collect_imports()
        self._collect_defs()

    def _collect_imports(self) -> None:
        root = self.name.split(".")[0]
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.name.split(".")[0] == root:
                        self.imports[a.asname or a.name.split(".")[0]] = (
                            a.name if a.asname else a.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                base = self.import_base(node)
                if not base or base.split(".")[0] != root:
                    continue
                for a in node.names:
                    self.imports[a.asname or a.name] = f"{base}.{a.name}"

    def import_base(self, node: ast.ImportFrom) -> str:
        """Absolute dotted base of an import-from (resolves relatives)."""
        if not node.level:
            return node.module or ""
        parts = self.name.split(".")
        if not self.is_package:
            parts = parts[:-1]
        if node.level > 1:
            parts = parts[:len(parts) - (node.level - 1)]
        base = ".".join(parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    def _collect_defs(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                info = ClassInfo(
                    qualname=f"{self.name}.{stmt.name}", module=self.name,
                    name=stmt.name, node=stmt,
                    has_slots=_declares_slots(stmt))
                self.classes[stmt.name] = info
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        finfo = self._add_function(sub, class_name=stmt.name)
                        info.methods[sub.name] = finfo

    def _add_function(self, node, class_name: Optional[str]) -> FunctionInfo:
        local = f"{class_name}.{node.name}" if class_name else node.name
        yields = [n for n in ast.walk(node)
                  if isinstance(n, (ast.Yield, ast.YieldFrom))
                  and self.mod.enclosing_function(n) is node]
        info = FunctionInfo(
            qualname=f"{self.name}.{local}", module=self.name,
            name=node.name, class_name=class_name, node=node,
            is_generator=bool(yields),
            is_sim_process=any(
                isinstance(y, ast.Yield) and _is_event_yield(y.value)
                for y in yields))
        self.functions[local] = info
        return info


class Project:
    """The whole-program view: symbols plus a resolved call graph."""

    def __init__(self, modules: Iterable[ProjectModule]):
        self.modules: dict[str, ProjectModule] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        for pm in modules:
            self.modules[pm.name] = pm
            for info in pm.functions.values():
                self.functions[info.qualname] = info
            for cinfo in pm.classes.values():
                self.classes[cinfo.qualname] = cinfo
        #: caller qualname -> its call sites (module-level calls use the
        #: pseudo-caller ``<module>.<module-name>``).
        self.calls: dict[str, list[CallSite]] = {}
        for pm in self.modules.values():
            self._collect_calls(pm)

    # -- call collection ---------------------------------------------------
    def _collect_calls(self, pm: ProjectModule) -> None:
        for node in ast.walk(pm.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = pm.mod.enclosing_function(node)
            scope = None
            if fn is not None:
                scope = next((i for i in pm.functions.values()
                              if i.node is fn), None)
            caller = scope.qualname if scope else f"<module>.{pm.name}"
            kind, target = self.resolve_call(pm, scope, node)
            self.calls.setdefault(caller, []).append(
                CallSite(caller=caller, module=pm.name, node=node,
                         kind=kind, target=target))

    # -- resolution --------------------------------------------------------
    def _class_for_dotted(self, dotted: str) -> Optional[ClassInfo]:
        return self.classes.get(dotted)

    def _function_for_dotted(self, dotted: str) -> Optional[FunctionInfo]:
        return self.functions.get(dotted)

    def _constructor(self, cinfo: ClassInfo) -> tuple[str, str]:
        """Resolve instantiating a project class to its ``__init__``."""
        seen = set()
        cur: Optional[ClassInfo] = cinfo
        while cur is not None and cur.qualname not in seen:
            seen.add(cur.qualname)
            init = cur.methods.get("__init__")
            if init is not None:
                return PROJECT, init.qualname
            cur = self._project_base(cur)
        return PROJECT, cinfo.qualname  # marker: class with inherited init

    def _project_base(self, cinfo: ClassInfo) -> Optional[ClassInfo]:
        """First base class resolvable inside the project, if any."""
        for base in cinfo.node.bases:
            dotted = self.resolve_name(self.modules[cinfo.module], base)
            if dotted is not None and dotted in self.classes:
                return self.classes[dotted]
        return None

    def base_names(self, cinfo: ClassInfo) -> list[str]:
        """All direct bases as dotted names (project or external)."""
        pm = self.modules[cinfo.module]
        out = []
        for base in cinfo.node.bases:
            dotted = self.resolve_name(pm, base)
            if dotted is not None:
                out.append(dotted)
            elif isinstance(base, ast.Name):
                out.append(base.id)
            elif isinstance(base, ast.Attribute):
                out.append(base.attr)
        return out

    def transitive_bases(self, cinfo: ClassInfo) -> set[str]:
        """Dotted names of all bases reachable through project classes."""
        out: set[str] = set()
        stack = [cinfo]
        seen = {cinfo.qualname}
        while stack:
            cur = stack.pop()
            for dotted in self.base_names(cur):
                out.add(dotted)
                nxt = self.classes.get(dotted)
                if nxt is not None and nxt.qualname not in seen:
                    seen.add(nxt.qualname)
                    stack.append(nxt)
        return out

    def resolve_name(self, pm: ProjectModule,
                     expr: ast.expr) -> Optional[str]:
        """Resolve a Name/Attribute expression to a dotted name."""
        if isinstance(expr, ast.Name):
            if expr.id in pm.classes:
                return pm.classes[expr.id].qualname
            if expr.id in pm.functions:
                return pm.functions[expr.id].qualname
            if expr.id in pm.imports:
                return self._canonicalize(pm.imports[expr.id])
            return None
        if isinstance(expr, ast.Attribute):
            base = self.resolve_name(pm, expr.value)
            if base is None:
                return None
            return self._canonicalize(f"{base}.{expr.attr}")
        return None

    def _canonicalize(self, dotted: str) -> str:
        """Follow re-export hops: ``repro.sim.Event`` -> the definition."""
        for _ in range(8):  # bounded: re-export chains are short
            if dotted in self.classes or dotted in self.functions:
                return dotted
            head, _, leaf = dotted.rpartition(".")
            pm = self.modules.get(head)
            if pm is None:
                return dotted
            if leaf in pm.classes:
                return pm.classes[leaf].qualname
            if leaf in pm.functions:
                return pm.functions[leaf].qualname
            if leaf in pm.imports:
                dotted = pm.imports[leaf]
                continue
            return dotted
        return dotted

    def resolve_method(self, cinfo: ClassInfo,
                       attr: str) -> Optional[FunctionInfo]:
        """Find ``attr`` on the class or its project-resolvable bases."""
        seen = set()
        cur: Optional[ClassInfo] = cinfo
        while cur is not None and cur.qualname not in seen:
            seen.add(cur.qualname)
            if attr in cur.methods:
                return cur.methods[attr]
            cur = self._project_base(cur)
        return None

    def resolve_call(self, pm: ProjectModule, scope: Optional[FunctionInfo],
                     call: ast.Call) -> tuple[str, Optional[str]]:
        """Resolve a call's target; dynamic dispatch is UNKNOWN, never
        a guess."""
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in pm.functions:
                return PROJECT, pm.functions[func.id].qualname
            if func.id in pm.classes:
                return self._constructor(pm.classes[func.id])
            if func.id in pm.imports:
                dotted = self._canonicalize(pm.imports[func.id])
                if dotted in self.functions:
                    return PROJECT, dotted
                if dotted in self.classes:
                    return self._constructor(self.classes[dotted])
                if dotted in self.modules:
                    return UNKNOWN, None  # calling a module: nonsense
                return EXTERNAL, dotted
            ext = pm.mod.canonical(func)
            if ext is not None:
                return EXTERNAL, ext
            return UNKNOWN, None
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                if (value.id == "self" and scope is not None
                        and scope.class_name is not None):
                    cinfo = pm.classes.get(scope.class_name)
                    if cinfo is not None:
                        method = self.resolve_method(cinfo, func.attr)
                        if method is not None:
                            return PROJECT, method.qualname
                    return UNKNOWN, None
                if value.id in pm.classes:  # ClassName.method(...)
                    method = self.resolve_method(
                        pm.classes[value.id], func.attr)
                    if method is not None:
                        return PROJECT, method.qualname
                    return UNKNOWN, None
                if value.id in pm.imports:
                    dotted = self._canonicalize(
                        f"{pm.imports[value.id]}.{func.attr}")
                    if dotted in self.functions:
                        return PROJECT, dotted
                    if dotted in self.classes:
                        return self._constructor(self.classes[dotted])
                    return EXTERNAL, dotted
            ext = pm.mod.canonical(func)
            if ext is not None:
                return EXTERNAL, ext
            return UNKNOWN, None
        return UNKNOWN, None

    # -- graph queries -----------------------------------------------------
    def callees(self, qualname: str) -> list[CallSite]:
        return self.calls.get(qualname, [])

    def sim_process_roots(self) -> set[str]:
        """Qualnames of generator functions that yield kernel events."""
        return {q for q, info in self.functions.items()
                if info.is_sim_process}

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Functions reachable from ``roots`` over resolved project
        edges. Cycles terminate; UNKNOWN edges are simply not edges."""
        seen: set[str] = set()
        stack = list(roots)
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            for site in self.calls.get(cur, ()):
                if site.kind == PROJECT and site.target is not None:
                    if site.target not in seen:
                        stack.append(site.target)
        return seen


def build_project(sources: dict[str, str]) -> Project:
    """Parse ``{path: source}`` into a :class:`Project`.

    Raises :class:`SyntaxError` (with the offending filename) if any
    module fails to parse, mirroring :func:`repro.analysis.lint_source`.
    """
    return Project(ProjectModule(path, src)
                   for path, src in sorted(sources.items()))
