"""Runtime sanitizers: determinism and resource-leak checks for scenarios.

The static rules in :mod:`repro.analysis.rules` catch the obvious contract
breaches; these sanitizers catch the rest *empirically*, the way race
detectors and memory sanitizers back up code review:

- :class:`DeterminismSanitizer` runs a scenario N times and diffs a
  digest of every dispatched event ``(t, eid, kind)`` across runs — a
  single stray RNG draw, wall-clock read, or set-ordered decision shows
  up as a digest mismatch with the first diverging step.
- :class:`ResourceLeakSanitizer` audits tracked resources/machines at
  teardown for outstanding acquires — the runtime analogue of SL004.
- :class:`SharedStateSanitizer` is the shard-safety race detector: wrap a
  shared container with :meth:`~SharedStateSanitizer.watch` and it flags
  two processes writing it at the same sim timestamp with no ordering
  event between the writes — exactly the accesses that would diverge if
  the two processes landed on different shards of a distributed run.
"""

from __future__ import annotations

import functools
import hashlib
import struct
import weakref
from typing import Any, Callable, Optional

from repro.sim.environment import Environment

__all__ = [
    "DeterminismSanitizer",
    "DeterminismViolation",
    "ResourceLeakError",
    "ResourceLeakSanitizer",
    "SharedStateSanitizer",
    "SharedStateViolation",
    "TraceDigest",
    "WatchedDict",
    "WatchedList",
    "WatchedSet",
]


class DeterminismViolation(AssertionError):
    """Two same-seed runs of a scenario produced different event traces."""


class ResourceLeakError(AssertionError):
    """A tracked resource still held acquisitions at teardown."""


class TraceDigest:
    """A streaming SHA-256 digest over dispatched events.

    Install it as an environment tracer; each dispatched event folds
    ``(t, eid, kind)`` into the digest. ``keep`` retains the first N raw
    events so a mismatch can be localized, without storing whole traces.
    """

    def __init__(self, keep: int = 64):
        self._hash = hashlib.sha256()
        self.events = 0
        self.keep = keep
        self.head: list[tuple[float, int, str]] = []

    def __call__(self, t: float, eid: int, kind: str) -> None:
        self._hash.update(struct.pack("<d", t))
        self._hash.update(eid.to_bytes(8, "little", signed=False))
        self._hash.update(kind.encode())
        if self.events < self.keep:
            self.head.append((t, eid, kind))
        self.events += 1

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


def _first_divergence(a: "TraceDigest", b: "TraceDigest") -> str:
    for i, (ea, eb) in enumerate(zip(a.head, b.head)):
        if ea != eb:
            return f"first divergence at dispatch #{i}: {ea} vs {eb}"
    if a.events != b.events:
        return f"event counts differ: {a.events} vs {b.events}"
    return "divergence beyond the retained trace head"


class DeterminismSanitizer:
    """Runs a scenario repeatedly and requires identical event traces.

    The scenario is any zero-argument callable that builds its own
    environment(s) and runs them — e.g. ``lambda:
    run_chaos_matrix(seed=7)``. All environments constructed while the
    scenario runs are traced via :meth:`Environment.traced`.
    """

    def __init__(self, runs: int = 2, keep: int = 64):
        if runs < 2:
            raise ValueError("need at least 2 runs to compare")
        self.runs = runs
        self.keep = keep
        self.digests: list[TraceDigest] = []

    def record(self, scenario: Callable[[], Any]) -> TraceDigest:
        """One traced execution of ``scenario``; returns its digest."""
        digest = TraceDigest(keep=self.keep)
        with Environment.traced(digest):
            scenario()
        return digest

    def check(self, scenario: Callable[[], Any],
              label: str = "scenario") -> str:
        """Run ``scenario`` ``runs`` times; raise on any trace mismatch.

        Returns the (common) hex digest on success.
        """
        self.digests = [self.record(scenario) for _ in range(self.runs)]
        first = self.digests[0]
        for i, other in enumerate(self.digests[1:], start=2):
            if other.hexdigest() != first.hexdigest():
                raise DeterminismViolation(
                    f"{label}: run 1 and run {i} diverged after dispatching "
                    f"{first.events} vs {other.events} events — "
                    f"{_first_divergence(first, other)}")
        return first.hexdigest()


class ResourceLeakSanitizer:
    """Audits outstanding acquisitions on tracked resources at teardown.

    Works with the kernel's :class:`~repro.sim.Resource` family (``users``
    /``queue``), :class:`~repro.cluster.machine.Machine` (``used_cores``/
    ``used_memory_gb``), and :class:`~repro.sim.Container` (negative
    levels can't happen in-kernel, but a floor can be asserted).
    """

    def __init__(self):
        self._tracked: list[tuple[str, Any]] = []

    def track(self, obj: Any, name: Optional[str] = None) -> Any:
        """Register ``obj`` for the teardown audit; returns ``obj``."""
        label = name or f"{type(obj).__name__}@{len(self._tracked)}"
        self._tracked.append((label, obj))
        return obj

    def leaks(self) -> list[str]:
        """Human-readable descriptions of every outstanding acquisition."""
        problems: list[str] = []
        for label, obj in self._tracked:
            users = getattr(obj, "users", None)
            if users:
                problems.append(
                    f"{label}: {len(users)} unreleased request(s)")
            queue = getattr(obj, "queue", None)
            if queue:
                problems.append(
                    f"{label}: {len(queue)} request(s) still queued")
            used_cores = getattr(obj, "used_cores", 0)
            if used_cores:
                problems.append(
                    f"{label}: {used_cores} core(s) still allocated")
            used_mem = getattr(obj, "used_memory_gb", 0.0)
            if used_mem:
                problems.append(
                    f"{label}: {used_mem} GB still allocated")
            level = getattr(obj, "level", None)
            if level is not None and level < 0:
                problems.append(f"{label}: negative level {level}")
        return problems

    def check(self) -> None:
        """Raise :class:`ResourceLeakError` if anything is still held."""
        problems = self.leaks()
        if problems:
            raise ResourceLeakError(
                "outstanding acquisitions at teardown:\n  "
                + "\n  ".join(problems))

    def __enter__(self) -> "ResourceLeakSanitizer":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        # Only audit on clean exit; don't mask the original exception.
        if exc_type is None:
            self.check()


# -- shared-state (shard-safety) sanitizer ----------------------------------

class SharedStateViolation(AssertionError):
    """Two processes wrote a watched object at one timestamp, unordered.

    Same-timestamp writes are only deterministic here because the kernel
    breaks ties by event id; in a sharded deployment the two writers race.
    An ordering event (one process triggers an event the other waited on,
    directly or transitively) makes the second write legitimate.
    """


class _Watched:
    """Mixin for watched containers: report every mutation to the owner."""

    _sanitizer: Optional["SharedStateSanitizer"] = None
    _shared_name: str = "shared"
    _frontier: dict

    def _note_write(self, op: str) -> None:
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer._on_write(self, op)


def _mutator(base_method):
    """Wrap a built-in mutating method to notify the sanitizer first."""
    @functools.wraps(base_method)
    def method(self, *args, **kwargs):
        self._note_write(base_method.__name__)
        return base_method(self, *args, **kwargs)
    return method


class WatchedDict(_Watched, dict):
    """``dict`` whose mutations are audited for same-timestamp races."""

    __setitem__ = _mutator(dict.__setitem__)
    __delitem__ = _mutator(dict.__delitem__)
    __ior__ = _mutator(dict.__ior__)
    pop = _mutator(dict.pop)
    popitem = _mutator(dict.popitem)
    clear = _mutator(dict.clear)
    update = _mutator(dict.update)
    setdefault = _mutator(dict.setdefault)


class WatchedList(_Watched, list):
    """``list`` whose mutations are audited for same-timestamp races."""

    __setitem__ = _mutator(list.__setitem__)
    __delitem__ = _mutator(list.__delitem__)
    __iadd__ = _mutator(list.__iadd__)
    __imul__ = _mutator(list.__imul__)
    append = _mutator(list.append)
    extend = _mutator(list.extend)
    insert = _mutator(list.insert)
    pop = _mutator(list.pop)
    remove = _mutator(list.remove)
    sort = _mutator(list.sort)
    reverse = _mutator(list.reverse)
    clear = _mutator(list.clear)


class WatchedSet(_Watched, set):
    """``set`` whose mutations are audited for same-timestamp races."""

    __ior__ = _mutator(set.__ior__)
    __iand__ = _mutator(set.__iand__)
    __isub__ = _mutator(set.__isub__)
    __ixor__ = _mutator(set.__ixor__)
    add = _mutator(set.add)
    discard = _mutator(set.discard)
    remove = _mutator(set.remove)
    pop = _mutator(set.pop)
    clear = _mutator(set.clear)
    update = _mutator(set.update)
    difference_update = _mutator(set.difference_update)
    intersection_update = _mutator(set.intersection_update)
    symmetric_difference_update = _mutator(set.symmetric_difference_update)


def _process_label(proc: Any) -> str:
    generator = getattr(proc, "_generator", None)
    return getattr(generator, "__name__", None) or repr(proc)


class SharedStateSanitizer:
    """Flags unordered same-timestamp writes to watched shared state.

    The static rule SL007 finds module-level mutable state *reachable*
    from sim processes; this sanitizer proves, at runtime, which of those
    objects are actually written concurrently. The algorithm is a small
    happens-before tracker (a vector clock over processes):

    - every write and every event scheduling bumps a global sequence
      counter;
    - when process ``P`` schedules an event (``succeed``, a timeout, a
      spawn), the event is stamped with a snapshot of everything ``P``
      has seen so far, including ``P``'s own writes up to that instant;
    - when a process wakes (the kernel exposes the dispatching event via
      ``env._current_event``) and then writes, it first absorbs the
      waking event's snapshot — that is the ordering edge;
    - each watched object keeps a *frontier* of the last write per
      process at the current timestamp. A write is a violation if some
      other process's frontier write at the same timestamp is **not** in
      the writer's absorbed knowledge.

    Writes outside any process (scenario setup/teardown) are exempt, as
    are writes at distinct timestamps — simulated time itself orders
    those.

    Use as a context manager so the kernel hook is uninstalled on exit::

        with SharedStateSanitizer(env) as sanitizer:
            log = sanitizer.watch([], name="completion-log")
            ... build processes that share ``log`` ...
            env.run()
    """

    def __init__(self, env: Environment, strict: bool = True):
        self.env = env
        #: When ``False``, violations are recorded but not raised.
        self.strict = strict
        self.violations: list[str] = []
        self._seq = 0
        self._watched = 0
        # Process -> {writer-process: highest seq of writer's actions seen}.
        self._seen: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()
        # Event -> snapshot of the scheduler's knowledge at schedule time.
        self._snapshots: weakref.WeakKeyDictionary = \
            weakref.WeakKeyDictionary()
        self._prev_hook = env._on_schedule
        env._on_schedule = self._note_schedule

    def close(self) -> None:
        """Uninstall the kernel scheduling hook (idempotent)."""
        if self.env._on_schedule == self._note_schedule:
            self.env._on_schedule = self._prev_hook

    def __enter__(self) -> "SharedStateSanitizer":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.close()

    def watch(self, obj: Any, name: Optional[str] = None) -> Any:
        """Wrap a ``dict``/``list``/``set`` in a watched copy; returns it.

        The original is shallow-copied — share the *returned* object.
        """
        if isinstance(obj, dict):
            watched: Any = WatchedDict(obj)
        elif isinstance(obj, list):
            watched = WatchedList(obj)
        elif isinstance(obj, (set, frozenset)):
            watched = WatchedSet(obj)
        else:
            raise TypeError(
                f"cannot watch {type(obj).__name__}; expected dict, list "
                "or set")
        self._watched += 1
        watched._sanitizer = self
        watched._shared_name = name or f"{type(obj).__name__}#{self._watched}"
        watched._frontier = {}
        return watched

    # -- kernel hooks --------------------------------------------------------
    def _absorb(self, proc: Any) -> None:
        """Merge the knowledge carried by the event that woke ``proc``.

        Called on every action ``proc`` takes (write or schedule), so
        ordering flows transitively even through processes that only
        relay — wake on one event, trigger another — without writing.
        """
        event = self.env._current_event
        if event is None:
            return
        snapshot = self._snapshots.get(event)
        if snapshot:
            mine = self._seen.setdefault(proc, {})
            for writer, upto in snapshot.items():
                if mine.get(writer, -1) < upto:
                    mine[writer] = upto

    def _note_schedule(self, event: Any) -> None:
        if self._prev_hook is not None:
            self._prev_hook(event)
        proc = self.env._active_process
        if proc is None:
            return
        self._absorb(proc)
        self._seq += 1
        snapshot = dict(self._seen.get(proc, ()))
        snapshot[proc] = self._seq
        self._snapshots[event] = snapshot

    def _on_write(self, watched: _Watched, op: str) -> None:
        env = self.env
        proc = env._active_process
        if proc is None:
            return
        self._absorb(proc)
        self._seq += 1
        now = env.now
        frontier = watched._frontier
        mine = self._seen.get(proc, {})
        # Frontier timestamps are verbatim copies of env.now (no float
        # arithmetic), so exact comparison is the right tool here.
        stale = [w for w, (t, _, _) in frontier.items()
                 if t != now]  # simlint: disable=SL006
        for writer in stale:
            del frontier[writer]  # earlier timestamps: ordered by time
        for writer, (t, seq, other_op) in list(frontier.items()):
            if writer is proc:
                continue
            if mine.get(writer, -1) >= seq:
                # An ordering event carried that write to us; it is now
                # part of our past, so our write supersedes it.
                del frontier[writer]
                continue
            message = (
                f"{watched._shared_name}: unordered writes at t={now}: "
                f"{_process_label(writer)} .{other_op}() then "
                f"{_process_label(proc)} .{op}() with no ordering event "
                "between them")
            self.violations.append(message)
            if self.strict:
                raise SharedStateViolation(message)
        frontier[proc] = (now, self._seq, op)
