"""Runtime sanitizers: determinism and resource-leak checks for scenarios.

The static rules in :mod:`repro.analysis.rules` catch the obvious contract
breaches; these sanitizers catch the rest *empirically*, the way race
detectors and memory sanitizers back up code review:

- :class:`DeterminismSanitizer` runs a scenario N times and diffs a
  digest of every dispatched event ``(t, eid, kind)`` across runs — a
  single stray RNG draw, wall-clock read, or set-ordered decision shows
  up as a digest mismatch with the first diverging step.
- :class:`ResourceLeakSanitizer` audits tracked resources/machines at
  teardown for outstanding acquires — the runtime analogue of SL004.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Callable, Optional

from repro.sim.environment import Environment

__all__ = [
    "DeterminismSanitizer",
    "DeterminismViolation",
    "ResourceLeakError",
    "ResourceLeakSanitizer",
    "TraceDigest",
]


class DeterminismViolation(AssertionError):
    """Two same-seed runs of a scenario produced different event traces."""


class ResourceLeakError(AssertionError):
    """A tracked resource still held acquisitions at teardown."""


class TraceDigest:
    """A streaming SHA-256 digest over dispatched events.

    Install it as an environment tracer; each dispatched event folds
    ``(t, eid, kind)`` into the digest. ``keep`` retains the first N raw
    events so a mismatch can be localized, without storing whole traces.
    """

    def __init__(self, keep: int = 64):
        self._hash = hashlib.sha256()
        self.events = 0
        self.keep = keep
        self.head: list[tuple[float, int, str]] = []

    def __call__(self, t: float, eid: int, kind: str) -> None:
        self._hash.update(struct.pack("<d", t))
        self._hash.update(eid.to_bytes(8, "little", signed=False))
        self._hash.update(kind.encode())
        if self.events < self.keep:
            self.head.append((t, eid, kind))
        self.events += 1

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


def _first_divergence(a: "TraceDigest", b: "TraceDigest") -> str:
    for i, (ea, eb) in enumerate(zip(a.head, b.head)):
        if ea != eb:
            return f"first divergence at dispatch #{i}: {ea} vs {eb}"
    if a.events != b.events:
        return f"event counts differ: {a.events} vs {b.events}"
    return "divergence beyond the retained trace head"


class DeterminismSanitizer:
    """Runs a scenario repeatedly and requires identical event traces.

    The scenario is any zero-argument callable that builds its own
    environment(s) and runs them — e.g. ``lambda:
    run_chaos_matrix(seed=7)``. All environments constructed while the
    scenario runs are traced via :meth:`Environment.traced`.
    """

    def __init__(self, runs: int = 2, keep: int = 64):
        if runs < 2:
            raise ValueError("need at least 2 runs to compare")
        self.runs = runs
        self.keep = keep
        self.digests: list[TraceDigest] = []

    def record(self, scenario: Callable[[], Any]) -> TraceDigest:
        """One traced execution of ``scenario``; returns its digest."""
        digest = TraceDigest(keep=self.keep)
        with Environment.traced(digest):
            scenario()
        return digest

    def check(self, scenario: Callable[[], Any],
              label: str = "scenario") -> str:
        """Run ``scenario`` ``runs`` times; raise on any trace mismatch.

        Returns the (common) hex digest on success.
        """
        self.digests = [self.record(scenario) for _ in range(self.runs)]
        first = self.digests[0]
        for i, other in enumerate(self.digests[1:], start=2):
            if other.hexdigest() != first.hexdigest():
                raise DeterminismViolation(
                    f"{label}: run 1 and run {i} diverged after dispatching "
                    f"{first.events} vs {other.events} events — "
                    f"{_first_divergence(first, other)}")
        return first.hexdigest()


class ResourceLeakSanitizer:
    """Audits outstanding acquisitions on tracked resources at teardown.

    Works with the kernel's :class:`~repro.sim.Resource` family (``users``
    /``queue``), :class:`~repro.cluster.machine.Machine` (``used_cores``/
    ``used_memory_gb``), and :class:`~repro.sim.Container` (negative
    levels can't happen in-kernel, but a floor can be asserted).
    """

    def __init__(self):
        self._tracked: list[tuple[str, Any]] = []

    def track(self, obj: Any, name: Optional[str] = None) -> Any:
        """Register ``obj`` for the teardown audit; returns ``obj``."""
        label = name or f"{type(obj).__name__}@{len(self._tracked)}"
        self._tracked.append((label, obj))
        return obj

    def leaks(self) -> list[str]:
        """Human-readable descriptions of every outstanding acquisition."""
        problems: list[str] = []
        for label, obj in self._tracked:
            users = getattr(obj, "users", None)
            if users:
                problems.append(
                    f"{label}: {len(users)} unreleased request(s)")
            queue = getattr(obj, "queue", None)
            if queue:
                problems.append(
                    f"{label}: {len(queue)} request(s) still queued")
            used_cores = getattr(obj, "used_cores", 0)
            if used_cores:
                problems.append(
                    f"{label}: {used_cores} core(s) still allocated")
            used_mem = getattr(obj, "used_memory_gb", 0.0)
            if used_mem:
                problems.append(
                    f"{label}: {used_mem} GB still allocated")
            level = getattr(obj, "level", None)
            if level is not None and level < 0:
                problems.append(f"{label}: negative level {level}")
        return problems

    def check(self) -> None:
        """Raise :class:`ResourceLeakError` if anything is still held."""
        problems = self.leaks()
        if problems:
            raise ResourceLeakError(
                "outstanding acquisitions at teardown:\n  "
                + "\n  ".join(problems))

    def __enter__(self) -> "ResourceLeakSanitizer":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        # Only audit on clean exit; don't mask the original exception.
        if exc_type is None:
            self.check()
