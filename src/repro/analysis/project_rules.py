"""Whole-program simlint rules: SL007–SL010 and the SL001 flow pass.

These rules run over a :class:`repro.analysis.graph.Project` rather
than one module at a time (contrast :mod:`repro.analysis.rules`):

SL001 (flow)  interprocedural RNG provenance
    The syntactic SL001 catches ``default_rng()`` written unseeded at
    the call site. This pass follows *seed parameters* through the call
    graph: a parameter that flows into an RNG constructor's seed slot —
    directly or through further calls — marks every caller that omits
    it (against a ``None`` default) or passes ``None`` explicitly. The
    finding names the whole helper chain, so an unseeded draw hidden
    two helpers deep is reported at the call that forgot the seed.

SL007  module-level mutable state written from sim-process code
    The shard-safety killer: a dict/list/set at module scope mutated by
    code reachable from a sim process is shared across every
    environment in the interpreter — two shards, one counter. Flagged
    at the write site, with call-graph reachability (not text
    proximity) deciding "from sim-process code".

SL008  architecture layering
    Imports must follow the DAG declared in
    :mod:`repro.analysis.layers` (``sim`` imports nothing, domains
    never import each other, observability is imported by nobody below
    it). PR 6's "sim never imports faults" comment is now a lint.

SL009  hot-path performance
    In the manifest's hot files, per-event classes (Event subclasses
    and the listed extras) must declare ``__slots__``; inside the
    designated event-loop functions, repeated ``self.<attr>`` loads
    under a loop must be pre-bound to locals (attributes the function
    assigns are exempt — they are live state, not loop-invariant).

SL010  unbounded growth in never-exiting sim processes
    ``append``/``add`` inside a ``while True`` loop (no break/return)
    of a sim process, on a container with no eviction anywhere in its
    owning scope and no ``deque(maxlen=...)`` bound: the memory leak
    that kills long sims, found before the 10-hour run does.

All rules share the project discipline: dynamic dispatch resolves to
UNKNOWN and UNKNOWN never produces a finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis.graph import (
    EXTERNAL,
    PROJECT,
    FunctionInfo,
    Project,
    ProjectModule,
)
from repro.analysis.layers import (
    EVENT_LOOP_FUNCTIONS,
    HARNESS,
    HOT_FILE_SUFFIXES,
    LAYERS,
    SLOTS_REQUIRED,
    layer_for_module,
)
from repro.analysis.rules import Finding

__all__ = ["PROJECT_RULES", "ProjectRule", "run_project_rules"]


@dataclass(frozen=True)
class ProjectRule:
    code: str
    summary: str
    check: Callable[[Project], list]


_MISSING = object()


def _display(info: FunctionInfo) -> str:
    if info.class_name:
        return f"{info.class_name}.{info.name}"
    return info.name


# -- SL001 flow: interprocedural RNG provenance -----------------------------

#: External constructors whose first/``seed`` argument seeds the RNG.
_RNG_SINKS = {"random.Random", "numpy.random.RandomState",
              "numpy.random.default_rng"}
#: Zero-argument construction of these is wall-clock-seeded — silently
#: nondeterministic (the syntactic SL001 only catches default_rng()).
_IMPLICIT_SEED_CTORS = {"random.Random", "numpy.random.RandomState"}


def _reassigned_params(info: FunctionInfo) -> set[str]:
    params = set(info.params)
    out = set()
    for node in ast.walk(info.node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            if node.id in params:
                out.add(node.id)
    return out


def _map_args(call: ast.Call, target: FunctionInfo) -> Optional[dict]:
    """Map a call's arguments onto the target's parameter names.

    Returns ``{param: expr}`` for supplied arguments; ``*args``/``**kw``
    forwarding makes the mapping unusable, so we return None
    (conservative: no finding).
    """
    if any(isinstance(a, ast.Starred) for a in call.args) or any(
            kw.arg is None for kw in call.keywords):
        return None
    params = list(target.params)
    if target.class_name is not None and params and params[0] in (
            "self", "cls"):
        params = params[1:]
    mapping: dict = {}
    for param, arg in zip(params, call.args):
        mapping[param] = arg
    for kw in call.keywords:
        if kw.arg in target.params:
            mapping[kw.arg] = kw.value
    return mapping


def _seed_arg(call: ast.Call) -> object:
    """The expr in an RNG constructor's seed slot, or _MISSING."""
    if call.args:
        return call.args[0]
    for kw in call.keywords:
        if kw.arg == "seed":
            return kw.value
    return _MISSING


def _seed_param_chains(project: Project) -> dict[str, dict[str, tuple]]:
    """Fixed point: function -> {param -> chain of hops to the RNG}."""
    reassigned = {q: _reassigned_params(info)
                  for q, info in project.functions.items()}
    chains: dict[str, dict[str, tuple]] = {q: {} for q in project.functions}
    changed = True
    while changed:
        changed = False
        for qual, info in project.functions.items():
            params = set(info.params) - reassigned[qual]
            for site in project.callees(qual):
                hop: Optional[tuple[str, tuple]] = None
                if site.kind == EXTERNAL and site.target in _RNG_SINKS:
                    arg = _seed_arg(site.node)
                    if isinstance(arg, ast.Name) and arg.id in params:
                        hop = (arg.id, (site.target,))
                elif site.kind == PROJECT and site.target in chains:
                    target = project.functions.get(site.target)
                    if target is None:
                        continue
                    mapping = _map_args(site.node, target)
                    if mapping is None:
                        continue
                    for q_param, chain in chains[site.target].items():
                        arg = mapping.get(q_param, _MISSING)
                        if isinstance(arg, ast.Name) and arg.id in params:
                            hop = (arg.id,
                                   (_display(target),) + chain)
                            break
                if hop is not None:
                    param, chain = hop
                    if param not in chains[qual]:
                        chains[qual][param] = chain
                        changed = True
    return chains


def _check_sl001_flow(project: Project) -> list[Finding]:
    out = []
    chains = _seed_param_chains(project)
    for caller, sites in project.calls.items():
        for site in sites:
            pm = project.modules[site.module]
            if site.kind == EXTERNAL and site.target in _IMPLICIT_SEED_CTORS:
                fn = pm.mod.enclosing_function(site.node)
                if fn is None:
                    continue  # module level: syntactic SL001 owns it
                if _seed_arg(site.node) is _MISSING:
                    out.append(pm.mod.finding(
                        "SL001", site.node,
                        f"unseeded {site.target}() — wall-clock-seeded and "
                        "nondeterministic across runs; derive the seed from "
                        "RandomStreams"))
                continue
            if site.kind != PROJECT or site.target not in chains:
                continue
            target = project.functions.get(site.target)
            if target is None or not chains[site.target]:
                continue
            mapping = _map_args(site.node, target)
            if mapping is None:
                continue
            for param, chain in chains[site.target].items():
                arg = mapping.get(param, _MISSING)
                omitted = (arg is _MISSING and isinstance(
                    target.param_default(param), ast.Constant)
                    and target.param_default(param).value is None)
                explicit_none = (isinstance(arg, ast.Constant)
                                 and arg.value is None)
                if omitted or explicit_none:
                    route = " -> ".join((_display(target),) + chain)
                    how = ("omits" if omitted else "passes None for")
                    out.append(pm.mod.finding(
                        "SL001", site.node,
                        f"call {how} {param!r}; the RNG is reached unseeded "
                        f"via {route} — pass a seed derived from "
                        "RandomStreams"))
    return out


# -- SL007: module-level mutable state written from sim processes -----------

_MUTABLE_CTORS = {"dict", "list", "set", "defaultdict", "deque", "Counter",
                  "OrderedDict"}
_MUTATORS = {"append", "appendleft", "add", "update", "setdefault", "pop",
             "popleft", "popitem", "extend", "insert", "clear", "remove",
             "discard"}


def _is_mutable_ctor(value: ast.expr) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                          ast.SetComp, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None)
        return name in _MUTABLE_CTORS
    return False


def _module_mutables(pm: ProjectModule) -> dict[str, ast.AST]:
    """Module-level names bound to mutable containers."""
    out: dict[str, ast.AST] = {}
    for stmt in pm.tree.body:
        target = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        else:
            continue
        if isinstance(target, ast.Name) and _is_mutable_ctor(value):
            out[target.id] = stmt
    return out


def _local_names(info: FunctionInfo) -> set[str]:
    """Names that are local in this function (params + plain stores)."""
    declared_global: set[str] = set()
    for node in ast.walk(info.node):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_global.update(node.names)
    out = set(info.params)
    for node in ast.walk(info.node):
        if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)):
            if node.id not in declared_global:
                out.add(node.id)
    return out


def _check_sl007(project: Project) -> list[Finding]:
    registry: dict[str, tuple[ProjectModule, str]] = {}
    for pm in project.modules.values():
        for name, stmt in _module_mutables(pm).items():
            registry[f"{pm.name}.{name}"] = (pm, name)
    if not registry:
        return []
    reachable = project.reachable_from(project.sim_process_roots())

    def resolve_target(pm: ProjectModule, locals_: set,
                       expr: ast.expr) -> Optional[str]:
        """Dotted name of the module-level mutable ``expr`` names."""
        if isinstance(expr, ast.Name):
            if expr.id in locals_:
                return None
            dotted = f"{pm.name}.{expr.id}"
            if dotted in registry:
                return dotted
            if expr.id in pm.imports:
                dotted = pm.imports[expr.id]
                return dotted if dotted in registry else None
            return None
        if isinstance(expr, ast.Attribute) and isinstance(
                expr.value, ast.Name):
            alias = expr.value.id
            if alias in locals_ or alias not in pm.imports:
                return None
            dotted = f"{pm.imports[alias]}.{expr.attr}"
            return dotted if dotted in registry else None
        return None

    out = []
    for qual, info in project.functions.items():
        if qual not in reachable:
            continue
        pm = project.modules[info.module]
        locals_ = _local_names(info)
        declared_global = {n for node in ast.walk(info.node)
                           if isinstance(node, ast.Global)
                           for n in node.names}

        def flag(node, dotted):
            out.append(pm.mod.finding(
                "SL007", node,
                f"write to module-level mutable state {dotted!r} from "
                f"sim-process-reachable code ({_display(info)}); process "
                "state shared across environments is shard-unsafe — move "
                "it onto the world object"))

        for node in ast.walk(info.node):
            if pm.mod.enclosing_function(node) is not info.node:
                continue
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS):
                dotted = resolve_target(pm, locals_, node.func.value)
                if dotted is not None:
                    flag(node, dotted)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else node.targets if isinstance(node, ast.Delete)
                           else [node.target])
                for t in targets:
                    if isinstance(t, ast.Subscript):
                        dotted = resolve_target(pm, locals_, t.value)
                        if dotted is not None:
                            flag(node, dotted)
                    elif (isinstance(t, ast.Name)
                          and t.id in declared_global
                          and f"{pm.name}.{t.id}" in registry):
                        flag(node, f"{pm.name}.{t.id}")
    return out


# -- SL008: architecture layering -------------------------------------------

def _import_packages(pm: ProjectModule):
    """Yield (import node, imported repro package) pairs."""
    for node in ast.walk(pm.tree):
        targets = []
        if isinstance(node, ast.Import):
            targets = [a.name for a in node.names]
        elif isinstance(node, ast.ImportFrom):
            base = pm.import_base(node)
            if base:
                targets = [base] + [f"{base}.{a.name}" for a in node.names]
        pkgs = set()
        for dotted in targets:
            parts = dotted.split(".")
            if len(parts) >= 2 and parts[0] == "repro":
                pkgs.add(parts[1])
        for pkg in sorted(pkgs):
            yield node, pkg


def _check_sl008(project: Project) -> list[Finding]:
    out = []
    for pm in project.modules.values():
        layer = layer_for_module(pm.name, pm.path)
        if layer is None or layer == HARNESS:
            continue
        allowed = LAYERS.get(layer)
        if allowed is None:
            node = pm.tree.body[0] if pm.tree.body else None
            if node is not None:
                out.append(pm.mod.finding(
                    "SL008", node,
                    f"package {layer!r} is not in the layer manifest "
                    "(repro.analysis.layers.LAYERS); place it in the "
                    "dependency DAG"))
            continue
        seen: set[tuple[int, str]] = set()
        for node, pkg in _import_packages(pm):
            if pkg == layer or pkg in allowed:
                continue
            key = (node.lineno, pkg)
            if key in seen:
                continue
            seen.add(key)
            out.append(pm.mod.finding(
                "SL008", node,
                f"layer {layer!r} may not import repro.{pkg} (allowed: "
                f"{', '.join(sorted(allowed)) or 'nothing'}); the "
                "architecture DAG is declared in repro.analysis.layers"))
    return out


# -- SL009: hot-path performance --------------------------------------------

_EXC_SUFFIXES = ("Exception", "Error", "Warning", "Interrupt")


def _is_exception_class(project: Project, cinfo) -> bool:
    names = set(project.base_names(cinfo)) | project.transitive_bases(cinfo)
    return any(n.split(".")[-1].endswith(_EXC_SUFFIXES) for n in names)


def _is_event_subclass(project: Project, cinfo) -> bool:
    return any(n == "Event" or n.endswith(".Event")
               for n in project.transitive_bases(cinfo))


def _check_sl009(project: Project) -> list[Finding]:
    out = []
    # (a) per-event classes in hot files must be slotted.
    for pm in project.modules.values():
        norm = pm.path.replace("\\", "/")
        if not any(norm.endswith(suffix) for suffix in HOT_FILE_SUFFIXES):
            continue
        for cinfo in pm.classes.values():
            if cinfo.has_slots or _is_exception_class(project, cinfo):
                continue
            required = (cinfo.qualname in SLOTS_REQUIRED
                        or _is_event_subclass(project, cinfo))
            if required:
                out.append(pm.mod.finding(
                    "SL009", cinfo.node,
                    f"per-event class {cinfo.name} in a hot file has no "
                    "__slots__; instances carry a dict the kernel allocates "
                    "per event — declare __slots__ (or "
                    "@dataclass(slots=True))"))
    # (b) designated event loops: repeated self.<attr> loads under a loop.
    for qual in sorted(EVENT_LOOP_FUNCTIONS):
        info = project.functions.get(qual)
        if info is None:
            continue
        pm = project.modules[info.module]
        stored = set()
        for node in ast.walk(info.node):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, (ast.Store, ast.Del))
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                stored.add(node.attr)
        flagged = set()
        for node in ast.walk(info.node):
            if not (isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                continue
            if node.attr in stored or node.attr in flagged:
                continue
            in_loop = False
            for anc in pm.mod.ancestors(node):
                if anc is info.node:
                    break
                if isinstance(anc, (ast.For, ast.While)):
                    in_loop = True
                    break
            if in_loop:
                flagged.add(node.attr)
                out.append(pm.mod.finding(
                    "SL009", node,
                    f"self.{node.attr} loaded inside the "
                    f"{_display(info)} event loop; pre-bind it to a local "
                    "before the loop (this function is in "
                    "layers.EVENT_LOOP_FUNCTIONS)"))
    return out


# -- SL010: unbounded growth in never-exiting sim processes -----------------

_GROWTH = {"append", "add"}
_EVICTIONS = {"pop", "popleft", "popitem", "clear", "remove", "discard"}


def _loop_never_exits(pm: ProjectModule, loop: ast.While) -> bool:
    if not (isinstance(loop.test, ast.Constant) and loop.test.value):
        return False
    for node in ast.walk(loop):
        if isinstance(node, ast.Return):
            return False
        if isinstance(node, ast.Break):
            # Belongs to this loop only if no nearer loop encloses it.
            anc = pm.mod.parents.get(node)
            while anc is not None and anc is not loop:
                if isinstance(anc, (ast.For, ast.While)):
                    break
                anc = pm.mod.parents.get(anc)
            if anc is loop:
                return False
    return True


def _target_key(expr: ast.expr):
    if isinstance(expr, ast.Name):
        return ("name", expr.id)
    if isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            return ("self", expr.attr)
        # ``self.archive.records`` keys on the owning attribute, so an
        # eviction through a sub-container matches its owner's growth.
        inner = expr.value
        if (isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id == "self"):
            return ("self", inner.attr)
    return None


def _binding_values(scope: ast.AST, key) -> list[ast.expr]:
    """Values assigned to ``key`` anywhere under ``scope``."""
    out = []
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign):
            if any(_target_key(t) == key for t in node.targets):
                out.append(node.value)
        elif (isinstance(node, ast.AnnAssign) and node.value is not None
              and _target_key(node.target) == key):
            out.append(node.value)
    return out


def _is_bounded_deque(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = (func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None)
    if name != "deque":
        return False
    return any(kw.arg == "maxlen"
               and not (isinstance(kw.value, ast.Constant)
                        and kw.value.value is None)
               for kw in value.keywords)


def _evicts_in(scope: ast.AST, key) -> bool:
    """An eviction call or item-delete on ``key`` under ``scope``."""
    for node in ast.walk(scope):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _EVICTIONS
                and _target_key(node.func.value) == key):
            return True
        if (isinstance(node, ast.Subscript)
                and isinstance(node.ctx, (ast.Store, ast.Del))
                and _target_key(node.value) == key):
            return True
    return False


def _has_eviction_or_bound(project: Project, info: FunctionInfo,
                           loop: ast.While, key) -> bool:
    pm = project.modules[info.module]
    kind, _ = key
    if kind == "self" and info.class_name is not None:
        cinfo = pm.classes.get(info.class_name)
        if cinfo is None:
            return True  # can't see the class: no finding
        if any(_is_bounded_deque(v)
               for v in _binding_values(cinfo.node, key)):
            return True
        if _evicts_in(cinfo.node, key):
            return True
        # Rebinding outside __init__ (a flush method, a reset in the
        # loop) is an eviction point; the __init__ binding is just the
        # container's birth.
        for method in cinfo.methods.values():
            if method.name != "__init__" and _binding_values(
                    method.node, key):
                return True
        return False
    # Local or module-global name.
    if any(_is_bounded_deque(v) for v in _binding_values(info.node, key)):
        return True
    if _evicts_in(info.node, key):
        return True
    if _binding_values(loop, key):
        return True  # re-bound inside the loop: resets each round
    if key[1] not in _local_names(info):
        # Module global: another function may drain it; stay
        # conservative and look module-wide.
        if any(_is_bounded_deque(v)
               for v in _binding_values(pm.tree, key)):
            return True
        if _evicts_in(pm.tree, key):
            return True
    return False


def _check_sl010(project: Project) -> list[Finding]:
    out = []
    for qual, info in sorted(project.functions.items()):
        if not info.is_sim_process:
            continue
        pm = project.modules[info.module]
        for loop in ast.walk(info.node):
            if not isinstance(loop, ast.While):
                continue
            if pm.mod.enclosing_function(loop) is not info.node:
                continue
            if not _loop_never_exits(pm, loop):
                continue
            flagged = set()
            for node in ast.walk(loop):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _GROWTH):
                    continue
                key = _target_key(node.func.value)
                if key is None or key in flagged:
                    continue
                if _has_eviction_or_bound(project, info, loop, key):
                    continue
                flagged.add(key)
                owner = ("self." if key[0] == "self" else "") + key[1]
                out.append(pm.mod.finding(
                    "SL010", node,
                    f"unbounded .{node.func.attr}() on {owner} inside a "
                    f"never-exiting sim process ({_display(info)}); add an "
                    "eviction path or use deque(maxlen=...) — long sims "
                    "leak otherwise"))
    return out


PROJECT_RULES: list[ProjectRule] = [
    ProjectRule("SL001", "interprocedural RNG provenance",
                _check_sl001_flow),
    ProjectRule("SL007", "module-level mutable state written from "
                "sim-process code", _check_sl007),
    ProjectRule("SL008", "architecture layering DAG violation",
                _check_sl008),
    ProjectRule("SL009", "hot-path class without __slots__ / unbound "
                "event-loop attribute", _check_sl009),
    ProjectRule("SL010", "unbounded growth in a never-exiting sim process",
                _check_sl010),
]


def run_project_rules(project: Project) -> list[Finding]:
    """Run every project rule, honoring inline suppressions."""
    by_path = {pm.path: pm for pm in project.modules.values()}
    findings = []
    for rule in PROJECT_RULES:
        for f in rule.check(project):
            pm = by_path.get(f.path)
            if pm is not None and pm.mod.suppressed(f):
                continue
            findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings
