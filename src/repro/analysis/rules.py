"""The simlint rules: determinism and resource-safety obligations as AST checks.

Each rule carries a code (``SL001``…), a one-line summary, and a checker
over a parsed module. The rules are deliberately heuristic — they aim for
high-signal findings on simulation code, with the ``.simlint-baseline``
file and ``# simlint: disable=SL00x`` comments as the escape hatches for
intentional, documented exceptions.

SL001  nondeterministic RNG
    Calls through module-global RNG state (``random.*``, ``np.random.*``)
    and unseeded ``default_rng()``. Seeded generator *construction*
    (``np.random.default_rng(seed)``, ``random.Random(seed)``) is allowed
    inside functions but flagged at module level, where it runs at import
    time and silently couples streams across the process. Named
    :class:`repro.sim.RandomStreams` streams are the sanctioned source.

SL002  wall clock in sim code
    ``time.time``/``perf_counter``/``monotonic``, ``datetime.now`` and
    friends. Simulated time comes from ``env.now``; wall-clock reads make
    results machine- and load-dependent.

SL003  non-event yield in a sim process
    In a generator that yields environment events (``env.timeout(...)``
    etc.), a bare ``yield`` or a ``yield`` of a literal is a latent crash:
    the kernel requires Event instances.

SL004  acquire without release-on-all-paths
    A ``.request()``/``.allocate()`` whose enclosing function neither uses
    a ``with`` block nor contains a ``try/finally`` releasing the claim.
    Cross-process acquire/release protocols are legitimate but must be
    baselined explicitly.

SL005  iteration over an unordered set
    ``for x in set(...)`` / set literals / set comprehensions. Set order
    is hash-randomized across interpreters; feeding it into scheduling or
    event-ordering decisions breaks run-to-run reproducibility. Wrap in
    ``sorted(...)``.

SL006  float equality on sim time
    ``==``/``!=`` against ``now``. Sim timestamps are accumulated floats;
    use :func:`repro.sim.time_eq` with an explicit epsilon.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["Finding", "Rule", "RULES", "lint_source"]


@dataclass(frozen=True)
class Finding:
    """One lint finding, printable and baseline-matchable."""

    code: str
    path: str
    line: int
    col: int
    message: str
    #: The stripped source line — the baseline key, stable across
    #: line-number drift.
    snippet: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code, "path": self.path, "line": self.line,
            "col": self.col, "message": self.message, "snippet": self.snippet,
        }


@dataclass(frozen=True)
class Rule:
    code: str
    summary: str
    check: Callable[["_Module"], list]


# -- module model ----------------------------------------------------------

#: Stdlib-random constructors that are fine when seeded at function scope.
_SEEDED_CTORS = {
    "random.Random", "random.SystemRandom",
    "numpy.random.default_rng", "numpy.random.RandomState",
    "numpy.random.Generator",
}

_WALLCLOCK = {
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Canonical roots for from-imports we resolve (name -> dotted prefix).
_FROM_IMPORT_ROOTS = {
    "numpy": "numpy",
    "numpy.random": "numpy.random",
    "random": "random",
    "time": "time",
    "datetime": "datetime",
}

#: Attribute names whose call marks a generator as a sim process.
_EVENT_FACTORIES = {
    "timeout", "process", "event", "request", "all_of", "any_of",
    "invoke", "get", "put", "acquire", "succeed", "fail",
}

#: Constructors of kernel events, when instantiated directly.
_EVENT_CLASSES = {"Timeout", "Event", "Process", "AllOf", "AnyOf", "Request"}

_DISABLE_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\s]+)")
_CODE_RE = re.compile(r"SL\d{3}|all")


class _Module:
    """A parsed module plus the derived indexes the rules share."""

    def __init__(self, tree: ast.Module, source: str, path: str):
        self.tree = tree
        self.path = path
        self.lines = source.splitlines()
        self.parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        self.aliases = self._collect_aliases()

    # -- imports -----------------------------------------------------------
    def _collect_aliases(self) -> dict[str, str]:
        """Names bound by imports -> canonical dotted prefix."""
        aliases: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.name in _FROM_IMPORT_ROOTS or a.name == "numpy.random":
                        aliases[a.asname or a.name.split(".")[0]] = (
                            a.name if a.asname else a.name.split(".")[0])
                    # `import numpy.random` binds the top-level name.
                    if a.name == "numpy.random" and a.asname is None:
                        aliases["numpy"] = "numpy"
            elif isinstance(node, ast.ImportFrom) and node.module:
                base = _FROM_IMPORT_ROOTS.get(node.module)
                if base is None:
                    continue
                for a in node.names:
                    aliases[a.asname or a.name] = f"{base}.{a.name}"
        return aliases

    def canonical(self, func: ast.expr) -> Optional[str]:
        """Resolve a call's func to a canonical dotted name, if importable."""
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        return ".".join([root] + list(reversed(parts)))

    # -- structure ---------------------------------------------------------
    def ancestors(self, node: ast.AST):
        cur = self.parents.get(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(cur)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
                return anc
        return None

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, code: str, node: ast.AST, message: str) -> Finding:
        return Finding(code=code, path=self.path, line=node.lineno,
                       col=node.col_offset, message=message,
                       snippet=self.snippet(node.lineno))

    def suppressed(self, finding: Finding) -> bool:
        """Honor ``# simlint: disable=SL00x[,SL00y]`` on the flagged line."""
        if not 1 <= finding.line <= len(self.lines):
            return False
        match = _DISABLE_RE.search(self.lines[finding.line - 1])
        if not match:
            return False
        codes = set(_CODE_RE.findall(match.group(1)))
        return finding.code in codes or "all" in codes


# -- SL001: nondeterministic RNG -------------------------------------------

def _check_sl001(mod: _Module) -> list[Finding]:
    out = []
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Call):
            continue
        name = mod.canonical(node.func)
        if name is None:
            continue
        in_function = mod.enclosing_function(node) is not None
        if name == "numpy.random.default_rng" and not node.args and not any(
                kw.arg == "seed" for kw in node.keywords):
            out.append(mod.finding(
                "SL001", node,
                "unseeded default_rng() — derive a stream from "
                "RandomStreams(seed).get(name) instead"))
        elif name in _SEEDED_CTORS:
            if not in_function:
                out.append(mod.finding(
                    "SL001", node,
                    f"module-level RNG construction ({name}) runs at import "
                    "time; create it inside the scenario from RandomStreams"))
        elif name.startswith("random.") or name.startswith("numpy.random."):
            where = "" if in_function else "module-level "
            out.append(mod.finding(
                "SL001", node,
                f"{where}call through global RNG state ({name}); use a "
                "named RandomStreams stream"))
    return out


# -- SL002: wall clock ------------------------------------------------------

def _check_sl002(mod: _Module) -> list[Finding]:
    out = []
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Call):
            name = mod.canonical(node.func)
            if name in _WALLCLOCK:
                out.append(mod.finding(
                    "SL002", node,
                    f"wall-clock read ({name}) in sim code; simulated time "
                    "is env.now"))
    return out


# -- SL003: non-event yields in sim processes -------------------------------

def _is_event_yield(value: Optional[ast.expr]) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute) and func.attr in _EVENT_FACTORIES:
        return True
    if isinstance(func, ast.Name) and func.id in _EVENT_CLASSES:
        return True
    return False


def _check_sl003(mod: _Module) -> list[Finding]:
    out = []
    for fn in ast.walk(mod.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yields = [n for n in ast.walk(fn)
                  if isinstance(n, ast.Yield)
                  and mod.enclosing_function(n) is fn]
        if not any(_is_event_yield(y.value) for y in yields):
            continue  # not recognizably a sim process
        for y in yields:
            if y.value is None:
                out.append(mod.finding(
                    "SL003", y,
                    "bare yield in a sim process; the kernel requires an "
                    "Event (yield env.timeout(0) to cede the turn)"))
            elif isinstance(y.value, (ast.Constant, ast.List, ast.Tuple,
                                      ast.Dict, ast.Set, ast.ListComp,
                                      ast.SetComp, ast.DictComp)):
                out.append(mod.finding(
                    "SL003", y,
                    "yield of a non-Event literal in a sim process; yield "
                    "Timeout/Process/Request or another Event"))
    return out


# -- SL004: acquire without release-on-all-paths ----------------------------

_ACQUIRES = {"request", "allocate"}
_RELEASES = {"release", "cancel"}


def _finally_releases(try_node: ast.Try) -> bool:
    for stmt in try_node.finalbody:
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _RELEASES):
                return True
    return False


def _check_sl004(mod: _Module) -> list[Finding]:
    out = []
    for node in ast.walk(mod.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ACQUIRES):
            continue
        if any(isinstance(anc, ast.withitem) for anc in mod.ancestors(node)):
            continue  # context manager: released by __exit__
        fn = mod.enclosing_function(node)
        if fn is not None and any(
                isinstance(n, ast.Try) and _finally_releases(n)
                for n in ast.walk(fn)):
            continue  # try/finally release in the same function
        out.append(mod.finding(
            "SL004", node,
            f".{node.func.attr}() without a with-block or try/finally "
            "release in the same function; a failure path leaks the claim "
            "(baseline cross-process protocols explicitly)"))
    return out


# -- SL005: iteration over unordered sets -----------------------------------

def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


def _check_sl005(mod: _Module) -> list[Finding]:
    out = []
    for node in ast.walk(mod.tree):
        iters = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _is_set_expr(it):
                out.append(mod.finding(
                    "SL005", it,
                    "iteration over an unordered set; wrap in sorted(...) "
                    "so downstream scheduling/event order is reproducible"))
    return out


# -- SL006: float equality on sim time --------------------------------------

def _is_sim_time(node: ast.expr) -> bool:
    return ((isinstance(node, ast.Attribute) and node.attr == "now")
            or (isinstance(node, ast.Name) and node.id == "now"))


def _check_sl006(mod: _Module) -> list[Finding]:
    out = []
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left] + list(node.comparators)
        eq_ops = [op for op in node.ops if isinstance(op, (ast.Eq, ast.NotEq))]
        if eq_ops and any(_is_sim_time(o) for o in operands):
            out.append(mod.finding(
                "SL006", node,
                "float ==/!= against sim time; use repro.sim.time_eq(a, b) "
                "with an explicit epsilon"))
    return out


RULES: list[Rule] = [
    Rule("SL001", "global/unseeded RNG use", _check_sl001),
    Rule("SL002", "wall-clock read in sim code", _check_sl002),
    Rule("SL003", "non-event yield in a sim process", _check_sl003),
    Rule("SL004", "resource acquire without guaranteed release", _check_sl004),
    Rule("SL005", "iteration over an unordered set", _check_sl005),
    Rule("SL006", "float equality on sim time", _check_sl006),
]


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one module's source, honoring inline suppressions."""
    tree = ast.parse(source, filename=path)
    mod = _Module(tree, source, path)
    findings: list[Finding] = []
    for rule in RULES:
        findings.extend(f for f in rule.check(mod) if not mod.suppressed(f))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings
