"""simlint driver: walk files, apply the rules, report, gate CI.

Usage::

    python -m repro.analysis.lint src/ [--format=text|json]
        [--baseline .simlint-baseline] [--no-baseline] [--write-baseline]
        [--rules SL007,SL008] [--prune-baseline]

Every run applies both the per-file rules (SL001–SL006) and the
whole-program rules (SL007–SL010 plus the interprocedural SL001 flow
pass): the linted files are parsed once into a project call graph, so a
single file is simply a one-module project.

Exit codes: 0 clean (modulo baseline), 1 findings, 2 usage/parse error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Iterable, Optional

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.graph import build_project
from repro.analysis.project_rules import PROJECT_RULES, run_project_rules
from repro.analysis.rules import RULES, Finding, lint_source

__all__ = ["lint_file", "lint_paths", "lint_sources", "main"]


def _iter_py_files(path: str):
    if os.path.isfile(path):
        yield path
        return
    for dirpath, dirnames, filenames in os.walk(path):
        dirnames[:] = sorted(d for d in dirnames
                             if not d.startswith(".") and d != "__pycache__")
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def _rel(path: str, root: Optional[str]) -> str:
    base = root or os.getcwd()
    try:
        rel = os.path.relpath(path, base)
    except ValueError:  # different drive (windows)
        rel = path
    if rel.startswith(".."):
        rel = path
    return rel.replace(os.sep, "/")


def lint_sources(sources: dict[str, str]) -> list[Finding]:
    """Lint ``{path: source}``: per-file rules plus the project pass."""
    findings: list[Finding] = []
    for path, source in sorted(sources.items()):
        findings.extend(lint_source(source, path=path))
    project = build_project(sources)
    findings.extend(run_project_rules(project))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_file(path: str, root: Optional[str] = None) -> list[Finding]:
    """Lint one file; paths in findings are relative to ``root`` (or cwd)."""
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    return lint_sources({_rel(path, root): source})


def lint_paths(paths: Iterable[str],
               root: Optional[str] = None) -> list[Finding]:
    """Lint files and directory trees; returns all findings, sorted."""
    sources: dict[str, str] = {}
    for path in paths:
        if not os.path.exists(path):
            raise FileNotFoundError(path)
        for file_path in _iter_py_files(path):
            with open(file_path, encoding="utf-8") as fh:
                sources[_rel(file_path, root)] = fh.read()
    return lint_sources(sources)


def _rule_catalog() -> dict[str, str]:
    catalog = {r.code: r.summary for r in RULES}
    for r in PROJECT_RULES:
        catalog.setdefault(r.code, r.summary)
    return catalog


def _known_codes() -> set[str]:
    return {r.code for r in RULES} | {r.code for r in PROJECT_RULES}


def _render_text(new: list[Finding], known: list[Finding]) -> str:
    lines = [f.format() for f in new]
    summary = (f"{len(new)} finding(s)"
               + (f", {len(known)} baselined" if known else ""))
    if new:
        lines.append(summary)
    else:
        lines.append(f"clean: {summary}")
    return "\n".join(lines)


def _render_json(new: list[Finding], known: list[Finding]) -> str:
    return json.dumps({
        "findings": [f.to_dict() for f in new],
        "baselined": [f.to_dict() for f in known],
        "count": len(new),
        "rules": _rule_catalog(),
    }, indent=2)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="simlint: determinism, shard-safety, layering and "
                    "perf checks for the sim kernel and its domains.")
    parser.add_argument("paths", nargs="+", help="files or directories")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE_NAME,
                        help="baseline file (default: %(default)s)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report baselined findings as failures too")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept all current findings into the baseline")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="drop baseline entries that no longer match "
                             "any finding, rewrite the file, and report "
                             "what was pruned")
    parser.add_argument("--rules", default=None, metavar="CODES",
                        help="comma-separated rule codes to report "
                             "(e.g. SL007,SL008); default: all")
    args = parser.parse_args(argv)

    selected: Optional[set[str]] = None
    if args.rules:
        selected = {c.strip().upper() for c in args.rules.split(",")
                    if c.strip()}
        unknown = selected - _known_codes()
        if unknown:
            print(f"simlint: unknown rule code(s): "
                  f"{', '.join(sorted(unknown))}", file=sys.stderr)
            return 2

    # Anchor finding paths to the baseline's directory, so entries match
    # no matter which cwd the linter is invoked from.
    root = os.path.dirname(os.path.abspath(args.baseline))
    try:
        findings = lint_paths(args.paths, root=root)
    except FileNotFoundError as err:
        print(f"simlint: no such path: {err}", file=sys.stderr)
        return 2
    except SyntaxError as err:
        print(f"simlint: cannot parse {err.filename}:{err.lineno}: {err.msg}",
              file=sys.stderr)
        return 2

    if selected is not None:
        findings = [f for f in findings if f.code in selected]

    if args.prune_baseline:
        baseline = Baseline.load_if_exists(args.baseline)
        live = {(f.code, f.path, f.snippet) for f in findings}
        stale = sorted(baseline.entries - live)
        if stale:
            # Only rewrite when something actually goes: hand-written
            # comments in the file survive a clean audit.
            baseline.entries &= live
            baseline.write(args.baseline, [
                Finding(code=c, path=p, line=0, col=0, message="", snippet=s)
                for c, p, s in sorted(baseline.entries)])
        for code, path, snippet in stale:
            print(f"pruned: {code}\t{path}\t{snippet}")
        print(f"pruned {len(stale)} stale entr(y/ies); "
              f"{len(baseline.entries)} kept in {args.baseline}")
        return 0

    if args.write_baseline:
        Baseline().write(args.baseline, findings)
        print(f"wrote {len(findings)} entr(y/ies) to {args.baseline}")
        return 0

    baseline = (Baseline() if args.no_baseline
                else Baseline.load_if_exists(args.baseline))
    new, known = baseline.split(findings)
    render = _render_json if args.format == "json" else _render_text
    print(render(new, known))
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
