"""Domain workload generators for the Table 9 grid.

Table 9's portfolio-scheduling studies span workloads labelled Syn
(synthetic), Sci (scientific), Sci+Gam, CE (computer engineering), BC
(business-critical), Ind (industrial IoT analytics), and BD (big data).
Each domain gets a parameterized generator with the distributional
signature the corresponding study describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.workload.arrivals import PoissonArrivals
from repro.workload.task import BagOfTasks, MapReduceJob, Task, Workflow


@dataclass(frozen=True)
class WorkloadSpec:
    """Distributional parameters of one workload domain."""

    name: str
    #: Mean tasks per bag (BoT size); 1 means single-task jobs.
    mean_bag_size: float
    #: Lognormal sigma of task work (heavier tail = more variable runtimes).
    work_sigma: float
    #: Mean work per task, in work units (seconds on a speed-1 machine).
    mean_work: float
    #: Probability a job is a workflow rather than a bag.
    workflow_fraction: float
    #: Mean arrival rate, jobs per second.
    arrival_rate: float
    #: Runtime-estimate error factor (1.0 = perfect estimates).
    estimate_error: float = 1.0


#: The seven workload domains of Table 9.
WORKLOAD_DOMAINS: dict[str, WorkloadSpec] = {
    # Synthetic: moderate, controlled variability [114].
    "synthetic": WorkloadSpec("synthetic", mean_bag_size=8, work_sigma=0.5,
                              mean_work=120.0, workflow_fraction=0.0,
                              arrival_rate=1 / 60.0),
    # Scientific: heavy-tailed runtimes, many workflows [115].
    "scientific": WorkloadSpec("scientific", mean_bag_size=20, work_sigma=1.2,
                               mean_work=600.0, workflow_fraction=0.4,
                               arrival_rate=1 / 120.0, estimate_error=2.0),
    # Gaming: short, latency-sensitive tasks in large bursts [116].
    "gaming": WorkloadSpec("gaming", mean_bag_size=4, work_sigma=0.4,
                           mean_work=15.0, workflow_fraction=0.0,
                           arrival_rate=1 / 5.0),
    # Computer-engineering (Intel compute farm style): huge bags of short
    # regression jobs [117].
    "computer-engineering": WorkloadSpec(
        "computer-engineering", mean_bag_size=60, work_sigma=0.8,
        mean_work=90.0, workflow_fraction=0.1, arrival_rate=1 / 300.0),
    # Business-critical: long-running, low-variability services [118].
    "business-critical": WorkloadSpec(
        "business-critical", mean_bag_size=2, work_sigma=0.3,
        mean_work=3600.0, workflow_fraction=0.1, arrival_rate=1 / 600.0),
    # Industrial IoT analytics: periodic workflows [119].
    "industrial": WorkloadSpec("industrial", mean_bag_size=6, work_sigma=0.6,
                               mean_work=240.0, workflow_fraction=0.7,
                               arrival_rate=1 / 180.0),
    # Big data: MapReduce-style jobs with hard-to-predict runtimes [120].
    "bigdata": WorkloadSpec("bigdata", mean_bag_size=30, work_sigma=1.5,
                            mean_work=300.0, workflow_fraction=1.0,
                            arrival_rate=1 / 240.0, estimate_error=4.0),
}


def _lognormal_work(rng: np.random.Generator, mean: float,
                    sigma: float) -> float:
    """Lognormal sample with the requested arithmetic mean."""
    mu = np.log(mean) - sigma**2 / 2
    return float(rng.lognormal(mu, sigma))


def generate_bot_workload(rng: np.random.Generator, n_jobs: int,
                          spec: Optional[WorkloadSpec] = None,
                          horizon_s: float = 86400.0) -> list[BagOfTasks]:
    """A list of bags-of-tasks with Poisson arrivals over ``horizon_s``."""
    spec = spec or WORKLOAD_DOMAINS["synthetic"]
    arrivals = PoissonArrivals(spec.arrival_rate, rng)
    bags = []
    for arrival in arrivals.times(horizon_s):
        if len(bags) >= n_jobs:
            break
        size = max(1, int(rng.poisson(spec.mean_bag_size)))
        tasks = []
        for _ in range(size):
            work = _lognormal_work(rng, spec.mean_work, spec.work_sigma)
            task = Task(work=work)
            task.runtime_estimate = work * float(
                rng.uniform(1.0, spec.estimate_error))
            tasks.append(task)
        bags.append(BagOfTasks(tasks, submit_time=arrival))
    return bags


def generate_workflow(rng: np.random.Generator,
                      n_tasks: int = 20,
                      mean_work: float = 100.0,
                      work_sigma: float = 0.8,
                      shape: str = "random",
                      submit_time: float = 0.0,
                      name: str = "wf") -> Workflow:
    """One workflow DAG of a given shape.

    Shapes: ``chain`` (sequential), ``fork-join`` (one fan-out stage),
    ``random`` (layered random DAG — the common scientific-workflow shape).
    """
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    tasks = [
        Task(work=_lognormal_work(rng, mean_work, work_sigma))
        for _ in range(n_tasks)
    ]
    edges: list[tuple[int, int]] = []
    if shape == "chain":
        edges = [(tasks[i].task_id, tasks[i + 1].task_id)
                 for i in range(n_tasks - 1)]
    elif shape == "fork-join":
        if n_tasks >= 3:
            head, tail = tasks[0], tasks[-1]
            for middle in tasks[1:-1]:
                edges.append((head.task_id, middle.task_id))
                edges.append((middle.task_id, tail.task_id))
    elif shape == "random":
        # Layered DAG: assign each task a level, wire to 1-3 previous-level
        # tasks.
        n_levels = max(2, int(np.ceil(np.sqrt(n_tasks))))
        levels: list[list[Task]] = [[] for _ in range(n_levels)]
        for idx, task in enumerate(tasks):
            levels[min(idx * n_levels // n_tasks, n_levels - 1)].append(task)
        for lvl in range(1, n_levels):
            prev = levels[lvl - 1]
            if not prev:
                continue
            for task in levels[lvl]:
                n_parents = min(len(prev), int(rng.integers(1, 4)))
                parent_idx = rng.choice(len(prev), size=n_parents,
                                        replace=False)
                for p in parent_idx:
                    edges.append((prev[int(p)].task_id, task.task_id))
    else:
        raise ValueError(f"unknown workflow shape {shape!r}")
    for task in tasks:
        task.runtime_estimate = task.work
    return Workflow(tasks, edges, submit_time=submit_time, name=name)


def generate_workflow_workload(rng: np.random.Generator, n_workflows: int,
                               spec: Optional[WorkloadSpec] = None,
                               horizon_s: float = 86400.0) -> list[Workflow]:
    """A stream of workflows with Poisson arrivals."""
    spec = spec or WORKLOAD_DOMAINS["scientific"]
    arrivals = PoissonArrivals(spec.arrival_rate, rng)
    workflows = []
    shapes = ["random", "chain", "fork-join"]
    for arrival in arrivals.times(horizon_s):
        if len(workflows) >= n_workflows:
            break
        n_tasks = max(2, int(rng.poisson(spec.mean_bag_size)))
        shape = shapes[int(rng.integers(0, len(shapes)))]
        workflows.append(generate_workflow(
            rng, n_tasks=n_tasks, mean_work=spec.mean_work,
            work_sigma=spec.work_sigma, shape=shape, submit_time=arrival,
            name=f"{spec.name}-wf{len(workflows)}"))
    return workflows


def generate_domain_workload(rng: np.random.Generator, domain: str,
                             n_jobs: int = 50,
                             horizon_s: float = 86400.0) -> list:
    """Mixed workload for a Table 9 domain: bags, workflows, MapReduce."""
    if domain not in WORKLOAD_DOMAINS:
        raise KeyError(
            f"unknown domain {domain!r}; known: {sorted(WORKLOAD_DOMAINS)}")
    spec = WORKLOAD_DOMAINS[domain]
    arrivals = PoissonArrivals(spec.arrival_rate, rng)
    jobs: list = []
    for arrival in arrivals.times(horizon_s):
        if len(jobs) >= n_jobs:
            break
        if rng.random() < spec.workflow_fraction:
            if domain == "bigdata":
                n_maps = max(1, int(rng.poisson(spec.mean_bag_size)))
                n_reduces = max(1, n_maps // 4)
                job = MapReduceJob(
                    n_maps, n_reduces,
                    map_work=_lognormal_work(rng, spec.mean_work / 4,
                                             spec.work_sigma),
                    reduce_work=_lognormal_work(rng, spec.mean_work,
                                                spec.work_sigma),
                    submit_time=arrival, name=f"mr{len(jobs)}")
                for task in job.tasks:
                    task.runtime_estimate = task.work * float(
                        rng.uniform(1.0, spec.estimate_error))
            else:
                job = generate_workflow(
                    rng, n_tasks=max(2, int(rng.poisson(spec.mean_bag_size))),
                    mean_work=spec.mean_work, work_sigma=spec.work_sigma,
                    submit_time=arrival, name=f"{domain}-wf{len(jobs)}")
        else:
            size = max(1, int(rng.poisson(spec.mean_bag_size)))
            tasks = []
            for _ in range(size):
                work = _lognormal_work(rng, spec.mean_work, spec.work_sigma)
                task = Task(work=work)
                task.runtime_estimate = work * float(
                    rng.uniform(1.0, spec.estimate_error))
                tasks.append(task)
            job = BagOfTasks(tasks, submit_time=arrival)
        jobs.append(job)
    return jobs
