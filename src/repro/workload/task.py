"""Tasks, bags-of-tasks, workflows (DAGs), and MapReduce jobs."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import Iterable, Optional

import networkx as nx

_task_ids = count()


class TaskState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Task:
    """One schedulable unit of computation.

    ``work`` is in normalized work units; a machine of speed ``s`` runs it
    in ``work / s`` seconds.
    """

    work: float
    cores: int = 1
    memory_gb: float = 1.0
    submit_time: float = 0.0
    task_id: int = field(default_factory=lambda: next(_task_ids))
    job_id: Optional[int] = None
    user: str = "default"
    state: TaskState = TaskState.PENDING
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    #: Estimated runtime available to predictive schedulers; may be wrong.
    runtime_estimate: Optional[float] = None

    def __post_init__(self) -> None:
        if self.work <= 0:
            raise ValueError("task work must be positive")
        if self.cores <= 0:
            raise ValueError("task cores must be positive")

    @property
    def wait_time(self) -> Optional[float]:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def response_time(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    @property
    def runtime(self) -> Optional[float]:
        if self.finish_time is None or self.start_time is None:
            return None
        return self.finish_time - self.start_time

    def slowdown(self, reference_runtime: float) -> Optional[float]:
        """Bounded slowdown: response time over (reference) runtime."""
        if self.response_time is None:
            return None
        return self.response_time / max(reference_runtime, 1e-9)


_job_ids = count()


@dataclass
class BagOfTasks:
    """A bag of independent tasks submitted together (BoT workloads)."""

    tasks: list[Task]
    submit_time: float = 0.0
    job_id: int = field(default_factory=lambda: next(_job_ids))
    user: str = "default"

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("a bag of tasks needs at least one task")
        for task in self.tasks:
            task.job_id = self.job_id
            task.submit_time = self.submit_time
            task.user = self.user

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def total_work(self) -> float:
        return sum(t.work for t in self.tasks)

    @property
    def done(self) -> bool:
        return all(t.state is TaskState.DONE for t in self.tasks)

    @property
    def makespan(self) -> Optional[float]:
        if not self.done:
            return None
        return max(t.finish_time for t in self.tasks) - self.submit_time


class Workflow:
    """A DAG of tasks with precedence constraints.

    Built on :mod:`networkx`; node payloads are :class:`Task` objects.
    """

    def __init__(self, tasks: Iterable[Task],
                 edges: Iterable[tuple[int, int]],
                 submit_time: float = 0.0,
                 name: str = "wf",
                 deadline: Optional[float] = None):
        self.name = name
        self.submit_time = submit_time
        self.deadline = deadline
        self.job_id = next(_job_ids)
        self.graph = nx.DiGraph()
        self._tasks: dict[int, Task] = {}
        for task in tasks:
            task.job_id = self.job_id
            task.submit_time = submit_time
            self.graph.add_node(task.task_id)
            self._tasks[task.task_id] = task
        for src, dst in edges:
            if src not in self._tasks or dst not in self._tasks:
                raise ValueError(f"edge ({src}, {dst}) references unknown task")
            self.graph.add_edge(src, dst)
        if not nx.is_directed_acyclic_graph(self.graph):
            raise ValueError(f"workflow {name}: precedence graph has a cycle")

    def __len__(self) -> int:
        return len(self._tasks)

    def __repr__(self) -> str:
        return (f"<Workflow {self.name}: {len(self)} tasks, "
                f"{self.graph.number_of_edges()} edges>")

    @property
    def tasks(self) -> list[Task]:
        return list(self._tasks.values())

    def task(self, task_id: int) -> Task:
        return self._tasks[task_id]

    def predecessors(self, task: Task) -> list[Task]:
        return [self._tasks[t] for t in self.graph.predecessors(task.task_id)]

    def successors(self, task: Task) -> list[Task]:
        return [self._tasks[t] for t in self.graph.successors(task.task_id)]

    def ready_tasks(self) -> list[Task]:
        """Pending tasks whose predecessors have all finished."""
        ready = []
        for task in self._tasks.values():
            if task.state is not TaskState.PENDING:
                continue
            if all(p.state is TaskState.DONE for p in self.predecessors(task)):
                ready.append(task)
        return ready

    @property
    def done(self) -> bool:
        return all(t.state is TaskState.DONE for t in self._tasks.values())

    @property
    def makespan(self) -> Optional[float]:
        if not self.done:
            return None
        return max(t.finish_time for t in self._tasks.values()) - self.submit_time

    def critical_path_work(self) -> float:
        """Total work along the heaviest path (a makespan lower bound)."""
        best: dict[int, float] = {}
        for node in nx.topological_sort(self.graph):
            work = self._tasks[node].work
            preds = list(self.graph.predecessors(node))
            best[node] = work + (max(best[p] for p in preds) if preds else 0.0)
        return max(best.values()) if best else 0.0

    def level_of(self, task: Task) -> int:
        """Depth of the task in the DAG (roots are level 0)."""
        preds = self.predecessors(task)
        if not preds:
            return 0
        return 1 + max(self.level_of(p) for p in preds)

    def levels(self) -> dict[int, list[Task]]:
        """Tasks grouped by DAG level (used by level-aware autoscalers)."""
        result: dict[int, list[Task]] = {}
        depth: dict[int, int] = {}
        for node in nx.topological_sort(self.graph):
            preds = list(self.graph.predecessors(node))
            depth[node] = 1 + max((depth[p] for p in preds), default=-1)
            result.setdefault(depth[node], []).append(self._tasks[node])
        return result


class MapReduceJob(Workflow):
    """A two-phase MapReduce job as a workflow: maps then reduces.

    Every reduce depends on every map (the shuffle barrier).
    """

    def __init__(self, n_maps: int, n_reduces: int,
                 map_work: float = 10.0, reduce_work: float = 20.0,
                 submit_time: float = 0.0, name: str = "mr"):
        if n_maps <= 0 or n_reduces <= 0:
            raise ValueError("need at least one map and one reduce task")
        maps = [Task(work=map_work) for _ in range(n_maps)]
        reduces = [Task(work=reduce_work) for _ in range(n_reduces)]
        edges = [(m.task_id, r.task_id) for m in maps for r in reduces]
        super().__init__(maps + reduces, edges, submit_time=submit_time,
                         name=name)
        self.map_tasks = maps
        self.reduce_tasks = reduces
