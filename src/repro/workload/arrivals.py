"""Arrival processes: Poisson, diurnal, flashcrowd, and trace-driven.

The paper debunks Poisson-arrival assumptions for P2P ecosystems (§6.1,
Pouwelse et al. follow-ups) and designs a flashcrowd model [66]; all the
alternatives live here so experiments can contrast them.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional, Sequence

import numpy as np


class ArrivalProcess:
    """Base class: iterate to get successive absolute arrival times."""

    def times(self, horizon: float) -> Iterator[float]:
        """Yield arrival times strictly below ``horizon``, increasing."""
        raise NotImplementedError

    def count(self, horizon: float) -> int:
        return sum(1 for _ in self.times(horizon))


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson process with the given rate (arrivals/second)."""

    def __init__(self, rate: float, rng: np.random.Generator,
                 start: float = 0.0):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.rng = rng
        self.start = start

    def times(self, horizon: float) -> Iterator[float]:
        t = self.start
        while True:
            t += float(self.rng.exponential(1.0 / self.rate))
            if t >= horizon:
                return
            yield t


class DiurnalArrivals(ArrivalProcess):
    """Non-homogeneous Poisson with a sinusoidal day/night rate.

    Rate at time ``t`` is ``base * (1 + amplitude * sin(2π t / period))``,
    clipped at a small positive floor. MMOG player arrivals (§6.2) follow
    this shape.
    """

    def __init__(self, base_rate: float, rng: np.random.Generator,
                 amplitude: float = 0.8, period_s: float = 86400.0,
                 phase: float = 0.0, start: float = 0.0):
        if base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if not 0 <= amplitude <= 1:
            raise ValueError("amplitude must lie in [0, 1]")
        self.base_rate = base_rate
        self.amplitude = amplitude
        self.period_s = period_s
        self.phase = phase
        self.rng = rng
        self.start = start

    def rate_at(self, t: float) -> float:
        modulation = 1.0 + self.amplitude * math.sin(
            2 * math.pi * t / self.period_s + self.phase)
        return max(self.base_rate * modulation, self.base_rate * 1e-3)

    def times(self, horizon: float) -> Iterator[float]:
        # Thinning (Lewis-Shedler): sample at the max rate, accept w.p.
        # rate(t)/max_rate.
        max_rate = self.base_rate * (1 + self.amplitude)
        t = self.start
        while True:
            t += float(self.rng.exponential(1.0 / max_rate))
            if t >= horizon:
                return
            if self.rng.random() <= self.rate_at(t) / max_rate:
                yield t


class FlashcrowdArrivals(ArrivalProcess):
    """A baseline Poisson process with superimposed flashcrowd bursts.

    Each flashcrowd multiplies the rate by ``burst_factor`` with an
    exponential decay — the shape identified for BitTorrent flashcrowds
    in the paper's [66].
    """

    def __init__(self, base_rate: float, rng: np.random.Generator,
                 burst_times: Sequence[float] = (),
                 burst_factor: float = 50.0,
                 burst_decay_s: float = 1800.0,
                 start: float = 0.0):
        if base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if burst_factor < 1:
            raise ValueError("burst_factor must be >= 1")
        self.base_rate = base_rate
        self.rng = rng
        self.burst_times = sorted(burst_times)
        self.burst_factor = burst_factor
        self.burst_decay_s = burst_decay_s
        self.start = start

    def rate_at(self, t: float) -> float:
        rate = self.base_rate
        for burst_at in self.burst_times:
            if t >= burst_at:
                boost = (self.burst_factor - 1) * math.exp(
                    -(t - burst_at) / self.burst_decay_s)
                rate += self.base_rate * boost
        return rate

    def times(self, horizon: float) -> Iterator[float]:
        max_rate = self.base_rate * self.burst_factor * (
            1 + max(0, len(self.burst_times) - 1) * 0.5)
        t = self.start
        while True:
            t += float(self.rng.exponential(1.0 / max_rate))
            if t >= horizon:
                return
            if self.rng.random() <= self.rate_at(t) / max_rate:
                yield t

    def is_flashcrowd_at(self, t: float, threshold: float = 5.0) -> bool:
        """Flashcrowd detector: instantaneous rate above threshold×base."""
        return self.rate_at(t) >= threshold * self.base_rate


class TraceArrivals(ArrivalProcess):
    """Replays a recorded list of arrival times (trace-driven experiments)."""

    def __init__(self, arrival_times: Sequence[float]):
        self.arrival_times = sorted(float(t) for t in arrival_times)

    def times(self, horizon: float) -> Iterator[float]:
        for t in self.arrival_times:
            if t >= horizon:
                return
            yield t


def interarrival_cv(times: Sequence[float]) -> float:
    """Coefficient of variation of inter-arrival times.

    CV ≈ 1 for Poisson; CV >> 1 indicates burstiness (the flashcrowd
    signature the paper's P2P measurements found).
    """
    arr = np.asarray(sorted(times), dtype=float)
    if arr.size < 3:
        return float("nan")
    gaps = np.diff(arr)
    mean = gaps.mean()
    if mean == 0:
        return float("inf")
    return float(gaps.std(ddof=1) / mean)
