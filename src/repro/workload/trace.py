"""The Trace Archive: FAIR sharing of workload and operational traces.

Reproduces the paper's dissemination artifacts — the Peer-to-Peer Trace
Archive [64] and the Game Trace Archive [83] — as one JSON-lines format
with explicit metadata, so experiments can exchange traces between the
simulation domains ("one of the key contributions a team can make ...
is sharing workload and operational traces in a FAIR and/or FOAD archive",
§6.2).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional, Union


@dataclass
class TraceRecord:
    """One event of a trace: (time, kind, entity, attributes)."""

    time: float
    kind: str
    entity: str = ""
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "TraceRecord":
        data = json.loads(line)
        return cls(time=float(data["time"]), kind=data["kind"],
                   entity=data.get("entity", ""),
                   attributes=data.get("attributes", {}))


class TraceArchive:
    """A named collection of trace records with FAIR metadata.

    Metadata follows the archive papers' schema: domain, source system,
    collection instrument, time range, and free-form provenance notes.
    """

    FORMAT_VERSION = 1

    def __init__(self, name: str, domain: str,
                 instrument: str = "simulation",
                 provenance: str = "",
                 metadata: Optional[dict[str, Any]] = None):
        self.name = name
        self.domain = domain
        self.instrument = instrument
        self.provenance = provenance
        self.metadata = dict(metadata or {})
        self.records: list[TraceRecord] = []

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def add(self, time: float, kind: str, entity: str = "",
            **attributes: Any) -> TraceRecord:
        record = TraceRecord(time=float(time), kind=kind, entity=entity,
                             attributes=attributes)
        self.records.append(record)
        return record

    def extend(self, records: Iterable[TraceRecord]) -> None:
        self.records.extend(records)

    # -- queries -------------------------------------------------------------
    def of_kind(self, kind: str) -> list[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def kinds(self) -> set[str]:
        return {r.kind for r in self.records}

    def time_range(self) -> tuple[float, float]:
        if not self.records:
            raise ValueError("empty trace")
        times = [r.time for r in self.records]
        return min(times), max(times)

    def window(self, start: float, stop: float) -> list[TraceRecord]:
        return [r for r in self.records if start <= r.time < stop]

    # -- persistence -----------------------------------------------------------
    def header(self) -> dict[str, Any]:
        return {
            "format_version": self.FORMAT_VERSION,
            "name": self.name,
            "domain": self.domain,
            "instrument": self.instrument,
            "provenance": self.provenance,
            "metadata": self.metadata,
            "n_records": len(self.records),
        }

    def save(self, path: Union[str, Path]) -> Path:
        """Write header line + one JSON record per line."""
        path = Path(path)
        with path.open("w") as fh:
            fh.write(json.dumps(self.header(), sort_keys=True) + "\n")
            for record in sorted(self.records, key=lambda r: r.time):
                fh.write(record.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TraceArchive":
        path = Path(path)
        with path.open() as fh:
            header = json.loads(fh.readline())
            if header.get("format_version") != cls.FORMAT_VERSION:
                raise ValueError(
                    f"unsupported trace format {header.get('format_version')}")
            archive = cls(
                name=header["name"], domain=header["domain"],
                instrument=header.get("instrument", "unknown"),
                provenance=header.get("provenance", ""),
                metadata=header.get("metadata", {}))
            for line in fh:
                line = line.strip()
                if line:
                    archive.records.append(TraceRecord.from_json(line))
        if len(archive.records) != header.get("n_records", len(archive.records)):
            raise ValueError(
                f"trace {path} truncated: header says "
                f"{header['n_records']} records, found {len(archive.records)}")
        return archive
