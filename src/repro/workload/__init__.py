"""Workload models: tasks, bags-of-tasks, workflows, and arrival processes.

The paper's scheduling and autoscaling experiments span bag-of-task (BoT)
and workflow workloads from many domains (Table 9). This package provides
those models, the arrival processes that drive them (including flashcrowds,
§6.1), and the Trace Archive format (§3.6's FAIR/FOAD dissemination, the
P2P Trace Archive / Game Trace Archive analog).
"""

from repro.workload.task import (
    BagOfTasks,
    MapReduceJob,
    Task,
    TaskState,
    Workflow,
)
from repro.workload.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    FlashcrowdArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.workload.generators import (
    WorkloadSpec,
    WORKLOAD_DOMAINS,
    generate_bot_workload,
    generate_domain_workload,
    generate_workflow,
    generate_workflow_workload,
)
from repro.workload.trace import TraceArchive, TraceRecord

__all__ = [
    "ArrivalProcess",
    "BagOfTasks",
    "DiurnalArrivals",
    "FlashcrowdArrivals",
    "MapReduceJob",
    "PoissonArrivals",
    "Task",
    "TaskState",
    "TraceArchive",
    "TraceArrivals",
    "TraceRecord",
    "Workflow",
    "WorkloadSpec",
    "WORKLOAD_DOMAINS",
    "generate_bot_workload",
    "generate_domain_workload",
    "generate_workflow",
    "generate_workflow_workload",
]
