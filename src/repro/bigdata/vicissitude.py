"""Vicissitude: bottlenecks appearing "seemingly at random" ([38], §2.5).

When several big data pipelines with phase-dependent resource profiles
share a cluster, the instantaneous bottleneck wanders between CPU, disk,
and network as jobs move through their phases. [38] named this class of
phenomena *vicissitude* while scaling the BTWorld analytics workflow.

:func:`detect_vicissitude` quantifies the wandering on a bottleneck
series: how many distinct bottleneck classes appear, how often the
bottleneck shifts, and the entropy of the bottleneck distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.bigdata.mapreduce import (
    MRCluster,
    MRSimulator,
    RESOURCE_CLASSES,
    generate_mr_jobs,
)


@dataclass
class BottleneckTrace:
    """The vicissitude characterization of one run."""

    series: list[Optional[str]]
    shifts: int
    distinct_bottlenecks: int
    entropy_bits: float
    busy_fraction: float
    time_share: dict[str, float]

    @property
    def is_vicissitude(self) -> bool:
        """The phenomenon: multiple bottleneck classes, frequent shifts."""
        return self.distinct_bottlenecks >= 2 and self.shifts >= 3


def detect_vicissitude(series: Sequence[Optional[str]]) -> BottleneckTrace:
    """Characterize a bottleneck series."""
    series = list(series)
    if not series:
        raise ValueError("empty bottleneck series")
    busy = [b for b in series if b is not None]
    shifts = 0
    prev = None
    for b in series:
        if b is not None and prev is not None and b != prev:
            shifts += 1
        if b is not None:
            prev = b
    counts: dict[str, int] = {}
    for b in busy:
        counts[b] = counts.get(b, 0) + 1
    total = len(busy)
    entropy = 0.0
    share = {}
    for name, count in sorted(counts.items()):
        p = count / total
        share[name] = p
        entropy -= p * math.log2(p)
    return BottleneckTrace(
        series=series,
        shifts=shifts,
        distinct_bottlenecks=len(counts),
        entropy_bits=entropy,
        busy_fraction=total / len(series),
        time_share=share,
    )


def run_vicissitude_experiment(seed: int = 0, n_jobs: int = 12,
                               concurrency: str = "contended",
                               step_s: float = 5.0) -> BottleneckTrace:
    """The [38]-style experiment.

    ``concurrency``:

    - ``"solo"``: jobs run far apart (arrival rate scaled down) — phases
      never overlap across jobs, the bottleneck follows one job's phase
      sequence and barely shifts;
    - ``"contended"``: jobs overlap — the bottleneck wanders (the
      vicissitude regime).
    """
    rng = np.random.default_rng(seed)
    rate = {"solo": 1 / 5000.0, "contended": 1 / 60.0}.get(concurrency)
    if rate is None:
        raise ValueError("concurrency must be 'solo' or 'contended'")
    jobs = generate_mr_jobs(rng, n_jobs=n_jobs, arrival_rate=rate)
    cluster = MRCluster("dc", cpu=48.0, disk=36.0, network=24.0)
    sim = MRSimulator(cluster, jobs, step_s=step_s)
    sim.run()
    return detect_vicissitude(sim.bottleneck_series())
