"""Big data processing on the datacenter substrate (paper §6.3 and §2.5).

Three systems the paper names around its Digital Factory narrative:

- :mod:`repro.bigdata.mapreduce` — a phase-level MapReduce execution
  engine: map (CPU + disk read), shuffle (network), reduce (CPU + disk
  write), with stragglers and proportional-share resource contention;
- :mod:`repro.bigdata.vicissitude` — the *vicissitude* phenomenon
  ([38]): under concurrent pipelines, "several known bottlenecks appear
  seemingly at random in various parts of the system" — detected here as
  the instantaneous bottleneck resource wandering across resource
  classes;
- :mod:`repro.bigdata.fawkes` — Fawkes-style balanced resource
  allocation across multiple dynamic MapReduce clusters ([94]): machines
  migrate between logical clusters to equalize weighted demand.
"""

from repro.bigdata.mapreduce import (
    MRCluster,
    MRJob,
    MRPhase,
    MRSimulator,
    PhaseDemand,
)
from repro.bigdata.vicissitude import (
    BottleneckTrace,
    detect_vicissitude,
    run_vicissitude_experiment,
)
from repro.bigdata.fawkes import (
    FawkesAllocator,
    StaticAllocator,
    run_fawkes_experiment,
)

__all__ = [
    "BottleneckTrace",
    "FawkesAllocator",
    "MRCluster",
    "MRJob",
    "MRPhase",
    "MRSimulator",
    "PhaseDemand",
    "StaticAllocator",
    "detect_vicissitude",
    "run_fawkes_experiment",
    "run_vicissitude_experiment",
]
