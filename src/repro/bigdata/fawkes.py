"""Fawkes: balanced resource allocation across dynamic MapReduce clusters.

The paper's [94]: several logical MapReduce clusters share one physical
pool; a balancer periodically re-weights the clusters by their *demand*
(queued + running work) and migrates capacity accordingly, so bursty
tenants borrow from idle ones. The experiment contrasts a static equal
split against the dynamic balancer on imbalanced workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.bigdata.mapreduce import (
    MRCluster,
    MRJob,
    MRPhase,
    MRSimulator,
    generate_mr_jobs,
    solo_makespans,
)


class StaticAllocator:
    """Equal fixed split of the pool across tenants."""

    name = "static"

    def weights(self, demands: dict[str, float]) -> dict[str, float]:
        n = len(demands)
        return {tenant: 1.0 / n for tenant in demands}


class FawkesAllocator:
    """Demand-proportional weights with a minimum share per tenant."""

    name = "fawkes"

    def __init__(self, min_share: float = 0.1):
        if not 0 <= min_share < 1:
            raise ValueError("min_share must be in [0, 1)")
        self.min_share = min_share

    def weights(self, demands: dict[str, float]) -> dict[str, float]:
        n = len(demands)
        total = sum(demands.values())
        if total <= 0:
            return {tenant: 1.0 / n for tenant in demands}
        reserved = self.min_share
        available = 1.0 - reserved * n
        if available < 0:
            return {tenant: 1.0 / n for tenant in demands}
        return {
            tenant: reserved + available * demand / total
            for tenant, demand in demands.items()
        }


@dataclass
class TenantState:
    name: str
    jobs: list[MRJob]
    simulator: Optional[MRSimulator] = None


def _remaining_demand(jobs: Sequence[MRJob], now: float) -> float:
    demand = 0.0
    for job in jobs:
        if job.done or job.submit_time > now:
            continue
        demand += job.remaining if job.phase is not MRPhase.PENDING else (
            job.map_work + job.shuffle_work + job.reduce_work)
    return demand


@dataclass
class FawkesResult:
    allocator: str
    per_tenant_slowdown: dict[str, float]

    @property
    def mean_slowdown(self) -> float:
        return float(np.mean(list(self.per_tenant_slowdown.values())))

    @property
    def max_slowdown(self) -> float:
        return float(max(self.per_tenant_slowdown.values()))


def run_fawkes_experiment(allocator, seed: int = 0,
                          rebalance_interval_s: float = 60.0,
                          step_s: float = 5.0,
                          horizon_s: float = 40_000.0) -> FawkesResult:
    """Two imbalanced tenants on one pool, with periodic rebalancing.

    Tenant A is bursty-heavy, tenant B sparse-light; a static equal split
    starves A while B idles. The simulation interleaves per-tenant
    :class:`MRSimulator` steps, re-scaling each tenant's cluster to its
    current weight at every rebalancing interval.
    """
    rng = np.random.default_rng(seed)
    pool = MRCluster("pool", cpu=64.0, disk=48.0, network=32.0)
    tenants = {
        "heavy": TenantState("heavy", generate_mr_jobs(
            rng, n_jobs=10, mean_work=3000.0, arrival_rate=1 / 50.0)),
        "light": TenantState("light", generate_mr_jobs(
            rng, n_jobs=3, mean_work=800.0, arrival_rate=1 / 2000.0)),
    }
    baselines = {
        name: solo_makespans(pool, state.jobs, step_s=step_s)
        for name, state in tenants.items()
    }
    # Fresh simulators share the clock; cluster objects are re-scaled at
    # each rebalance.
    weights = {name: 1.0 / len(tenants) for name in tenants}
    for name, state in tenants.items():
        state.simulator = MRSimulator(pool.scaled(weights[name]),
                                      state.jobs, step_s=step_s)
    now = 0.0
    next_rebalance = 0.0
    while now < horizon_s:
        if all(j.done for state in tenants.values() for j in state.jobs):
            break
        if now >= next_rebalance:
            demands = {
                name: _remaining_demand(state.jobs, now)
                for name, state in tenants.items()
            }
            weights = allocator.weights(demands)
            for name, state in tenants.items():
                state.simulator.cluster = pool.scaled(weights[name])
            next_rebalance = now + rebalance_interval_s
        for state in tenants.values():
            state.simulator.step(now)
        now += step_s
    else:
        raise RuntimeError("fawkes experiment did not finish in horizon")

    per_tenant = {}
    for name, state in tenants.items():
        ratios = [job.makespan / baselines[name][job.name]
                  for job in state.jobs if job.makespan is not None]
        per_tenant[name] = float(np.mean(ratios)) if ratios else float("inf")
    return FawkesResult(allocator=allocator.name,
                        per_tenant_slowdown=per_tenant)
