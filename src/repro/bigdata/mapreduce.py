"""A phase-level MapReduce execution engine with resource contention.

Jobs traverse MAP → SHUFFLE → REDUCE. Each phase demands one dominant
resource class (the paper's big data pipelines: map is CPU- and
disk-read-heavy, shuffle is network-heavy, reduce is CPU- and
disk-write-heavy). The cluster exposes finite capacity per resource
class; concurrent phases share each class proportionally, so a job's
progress rate depends on who else is running — the contention that gives
rise to vicissitude.

The simulator is time-stepped (the natural granularity for utilization
signals); task-level stragglers are folded into per-phase work drawn
from a lognormal.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

#: Resource classes of the engine.
RESOURCE_CLASSES = ("cpu", "disk", "network")


class MRPhase(enum.Enum):
    PENDING = "pending"
    MAP = "map"
    SHUFFLE = "shuffle"
    REDUCE = "reduce"
    DONE = "done"

    def next_phase(self) -> "MRPhase":
        order = [MRPhase.PENDING, MRPhase.MAP, MRPhase.SHUFFLE,
                 MRPhase.REDUCE, MRPhase.DONE]
        return order[order.index(self) + 1]


@dataclass(frozen=True)
class PhaseDemand:
    """Per-resource demand rates of one phase (units/second requested)."""

    cpu: float = 0.0
    disk: float = 0.0
    network: float = 0.0

    def of(self, resource: str) -> float:
        return getattr(self, resource)

    @property
    def dominant(self) -> str:
        return max(RESOURCE_CLASSES, key=lambda r: (self.of(r), r))


#: Demand profiles per phase, per unit of parallelism (one task slot).
PHASE_PROFILES: dict[MRPhase, PhaseDemand] = {
    MRPhase.MAP: PhaseDemand(cpu=1.0, disk=0.8, network=0.05),
    MRPhase.SHUFFLE: PhaseDemand(cpu=0.1, disk=0.2, network=1.0),
    MRPhase.REDUCE: PhaseDemand(cpu=0.9, disk=0.7, network=0.05),
}


@dataclass
class MRJob:
    """One MapReduce job: per-phase work volumes (in work units)."""

    name: str
    map_work: float
    shuffle_work: float
    reduce_work: float
    submit_time: float = 0.0
    parallelism: int = 8
    phase: MRPhase = MRPhase.PENDING
    remaining: float = 0.0
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    phase_times: dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        for work in (self.map_work, self.shuffle_work, self.reduce_work):
            if work <= 0:
                raise ValueError(f"job {self.name}: phase work must be "
                                 "positive")

    def work_of(self, phase: MRPhase) -> float:
        return {MRPhase.MAP: self.map_work,
                MRPhase.SHUFFLE: self.shuffle_work,
                MRPhase.REDUCE: self.reduce_work}[phase]

    @property
    def done(self) -> bool:
        return self.phase is MRPhase.DONE

    @property
    def makespan(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time


@dataclass
class MRCluster:
    """Resource capacities of one (logical) MapReduce cluster."""

    name: str
    cpu: float = 64.0
    disk: float = 48.0
    network: float = 32.0

    def capacity(self, resource: str) -> float:
        return getattr(self, resource)

    def scaled(self, factor: float) -> "MRCluster":
        return MRCluster(self.name, cpu=self.cpu * factor,
                         disk=self.disk * factor,
                         network=self.network * factor)


def generate_mr_jobs(rng: np.random.Generator, n_jobs: int,
                     mean_work: float = 2000.0,
                     straggler_sigma: float = 0.6,
                     arrival_rate: float = 1 / 120.0,
                     shuffle_ratio: float = 0.8) -> list[MRJob]:
    """Jobs with lognormal phase volumes (stragglers in the tail)."""
    mu = math.log(mean_work) - straggler_sigma**2 / 2
    jobs = []
    t = 0.0
    for i in range(n_jobs):
        t += float(rng.exponential(1.0 / arrival_rate))
        map_work = float(rng.lognormal(mu, straggler_sigma))
        jobs.append(MRJob(
            name=f"job-{i:03d}",
            map_work=map_work,
            shuffle_work=max(map_work * shuffle_ratio
                             * float(rng.uniform(0.5, 1.5)), 1.0),
            reduce_work=max(map_work * 0.5
                            * float(rng.uniform(0.5, 1.5)), 1.0),
            submit_time=t,
            parallelism=int(rng.integers(4, 17)),
        ))
    return jobs


class MRSimulator:
    """Time-stepped proportional-share execution of MapReduce jobs."""

    def __init__(self, cluster: MRCluster, jobs: Sequence[MRJob],
                 step_s: float = 5.0, max_steps: int = 500_000):
        if step_s <= 0:
            raise ValueError("step_s must be positive")
        self.cluster = cluster
        self.jobs = sorted(jobs, key=lambda j: j.submit_time)
        self.step_s = step_s
        self.max_steps = max_steps
        self.times: list[float] = []
        #: Utilization per resource class per step, in [0, 1].
        self.utilization: dict[str, list[float]] = {
            r: [] for r in RESOURCE_CLASSES}

    def _active(self, now: float) -> list[MRJob]:
        active = []
        for job in self.jobs:
            if job.done or job.submit_time > now:
                continue
            if job.phase is MRPhase.PENDING:
                job.phase = MRPhase.MAP
                job.remaining = job.work_of(MRPhase.MAP)
                job.start_time = now
            active.append(job)
        return active

    def step(self, now: float) -> None:
        active = self._active(now)
        # Aggregate demand per resource.
        demand = {r: 0.0 for r in RESOURCE_CLASSES}
        for job in active:
            profile = PHASE_PROFILES[job.phase]
            for r in RESOURCE_CLASSES:
                demand[r] += profile.of(r) * job.parallelism
        # Proportional share: each resource grants min(1, cap/demand).
        grant = {
            r: min(1.0, self.cluster.capacity(r) / demand[r])
            if demand[r] > 0 else 1.0
            for r in RESOURCE_CLASSES
        }
        for r in RESOURCE_CLASSES:
            cap = self.cluster.capacity(r)
            used = min(demand[r], cap)
            self.utilization[r].append(used / cap if cap > 0 else 0.0)
        self.times.append(now)
        # A job progresses at the rate of its most-constrained resource.
        for job in active:
            profile = PHASE_PROFILES[job.phase]
            rate_factor = min(
                grant[r] for r in RESOURCE_CLASSES if profile.of(r) > 0)
            progress = (profile.of(profile.dominant) * job.parallelism
                        * rate_factor * self.step_s)
            job.remaining -= progress
            if job.remaining <= 1e-9:
                job.phase_times[job.phase.value] = now + self.step_s
                job.phase = job.phase.next_phase()
                if job.phase is MRPhase.DONE:
                    job.finish_time = now + self.step_s
                else:
                    job.remaining = job.work_of(job.phase)

    def run(self) -> None:
        if not self.jobs:
            raise ValueError("no jobs to run")
        now = self.jobs[0].submit_time
        for _ in range(self.max_steps):
            if all(j.done for j in self.jobs):
                return
            self.step(now)
            now += self.step_s
        raise RuntimeError(
            f"simulation did not finish in {self.max_steps} steps")

    # -- derived signals -----------------------------------------------------
    def bottleneck_series(self, busy_threshold: float = 0.6
                          ) -> list[Optional[str]]:
        """Per step: the saturated resource with the highest utilization,
        or None when nothing is meaningfully busy."""
        series = []
        for idx in range(len(self.times)):
            best = max(RESOURCE_CLASSES,
                       key=lambda r: (self.utilization[r][idx], r))
            series.append(best if self.utilization[best][idx]
                          >= busy_threshold else None)
        return series

    def mean_makespan(self) -> float:
        spans = [j.makespan for j in self.jobs if j.makespan is not None]
        return float(np.mean(spans)) if spans else float("nan")

    def mean_slowdown(self, solo_makespans: dict[str, float]) -> float:
        """Mean makespan ratio vs uncontended (solo) runs."""
        ratios = [j.makespan / solo_makespans[j.name]
                  for j in self.jobs
                  if j.makespan is not None and j.name in solo_makespans]
        return float(np.mean(ratios)) if ratios else float("nan")


def solo_makespans(cluster: MRCluster, jobs: Sequence[MRJob],
                   step_s: float = 5.0) -> dict[str, float]:
    """Each job's makespan alone on the cluster (the slowdown baseline)."""
    result = {}
    for job in jobs:
        clone = MRJob(name=job.name, map_work=job.map_work,
                      shuffle_work=job.shuffle_work,
                      reduce_work=job.reduce_work, submit_time=0.0,
                      parallelism=job.parallelism)
        sim = MRSimulator(cluster, [clone], step_s=step_s)
        sim.run()
        result[job.name] = clone.makespan
    return result
