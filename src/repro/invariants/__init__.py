"""Cross-layer conservation invariants, checked continuously at runtime.

The paper's ecosystem argument (§3, §6.7) is that composed systems fail
in ways no layer can see alone; ROADMAP item 5 therefore asks for
whole-stack scenarios with "cross-layer invariants checked end-to-end".
This package supplies the checking half:

- :mod:`repro.invariants.laws` — declarative
  :class:`ConservationLaw` objects (labeled terms, tolerance, guard);
  violations raise :class:`InvariantViolation` with a per-term delta.
- :mod:`repro.invariants.engine` — :class:`InvariantEngine`, a sim
  process that audits every registered law on a fixed cadence, so a
  chaos run dies at the first inconsistent instant instead of producing
  a quietly-wrong table.
- :mod:`repro.invariants.catalog` — ready-made laws for each layer:
  network message conservation, scheduler task conservation and
  believed-vs-actual reconciliation, serverless invocation fates,
  front-door admission accounting, and the
  :class:`~repro.recovery.CheckpointedJob` ledger identity. The catalog
  is mirrored (and parse-tested) by the table in ``docs/invariants.md``.

Example
-------
>>> from repro.invariants import InvariantEngine, standard_laws
>>> engine = InvariantEngine(env, standard_laws(network=net,
...                                             scheduler=sim),
...                          check_interval_s=1.0)
"""

from repro.invariants.catalog import (
    checkpoint_accounting,
    fencing_conservation,
    front_door_conservation,
    leader_uniqueness,
    network_conservation,
    scheduler_conservation,
    scheduler_reconciliation,
    serverless_conservation,
    standard_laws,
)
from repro.invariants.engine import InvariantEngine
from repro.invariants.laws import (
    ConservationLaw,
    InvariantViolation,
    Term,
    counter_term,
)

__all__ = [
    "ConservationLaw",
    "InvariantEngine",
    "InvariantViolation",
    "Term",
    "checkpoint_accounting",
    "counter_term",
    "fencing_conservation",
    "front_door_conservation",
    "leader_uniqueness",
    "network_conservation",
    "scheduler_conservation",
    "scheduler_reconciliation",
    "serverless_conservation",
    "standard_laws",
]
