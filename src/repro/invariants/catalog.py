"""The law catalog: conservation identities for each stack layer.

Each factory binds one generic law to one live component and returns a
:class:`~repro.invariants.ConservationLaw` ready for an
:class:`~repro.invariants.InvariantEngine`. The catalog (mirrored by the
table in ``docs/invariants.md``, which a test parses) is the repo's
answer to the paper's call for cross-layer guarantees in composed
ecosystems: every unit of work must be somewhere, at every instant, no
matter which combination of partitions, gray failures, crashes, and
admission decisions is active.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.invariants.laws import ConservationLaw, Term, counter_term

__all__ = [
    "checkpoint_accounting",
    "fencing_conservation",
    "front_door_conservation",
    "leader_uniqueness",
    "network_conservation",
    "scheduler_conservation",
    "scheduler_reconciliation",
    "serverless_conservation",
    "standard_laws",
]


def network_conservation(network) -> ConservationLaw:
    """Every message sent is delivered, blocked, dropped, or in flight."""
    return ConservationLaw(
        name="network.conservation",
        description="sent == delivered + blocked + dropped + in_flight",
        lhs=[Term("sent", lambda: network.sent)],
        rhs=[Term("delivered", lambda: network.delivered),
             Term("blocked", lambda: network.blocked),
             Term("dropped", lambda: network.dropped),
             Term("in_flight", lambda: network.in_flight)])


def scheduler_conservation(sim) -> ConservationLaw:
    """Every submitted task is settled or in exactly one waiting room.

    ``submitted`` counts first arrivals (bag tasks, unlocked workflow
    successors) — requeues and restarts move a task between rooms but
    never mint one.
    """
    return ConservationLaw(
        name="scheduler.conservation",
        description=("submitted == finished + failed + ready + running "
                     "+ limbo + orphaned + unreported"),
        lhs=[Term("submitted", lambda: sim.submitted)],
        rhs=[Term("finished", lambda: len(sim.finished)),
             Term("failed", lambda: len(sim.failed)),
             Term("ready", lambda: len(sim.ready)),
             Term("running", lambda: len(sim.running)),
             Term("limbo", lambda: len(sim._limbo)),
             Term("orphaned", lambda: len(sim._orphaned)),
             Term("unreported", lambda: len(sim._unreported))])


def scheduler_reconciliation(sim) -> ConservationLaw:
    """Believed-running reconciles against executions + missing reports.

    The scheduler's belief ledger (``running``) may lag ground truth only
    by completion reports the network has not yet carried home; anything
    else unaccounted is a lost or duplicated task.
    """
    return ConservationLaw(
        name="scheduler.reconciliation",
        description="believed_running == executing + pending_reports",
        lhs=[Term("believed_running", lambda: len(sim.running))],
        rhs=[Term("executing", lambda: len(sim._procs)),
             Term("pending_reports", lambda: len(sim._pending_reports))])


def serverless_conservation(platform) -> ConservationLaw:
    """Every invocation offered to the platform reaches exactly one fate.

    The served/shed/rejected/failed terms read the *metrics registry* —
    so a drift between the platform's own objects and what it reported
    is itself a violation.
    """
    registry = platform.monitor.registry

    def executing() -> int:
        return sum(1 for inv in platform.invocations
                   if inv.finish_time is None and not inv.shed
                   and not inv.rejected and not inv.failed)

    return ConservationLaw(
        name="serverless.conservation",
        description="offered == served + shed + rejected + failed "
                    "+ executing",
        lhs=[Term("offered", lambda: len(platform.invocations))],
        rhs=[counter_term(registry, "serverless.invocations", "served"),
             counter_term(registry, "serverless.shed", "shed"),
             counter_term(registry, "serverless.rejections", "rejected"),
             counter_term(registry, "serverless.failed_invocations",
                          "failed"),
             Term("executing", executing)])


def front_door_conservation(door) -> ConservationLaw:
    """Admission control never loses a request: offered == admitted + shed.

    ``door`` is anything with ``offered`` / ``admitted`` / ``shed``
    counters (e.g. the composed scenario's front door, or a
    :class:`~repro.resilience.TokenBucketAdmitter` where ``offered`` is
    ``admitted + shed`` by construction and the law guards the counters
    against future drift).
    """
    return ConservationLaw(
        name="frontdoor.conservation",
        description="offered == admitted + shed",
        lhs=[Term("offered", lambda: door.offered)],
        rhs=[Term("admitted", lambda: door.admitted),
             Term("shed", lambda: door.shed)])


def checkpoint_accounting(job, tol: float = 1e-6) -> ConservationLaw:
    """The recovery ledger identity of one :class:`CheckpointedJob`.

    Only meaningful once the job finished (mid-run, the current phase's
    partial time is in no bucket yet), so the law guards on
    ``finished_at``.
    """
    return ConservationLaw(
        name="checkpoint.accounting",
        description=("makespan == work + checkpoint_time + lost_work "
                     "+ recovery_time + downtime"),
        tol=tol,
        when=lambda: job.finished_at is not None,
        lhs=[Term("makespan", lambda: (job.finished_at or 0.0)
                  - job.started_at)],
        rhs=[Term("work", lambda: job.work_s),
             Term("checkpoint_time", lambda: job.checkpoint_time_s),
             Term("lost_work", lambda: job.lost_work_s),
             Term("recovery_time", lambda: job.recovery_time_s),
             Term("downtime", lambda: job.downtime_s)])


def leader_uniqueness(election) -> ConservationLaw:
    """Elections never mint two leaders for one term.

    ``promotions`` counts every win (including the boot-time leader);
    ``leaders_by_term`` records the first winner per term and is only
    ever extended via ``setdefault`` — a double win at one term makes
    the left side overshoot the right, at the exact check after it
    happens.
    """
    return ConservationLaw(
        name="replication.at_most_one_leader_per_term",
        description="promotions == terms_with_a_leader",
        lhs=[Term("promotions", lambda: election.promotions)],
        rhs=[Term("terms_with_a_leader",
                  lambda: len(election.leaders_by_term))])


def fencing_conservation(control_plane) -> ConservationLaw:
    """Every stale write a deposed leader lands is rejected and counted.

    The gate's machine-side rejection counter must track the control
    plane's stale-dispatch ledger one-for-one: a gap on the left means
    a fenced machine rejected a *live* write; a gap on the right means
    a deposed leader's write was silently accepted — split-brain.
    """
    return ConservationLaw(
        name="replication.fenced_writes_rejected",
        description="fenced_writes_rejected == stale_dispatches",
        lhs=[Term("fenced_writes_rejected",
                  lambda: control_plane.gate.rejected)],
        rhs=[Term("stale_dispatches",
                  lambda: control_plane.stale_dispatches)])


def standard_laws(network=None, scheduler=None, platform=None,
                  front_door=None,
                  jobs: Iterable = (),
                  election=None,
                  control_plane=None) -> list[ConservationLaw]:
    """Every applicable catalog law for the components actually present."""
    laws: list[ConservationLaw] = []
    if network is not None:
        laws.append(network_conservation(network))
    if scheduler is not None:
        laws.append(scheduler_conservation(scheduler))
        laws.append(scheduler_reconciliation(scheduler))
    if platform is not None:
        laws.append(serverless_conservation(platform))
    if front_door is not None:
        laws.append(front_door_conservation(front_door))
    if control_plane is not None:
        laws.append(leader_uniqueness(control_plane.election))
        laws.append(fencing_conservation(control_plane))
    elif election is not None:
        laws.append(leader_uniqueness(election))
    for i, job in enumerate(jobs):
        law = checkpoint_accounting(job)
        if i:
            law.name = f"checkpoint.accounting.{i}"
        laws.append(law)
    return laws
