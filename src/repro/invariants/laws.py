"""Declarative conservation laws over live simulation state.

A law states that two sums of named terms are equal (within a
tolerance) whenever its guard holds. Terms are zero-argument getters, so
a law can mix sources freely: object counters, list lengths, and
:class:`~repro.observability.MetricsRegistry` counters (via
:func:`counter_term`) all read the *current* value at check time.

When a law fails, :class:`InvariantViolation` carries every term's
labeled value and the signed delta — the difference between "something
is off" and "``served`` is 3 high at t=184.0", which is what makes a
chaos run self-auditing instead of merely noisy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

__all__ = ["ConservationLaw", "InvariantViolation", "Term", "counter_term"]


@dataclass(frozen=True)
class Term:
    """One labeled addend of a conservation law."""

    label: str
    getter: Callable[[], float]

    def value(self) -> float:
        return float(self.getter())


def counter_term(registry, metric: str, label: Optional[str] = None) -> Term:
    """A term reading a registry counter's total (0 until first emitted).

    Reading through the registry — rather than the emitting object —
    is the point: if the snapshot pipeline ever diverges from the
    domain's own books, the law catches the divergence.
    """
    def read() -> float:
        counter = registry.get(metric)
        return float(counter.total) if counter is not None else 0.0
    return Term(label or metric, read)


class InvariantViolation(AssertionError):
    """A conservation law failed; carries the labeled per-term deltas.

    ``seed`` (when the checking engine knows it) and the sim-time ``t``
    ride in the message, so a violation collected by a fuzzing campaign
    is self-describing: the verdict line alone names the world that
    broke and when, without re-running anything.
    """

    def __init__(self, law: "ConservationLaw", time: float,
                 lhs_values: Sequence[tuple[str, float]],
                 rhs_values: Sequence[tuple[str, float]],
                 seed: Optional[int] = None):
        self.law = law
        self.time = time
        self.seed = seed
        self.lhs_values = list(lhs_values)
        self.rhs_values = list(rhs_values)
        self.lhs_total = sum(v for _, v in lhs_values)
        self.rhs_total = sum(v for _, v in rhs_values)
        self.delta = self.lhs_total - self.rhs_total
        lhs = " + ".join(f"{label}={value:g}" for label, value in lhs_values)
        rhs = " + ".join(f"{label}={value:g}" for label, value in rhs_values)
        origin = f"t={time:g}" if seed is None else f"t={time:g} seed={seed}"
        super().__init__(
            f"invariant {law.name!r} violated at {origin}: "
            f"[{lhs}] = {self.lhs_total:g} != [{rhs}] = {self.rhs_total:g} "
            f"(delta {self.delta:+g})")


@dataclass
class ConservationLaw:
    """``sum(lhs) == sum(rhs)`` within ``tol``, whenever ``when()`` holds."""

    name: str
    lhs: Sequence[Term]
    rhs: Sequence[Term]
    tol: float = 1e-6
    #: Optional guard: the law is only meaningful when this returns True
    #: (e.g. a checkpoint accounting identity that holds at completion).
    when: Optional[Callable[[], bool]] = None
    description: str = ""
    #: Times the law was evaluated / found violated (bookkeeping).
    checks: int = field(default=0, compare=False)
    violations: int = field(default=0, compare=False)

    def __post_init__(self):
        self.lhs = tuple(self.lhs)
        self.rhs = tuple(self.rhs)
        if not self.lhs or not self.rhs:
            raise ValueError(f"law {self.name!r} needs terms on both sides")
        if self.tol < 0:
            raise ValueError("tol must be non-negative")

    def applicable(self) -> bool:
        return self.when is None or bool(self.when())

    def evaluate(self) -> tuple[list[tuple[str, float]],
                                list[tuple[str, float]]]:
        """Read every term once; returns labeled (lhs, rhs) values."""
        return ([(t.label, t.value()) for t in self.lhs],
                [(t.label, t.value()) for t in self.rhs])

    def check(self, time: float = 0.0, seed: Optional[int] = None) -> None:
        """Evaluate and raise :class:`InvariantViolation` on imbalance."""
        if not self.applicable():
            return
        self.checks += 1
        lhs_values, rhs_values = self.evaluate()
        lhs_total = sum(v for _, v in lhs_values)
        rhs_total = sum(v for _, v in rhs_values)
        if abs(lhs_total - rhs_total) > self.tol:
            self.violations += 1
            raise InvariantViolation(self, time, lhs_values, rhs_values,
                                     seed=seed)
