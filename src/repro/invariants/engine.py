"""The invariant engine: continuous conservation checking as a process.

Register laws, and the engine re-evaluates every one on a fixed sim-time
cadence (plus on demand via :meth:`InvariantEngine.check_now`). A
violation raises :class:`~repro.invariants.InvariantViolation` *inside
the simulation* — the run dies at the first inconsistent instant with a
labeled delta, not at the end with a mysterious total. Check and
violation counts flow into the metrics registry (``invariants.checks``,
``invariants.violations``) so golden traces also pin how often the
auditor looked.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.invariants.laws import ConservationLaw, InvariantViolation
from repro.sim import Environment, Monitor

__all__ = ["InvariantEngine"]


class InvariantEngine:
    """Continuously audits a set of :class:`ConservationLaw` objects.

    ``halt=True`` (the default) lets the first violation propagate and
    kill the run — the self-auditing mode chaos scenarios want.
    ``halt=False`` records violations (counted, kept in
    :attr:`violation_log`) and keeps going — the survey mode property
    tests use to count how *many* laws a corruption breaks.
    """

    def __init__(self, env: Environment,
                 laws: Iterable[ConservationLaw] = (),
                 check_interval_s: float = 1.0,
                 monitor: Optional[Monitor] = None,
                 halt: bool = True,
                 seed: Optional[int] = None):
        if check_interval_s <= 0:
            raise ValueError("check_interval_s must be positive")
        self.env = env
        self.laws: list[ConservationLaw] = []
        self.check_interval_s = check_interval_s
        self.monitor = monitor
        self.halt = halt
        #: The world's root seed, stamped into every violation's message
        #: so campaign verdicts are self-describing without a re-run.
        self.seed = seed
        self.checks = 0
        self.violations = 0
        self.violation_log: list[InvariantViolation] = []
        for law in laws:
            self.register(law)
        self._proc = env.process(self._audit())

    def register(self, law: ConservationLaw) -> ConservationLaw:
        if any(existing.name == law.name for existing in self.laws):
            raise ValueError(f"duplicate law name {law.name!r}")
        self.laws.append(law)
        return law

    def law(self, name: str) -> ConservationLaw:
        for law in self.laws:
            if law.name == name:
                return law
        raise KeyError(f"unknown law {name!r}; "
                       f"known: {[l.name for l in self.laws]}")

    def check_now(self) -> list[InvariantViolation]:
        """Evaluate every law once; raise (halt) or collect (survey)."""
        found: list[InvariantViolation] = []
        for law in self.laws:
            self.checks += 1
            if self.monitor is not None:
                self.monitor.count("checks", key=law.name)
            try:
                law.check(self.env.now, seed=self.seed)
            except InvariantViolation as violation:
                self.violations += 1
                self.violation_log.append(violation)
                if self.monitor is not None:
                    self.monitor.count("violations", key=law.name)
                if self.halt:
                    raise
                found.append(violation)
        return found

    def _audit(self):
        while True:
            yield self.env.timeout(self.check_interval_s)
            self.check_now()
