"""A write-ahead journal: incremental durability between checkpoints.

Checkpoints snapshot whole state at coarse intervals; the journal makes
*individual* state transitions durable as they happen — the workflow
engine's "step finished", the scheduler's "task dispatched". Recovery
replays the journal over the last checkpoint, which is why replay cost is
bounded: :meth:`truncate` discards everything a checkpoint already covers.

Durability is not instantaneous: a record becomes durable
``append_cost_s`` after the append (the group-commit/fsync window). A
crash inside that window loses the record — the source of the duplicate
executions that at-least-once semantics admit and idempotency keys
de-duplicate (see :mod:`repro.serverless.durable`).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Any, Optional

from repro.sim import Environment, Monitor


@dataclass(frozen=True)
class JournalRecord:
    """One appended transition."""

    seq: int
    kind: str
    payload: Any
    appended_at: float
    #: Sim time at which the record survives a crash (fsync horizon).
    durable_at: float


class Journal:
    """Append-only log with bounded, truncatable replay.

    Appends are non-blocking (the writer does not wait for the fsync —
    group commit), but a record only *counts* once ``env.now`` reaches
    its ``durable_at``. :meth:`replay` therefore returns the durable
    prefix as of a crash, exactly what a recovering process can trust.
    """

    def __init__(self, env: Environment, append_cost_s: float = 0.0,
                 replay_cost_per_record_s: float = 0.0,
                 monitor: Optional[Monitor] = None,
                 name: str = "journal"):
        if append_cost_s < 0 or replay_cost_per_record_s < 0:
            raise ValueError("journal costs must be non-negative")
        self.env = env
        self.append_cost_s = append_cost_s
        self.replay_cost_per_record_s = replay_cost_per_record_s
        self.monitor = monitor
        self.name = name
        self._seq = count()
        self.records: list[JournalRecord] = []
        self.appended = 0
        self.truncations = 0
        self.truncated_records = 0
        self.replays = 0

    def append(self, kind: str, payload: Any = None) -> JournalRecord:
        """Append one record; durable ``append_cost_s`` from now."""
        record = JournalRecord(seq=next(self._seq), kind=kind,
                               payload=payload, appended_at=self.env.now,
                               durable_at=self.env.now + self.append_cost_s)
        self.records.append(record)
        self.appended += 1
        if self.monitor is not None:
            self.monitor.count(f"{self.name}_appends", key=kind)
        return record

    def durable_records(self, now: Optional[float] = None
                        ) -> list[JournalRecord]:
        """The records a crash at ``now`` (default: sim now) would keep."""
        now = self.env.now if now is None else now
        return [r for r in self.records if r.durable_at <= now]

    def replay_time_s(self, now: Optional[float] = None) -> float:
        """Cost of replaying the durable prefix (bounded by truncation)."""
        return self.replay_cost_per_record_s * len(self.durable_records(now))

    def replay(self, now: Optional[float] = None) -> list[JournalRecord]:
        """The durable prefix, in append order; counts the replay."""
        self.replays += 1
        if self.monitor is not None:
            self.monitor.count(f"{self.name}_replays")
        return self.durable_records(now)

    def truncate(self, upto_seq: int) -> int:
        """Drop records with ``seq <= upto_seq`` (covered by a checkpoint).

        Returns how many records were discarded. This is what keeps
        replay cost bounded: journal growth is reset at every checkpoint.
        """
        kept = [r for r in self.records if r.seq > upto_seq]
        dropped = len(self.records) - len(kept)
        self.records = kept
        self.truncations += 1
        self.truncated_records += dropped
        if self.monitor is not None:
            self.monitor.count(f"{self.name}_truncations")
        return dropped

    def __len__(self) -> int:
        return len(self.records)
