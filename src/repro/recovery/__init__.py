"""Checkpoint/restore and crash-recovery: durable state for long work.

PR 1 (:mod:`repro.faults`) made components crash; PR 3
(:mod:`repro.resilience`) taught systems to detect failures and shed load
around them. This package closes the robustness triad the paper's P3/C5
call for: long-running computations *survive* crashes without losing all
progress, the property the companion vision paper (arXiv:1802.05465)
phrases as ecosystems that "survive failures without losing work".

- **checkpoint policies** (:mod:`repro.recovery.policies`) — how often to
  pay the checkpoint cost: a fixed :class:`PeriodicCheckpoint`, the
  Young/Daly optimum :class:`DalyOptimalCheckpoint`
  (``sqrt(2 * checkpoint_cost * MTBF)``, read off the active
  :class:`~repro.faults.models.CrashRestart` model), and an
  :class:`AdaptiveCheckpoint` that re-estimates MTBF online from the
  failures it actually observes;
- **checkpoint storage** (:mod:`repro.recovery.store`) — a
  :class:`CheckpointStore` with tiered write/read cost (size-proportional
  transfer time), keep-last-k retention, and a corruption probability
  that makes restores fall back to older checkpoints;
- **write-ahead journal** (:mod:`repro.recovery.journal`) — an
  append-only :class:`Journal` with an append-durability window, bounded
  replay cost, and truncate-on-checkpoint;
- **checkpointed execution** (:mod:`repro.recovery.job`) — a
  :class:`CheckpointedJob` that runs divisible work under
  :class:`~repro.faults.models.CrashRestart`, rolling back to the last
  durable checkpoint on every crash, with full makespan/lost-work/
  overhead/recovery-time accounting.

Domain wirings: graphalytics checkpoints iterative kernels per superstep
(:func:`repro.graphalytics.robustness.run_supersteps_with_recovery`),
the serverless :class:`~repro.serverless.durable.DurableWorkflowEngine`
journals completed steps so retried workflows replay instead of
re-invoking, and :class:`~repro.scheduling.simulator.ClusterSimulator`
journals submissions/dispatches/completions so a crashed scheduler
reconciles believed vs. actual cluster state on recovery. The chaos
harness compares no-checkpoint vs. periodic vs. Daly-optimal in
:func:`repro.faults.chaos.run_recovery_scenario`.
"""

from repro.recovery.journal import Journal, JournalRecord
from repro.recovery.job import CheckpointedJob, RecoveryStats
from repro.recovery.policies import (
    AdaptiveCheckpoint,
    CheckpointPolicy,
    DalyOptimalCheckpoint,
    PeriodicCheckpoint,
    daly_interval_s,
)
from repro.recovery.store import (
    CHECKPOINT_TIERS,
    Checkpoint,
    CheckpointCorruptionError,
    CheckpointStore,
    CheckpointTier,
)

__all__ = [
    "AdaptiveCheckpoint",
    "CHECKPOINT_TIERS",
    "Checkpoint",
    "CheckpointCorruptionError",
    "CheckpointPolicy",
    "CheckpointStore",
    "CheckpointTier",
    "CheckpointedJob",
    "DalyOptimalCheckpoint",
    "Journal",
    "JournalRecord",
    "PeriodicCheckpoint",
    "RecoveryStats",
    "daly_interval_s",
]
