"""A checkpoint store: where durable state goes and what that costs.

Checkpoints are not free *or* reliable: a write pays latency plus
size-proportional transfer time on its tier (local NVMe vs. a remote
object store), retention keeps only the last *k* snapshots, and a
checkpoint may be silently corrupt — discovered only at restore time,
when the restore falls back to the next-older snapshot (each attempt
paying its read cost). These are exactly the levers the Young/Daly
trade-off prices, so the store exposes ``write_time_s`` for policies to
consume as the checkpoint cost ``C``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Any, Optional, Union

import numpy as np

from repro.sim import Environment, Monitor


@dataclass(frozen=True)
class CheckpointTier:
    """One storage destination's cost profile."""

    name: str
    #: Fixed per-operation latency (metadata round trip), seconds.
    latency_s: float
    #: Write bandwidth, MB/s — transfer time is size-proportional.
    write_mb_per_s: float
    #: Read (restore) bandwidth, MB/s.
    read_mb_per_s: float

    def __post_init__(self):
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if self.write_mb_per_s <= 0 or self.read_mb_per_s <= 0:
            raise ValueError("bandwidths must be positive")


#: Stylized tiers: node-local scratch vs. a remote replicated store
#: (bandwidths in the same spirit as :mod:`repro.serverless.storage`).
CHECKPOINT_TIERS: dict[str, CheckpointTier] = {
    "local": CheckpointTier("local", latency_s=0.02,
                            write_mb_per_s=1200.0, read_mb_per_s=2000.0),
    "remote": CheckpointTier("remote", latency_s=0.25,
                             write_mb_per_s=150.0, read_mb_per_s=300.0),
}


@dataclass
class Checkpoint:
    """One durable snapshot (possibly silently corrupt)."""

    seq: int
    payload: Any
    size_mb: float
    written_at: float
    #: Latent write corruption — unknown to the writer, discovered only
    #: when a restore reads the snapshot back.
    corrupt: bool = False


class CheckpointCorruptionError(RuntimeError):
    """The only retained snapshot is corrupt and no fallback exists.

    Raised by :meth:`CheckpointStore.restore` when ``keep_last == 1``:
    retention has already evicted every older snapshot, so the corrupt
    one *is* the whole fallback chain. With ``keep_last > 1`` the same
    discovery silently falls back to the next-older snapshot (or returns
    ``None`` once the chain is exhausted) — but a store configured with
    no chain at all has made an explicit durability bet, and losing it
    deserves a typed error naming the corrupted key, not a ``None`` that
    reads like "never checkpointed".
    """

    def __init__(self, store_name: str, seq: int):
        self.store_name = store_name
        #: The corrupted checkpoint's key (its store-assigned seq).
        self.seq = seq
        super().__init__(
            f"checkpoint store {store_name!r}: only retained snapshot "
            f"(seq={seq}) is corrupt and keep_last=1 leaves no fallback")


class CheckpointStore:
    """Keep-last-k checkpoint storage with modeled I/O cost.

    :meth:`save` and :meth:`restore` are sim-process combinators
    (``ckpt = yield from store.save(state, size_mb)``): they advance sim
    time by the tier's transfer cost, so a crash mid-write simply
    interrupts the caller and the snapshot is never committed.
    """

    def __init__(self, env: Environment,
                 tier: Union[str, CheckpointTier] = "local",
                 keep_last: int = 3,
                 corruption_p: float = 0.0,
                 rng: Optional[np.random.Generator] = None,
                 monitor: Optional[Monitor] = None,
                 name: str = "ckpt-store"):
        if isinstance(tier, str):
            if tier not in CHECKPOINT_TIERS:
                raise KeyError(f"unknown tier {tier!r}; known: "
                               f"{sorted(CHECKPOINT_TIERS)}")
            tier = CHECKPOINT_TIERS[tier]
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        if not 0.0 <= corruption_p < 1.0:
            raise ValueError(f"corruption_p {corruption_p} not in [0, 1)")
        if corruption_p > 0.0 and rng is None:
            raise ValueError("corruption_p > 0 needs a seeded rng")
        self.env = env
        self.tier = tier
        self.keep_last = keep_last
        self.corruption_p = corruption_p
        self.rng = rng
        self.monitor = monitor
        self.name = name
        self._seq = count()
        self.checkpoints: list[Checkpoint] = []
        self.writes = 0
        self.restores = 0
        #: Restores that had to skip a corrupt snapshot and fall back.
        self.corrupt_fallbacks = 0
        #: Restores that found no readable snapshot at all.
        self.failed_restores = 0
        self.evictions = 0
        self.write_time_total_s = 0.0
        self.read_time_total_s = 0.0

    # -- cost model --------------------------------------------------------
    def write_time_s(self, size_mb: float) -> float:
        return self.tier.latency_s + size_mb / self.tier.write_mb_per_s

    def read_time_s(self, size_mb: float) -> float:
        return self.tier.latency_s + size_mb / self.tier.read_mb_per_s

    # -- operations --------------------------------------------------------
    def save(self, payload: Any, size_mb: float):
        """Combinator: write a snapshot, paying the tier's write cost.

        Retention evicts beyond ``keep_last`` *after* the new snapshot
        commits, so a restore always has the freshest k to fall back
        through.
        """
        if size_mb <= 0:
            raise ValueError("size_mb must be positive")
        cost = self.write_time_s(size_mb)
        yield self.env.timeout(cost)
        corrupt = (self.corruption_p > 0.0
                   and bool(self.rng.random() < self.corruption_p))
        ckpt = Checkpoint(seq=next(self._seq), payload=payload,
                          size_mb=float(size_mb), written_at=self.env.now,
                          corrupt=corrupt)
        self.checkpoints.append(ckpt)
        self.writes += 1
        self.write_time_total_s += cost
        while len(self.checkpoints) > self.keep_last:
            self.checkpoints.pop(0)
            self.evictions += 1
        if self.monitor is not None:
            self.monitor.count(f"{self.name}_writes")
        return ckpt

    def restore(self):
        """Combinator: read back the newest *valid* snapshot.

        Tries newest to oldest; every attempt pays its read cost, and a
        corrupt snapshot is discarded (it can never become valid) before
        falling back to the next-older one. Returns the
        :class:`Checkpoint`, or ``None`` when no readable snapshot
        remains — the caller restarts from scratch.

        Exception: with ``keep_last == 1`` a corrupt snapshot raises
        :class:`CheckpointCorruptionError` instead, because the fallback
        chain is empty *by configuration*, not by bad luck — see the
        error's docstring.
        """
        self.restores += 1
        while self.checkpoints:
            candidate = self.checkpoints[-1]
            cost = self.read_time_s(candidate.size_mb)
            yield self.env.timeout(cost)
            self.read_time_total_s += cost
            if not candidate.corrupt:
                if self.monitor is not None:
                    self.monitor.count(f"{self.name}_restores")
                return candidate
            if self.keep_last == 1:
                self.checkpoints.pop()
                self.failed_restores += 1
                raise CheckpointCorruptionError(self.name, candidate.seq)
            self.checkpoints.pop()
            self.corrupt_fallbacks += 1
            if self.monitor is not None:
                self.monitor.count(f"{self.name}_corrupt_fallbacks")
        self.failed_restores += 1
        return None

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.checkpoints)

    def latest(self) -> Optional[Checkpoint]:
        return self.checkpoints[-1] if self.checkpoints else None
