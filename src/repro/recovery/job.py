"""Checkpointed execution of divisible work under crash faults.

:class:`CheckpointedJob` is the generic kernel every domain wiring builds
on: ``work_s`` seconds of restartable computation that (a) checkpoints on
a :class:`~repro.recovery.policies.CheckpointPolicy` schedule into a
:class:`~repro.recovery.store.CheckpointStore`, (b) loses all progress
since the last *committed* checkpoint on a crash, and (c) pays restore,
journal-replay, and restart costs before resuming. The job object is
itself a valid :class:`~repro.faults.models.CrashRestart` target
(``fail()`` / ``repair()`` / ``is_up``), so wiring faults in is one line.

With ``quantum_s`` set, work is quantized into atomic supersteps and
checkpoints land on superstep boundaries — the BSP model graphalytics
uses. Without it, work is continuous and checkpoints land exactly on the
policy interval.

The accounting identity (asserted in tests) is::

    makespan = work + checkpoint_time + lost_work + recovery_time
               + downtime
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.recovery.journal import Journal
from repro.recovery.policies import CheckpointPolicy
from repro.recovery.store import CheckpointStore
from repro.sim import Environment, Interrupt, Monitor

_EPS = 1e-9


@dataclass
class RecoveryStats:
    """The robustness ledger of one checkpointed run."""

    work_s: float
    makespan_s: float
    crashes: int
    #: Compute seconds spent on progress a crash threw away.
    lost_work_s: float
    #: Time spent writing checkpoints that committed (plus partial writes
    #: a crash interrupted, which land in ``lost_work_s``).
    checkpoint_time_s: float
    #: Restore reads + journal replay + fixed restart cost.
    recovery_time_s: float
    #: Time the executor was down (waiting for repair).
    downtime_s: float
    checkpoints_written: int
    restores: int
    corrupt_fallbacks: int

    @property
    def makespan_inflation(self) -> float:
        """Makespan relative to the fault-free, checkpoint-free ideal."""
        return self.makespan_s / self.work_s - 1.0 if self.work_s else 0.0

    @property
    def overhead_s(self) -> float:
        return self.makespan_s - self.work_s


class CheckpointedJob:
    """Divisible work with checkpoint/restore under fail-stop crashes."""

    def __init__(self, env: Environment, work_s: float,
                 policy: Optional[CheckpointPolicy] = None,
                 store: Optional[CheckpointStore] = None,
                 journal: Optional[Journal] = None,
                 quantum_s: Optional[float] = None,
                 checkpoint_size_mb: float = 100.0,
                 restart_cost_s: float = 0.0,
                 monitor: Optional[Monitor] = None,
                 tracer=None, span_parent=None,
                 name: str = "job"):
        if work_s <= 0:
            raise ValueError("work_s must be positive")
        if (policy is None) != (store is None):
            raise ValueError(
                "checkpointing needs both a policy and a store "
                "(or neither, for the restart-from-scratch baseline)")
        if quantum_s is not None and quantum_s <= 0:
            raise ValueError("quantum_s must be positive")
        if checkpoint_size_mb <= 0:
            raise ValueError("checkpoint_size_mb must be positive")
        if restart_cost_s < 0:
            raise ValueError("restart_cost_s must be non-negative")
        self.env = env
        self.work_s = float(work_s)
        self.policy = policy
        self.store = store
        self.journal = journal
        self.quantum_s = quantum_s
        self.checkpoint_size_mb = float(checkpoint_size_mb)
        self.restart_cost_s = float(restart_cost_s)
        self.monitor = monitor
        self.name = name
        #: Optional :class:`~repro.observability.Tracer`: the run is a
        #: ``recovery.job`` span with ``recovery.checkpoint`` /
        #: ``recovery.restore`` children and ``crash`` events.
        self.tracer = tracer
        if tracer is not None and tracer.env is None:
            tracer.bind(env)
        self._span = (tracer.start_span("recovery.job", job=name,
                                        parent=span_parent,
                                        work_s=self.work_s)
                      if tracer is not None else None)
        self._phase_span = None
        #: Durable progress: work covered by the last committed
        #: checkpoint (or 0 until the first one commits).
        self.done_s = 0.0
        self.crashes = 0
        self.lost_work_s = 0.0
        self.checkpoint_time_s = 0.0
        self.recovery_time_s = 0.0
        self.downtime_s = 0.0
        self.checkpoints_written = 0
        self.restores = 0
        self._up = True
        self._needs_recovery = False
        self._repaired = None
        self.started_at = env.now
        self.finished_at: Optional[float] = None
        self.done = env.event()
        self.proc = env.process(self._run())

    # -- CrashRestart target protocol --------------------------------------
    @property
    def is_up(self) -> bool:
        return self._up

    def fail(self) -> None:
        self._up = False
        if self.proc.is_alive:
            self.proc.interrupt("executor-crash")

    def repair(self) -> None:
        self._up = True
        if self._repaired is not None and not self._repaired.triggered:
            self._repaired.succeed()

    # -- execution ---------------------------------------------------------
    def _segment_s(self) -> float:
        """Work to perform before the next checkpoint boundary."""
        remaining = self.work_s - self.done_s
        if self.policy is None:
            return remaining
        interval = self.policy.interval_s()
        if self.quantum_s is not None:
            # Round half-up (not banker's): the nearest whole number of
            # supersteps, deterministically.
            quanta = max(1, int(interval / self.quantum_s + 0.5))
            interval = quanta * self.quantum_s
        return min(remaining, interval)

    def _run(self):
        while self.done_s < self.work_s - _EPS:
            phase = "work"
            phase_t0 = self.env.now
            try:
                if self._needs_recovery:
                    phase = "recover"
                    phase_t0 = self.env.now
                    if self.tracer is not None:
                        self._phase_span = self.tracer.start_span(
                            "recovery.restore", parent=self._span)
                    yield from self._recover()
                    if self._phase_span is not None:
                        self.tracer.end_span(self._phase_span,
                                             progress=self.done_s)
                        self._phase_span = None
                    self.recovery_time_s += self.env.now - phase_t0
                    self._needs_recovery = False
                phase = "work"
                segment = self._segment_s()
                phase_t0 = self.env.now
                yield self.env.timeout(segment)
                if (self.policy is not None
                        and self.done_s + segment < self.work_s - _EPS):
                    # A crash from here on loses the segment *and* the
                    # partial write: the snapshot commits atomically at
                    # the end of store.save().
                    ckpt_t0 = self.env.now
                    if self.tracer is not None:
                        self._phase_span = self.tracer.start_span(
                            "recovery.checkpoint", parent=self._span,
                            progress=self.done_s + segment)
                    yield from self.store.save(
                        {"progress": self.done_s + segment},
                        self.checkpoint_size_mb)
                    if self._phase_span is not None:
                        self.tracer.end_span(self._phase_span)
                        self._phase_span = None
                    self.checkpoint_time_s += self.env.now - ckpt_t0
                    self.checkpoints_written += 1
                    if self.journal is not None and len(self.journal):
                        # The snapshot covers every transition journaled so
                        # far: replay cost resets at each checkpoint.
                        self.journal.truncate(
                            self.journal.records[-1].seq)
                    if self.monitor is not None:
                        self.monitor.count("checkpoints", key=self.name)
                self.done_s += segment
            except Interrupt:
                self.crashes += 1
                if self._phase_span is not None:
                    self.tracer.end_span(self._phase_span,
                                         status="interrupted")
                    self._phase_span = None
                if self._span is not None:
                    self.tracer.add_event(self._span, "crash", phase=phase)
                if self.policy is not None:
                    self.policy.record_failure(self.env.now)
                if phase == "recover":
                    self.recovery_time_s += self.env.now - phase_t0
                else:
                    self.lost_work_s += self.env.now - phase_t0
                if self.monitor is not None:
                    self.monitor.count("crashes", key=self.name)
                down_t0 = self.env.now
                self._repaired = self.env.event()
                if self._up:
                    # Repair raced the interrupt delivery: no wait needed.
                    self._repaired.succeed()
                yield self._repaired
                self._repaired = None
                self.downtime_s += self.env.now - down_t0
                self._needs_recovery = True
        self.finished_at = self.env.now
        if self._span is not None:
            self.tracer.end_span(self._span, crashes=self.crashes,
                                 checkpoints=self.checkpoints_written,
                                 restores=self.restores)
        self.done.succeed(self)

    def _recover(self):
        """Pay the price of coming back: restart, restore, replay."""
        if self.restart_cost_s > 0:
            yield self.env.timeout(self.restart_cost_s)
        restored = 0.0
        if self.store is not None and len(self.store) > 0:
            ckpt = yield from self.store.restore()
            if ckpt is not None:
                restored = float(ckpt.payload["progress"])
                self.restores += 1
        if restored < self.done_s - _EPS:
            # Fell back past the newest checkpoint (corruption): the work
            # between the restored snapshot and the newest one is lost too.
            self.lost_work_s += self.done_s - restored
        self.done_s = restored
        if self.journal is not None:
            replay_s = self.journal.replay_time_s()
            self.journal.replay()
            if replay_s > 0:
                yield self.env.timeout(replay_s)

    # -- accounting --------------------------------------------------------
    @property
    def corrupt_fallbacks(self) -> int:
        return self.store.corrupt_fallbacks if self.store is not None else 0

    def stats(self) -> RecoveryStats:
        if self.finished_at is None:
            raise RuntimeError(f"job {self.name} has not finished")
        return RecoveryStats(
            work_s=self.work_s,
            makespan_s=self.finished_at - self.started_at,
            crashes=self.crashes,
            lost_work_s=self.lost_work_s,
            checkpoint_time_s=self.checkpoint_time_s,
            recovery_time_s=self.recovery_time_s,
            downtime_s=self.downtime_s,
            checkpoints_written=self.checkpoints_written,
            restores=self.restores,
            corrupt_fallbacks=self.corrupt_fallbacks,
        )
