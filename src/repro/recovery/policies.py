"""Checkpoint interval policies: how often to pay for durability.

Checkpointing trades overhead for lost work: checkpoint every ``tau``
seconds and a fault-free run pays ``C / tau`` of its time in checkpoint
cost ``C``, while each crash loses ``tau / 2`` of progress on average.
Minimizing the sum gives the classic Young/Daly first-order optimum

    tau* = sqrt(2 * C * MTBF)

valid for ``C << tau << MTBF`` — the regime every practical system
(HPC checkpoint/restart, training-run snapshotting) operates in.

The policies here only answer "how long until the next checkpoint?";
the mechanics (what gets written where, what a restore costs) live in
:mod:`repro.recovery.store` and :mod:`repro.recovery.job`.
"""

from __future__ import annotations

import math
from typing import Any, Optional


def daly_interval_s(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """The Young/Daly first-order optimal checkpoint interval."""
    if checkpoint_cost_s <= 0:
        raise ValueError("checkpoint_cost_s must be positive")
    if mtbf_s <= 0:
        raise ValueError("mtbf_s must be positive")
    return math.sqrt(2.0 * checkpoint_cost_s * mtbf_s)


class CheckpointPolicy:
    """Base policy: a (possibly state-dependent) checkpoint interval."""

    name = "checkpoint"

    def interval_s(self) -> float:
        """Seconds of work to perform before the next checkpoint."""
        raise NotImplementedError

    def record_failure(self, now: float) -> None:
        """Observation hook: a crash happened at sim time ``now``.

        The base policies ignore it; :class:`AdaptiveCheckpoint` feeds it
        into its online MTBF estimate.
        """


class PeriodicCheckpoint(CheckpointPolicy):
    """Checkpoint every fixed ``interval_s`` seconds of work."""

    name = "periodic"

    def __init__(self, interval_s: float):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self._interval_s = float(interval_s)

    def interval_s(self) -> float:
        return self._interval_s

    def __repr__(self) -> str:
        return f"PeriodicCheckpoint({self._interval_s:g}s)"


class DalyOptimalCheckpoint(CheckpointPolicy):
    """The Young/Daly interval computed from the active fault model.

    ``fault_model`` is anything exposing ``mtbf_s`` — normally the
    :class:`~repro.faults.models.CrashRestart` injector driving the
    executor, so the policy is *honest*: it optimizes against the failure
    regime actually in force, not a configuration guess. Pass ``mtbf_s``
    directly when no injector object exists.
    """

    name = "daly"

    def __init__(self, checkpoint_cost_s: float,
                 fault_model: Optional[Any] = None,
                 mtbf_s: Optional[float] = None):
        if (fault_model is None) == (mtbf_s is None):
            raise ValueError("pass exactly one of fault_model or mtbf_s")
        self.checkpoint_cost_s = float(checkpoint_cost_s)
        self.fault_model = fault_model
        self._mtbf_s = mtbf_s
        # Validate eagerly: a bad cost/MTBF should fail at construction.
        daly_interval_s(self.checkpoint_cost_s, self.mtbf_s)

    @property
    def mtbf_s(self) -> float:
        if self.fault_model is not None:
            return float(self.fault_model.mtbf_s)
        return float(self._mtbf_s)

    def interval_s(self) -> float:
        return daly_interval_s(self.checkpoint_cost_s, self.mtbf_s)

    def __repr__(self) -> str:
        return (f"DalyOptimalCheckpoint(C={self.checkpoint_cost_s:g}s, "
                f"MTBF={self.mtbf_s:g}s -> {self.interval_s():g}s)")


class AdaptiveCheckpoint(CheckpointPolicy):
    """Young/Daly with the MTBF re-estimated online from observed crashes.

    Starts from ``initial_mtbf_s`` (an operator guess, possibly badly
    wrong); every :meth:`record_failure` updates the maximum-likelihood
    exponential estimate ``elapsed / failures`` and the interval tracks
    ``sqrt(2 * C * MTBF_hat)``. Until ``min_observations`` failures have
    been seen the guess is kept — one sample is not a regime.
    """

    name = "adaptive"

    def __init__(self, checkpoint_cost_s: float, initial_mtbf_s: float,
                 min_observations: int = 2, started_at: float = 0.0):
        daly_interval_s(checkpoint_cost_s, initial_mtbf_s)  # validates
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        self.checkpoint_cost_s = float(checkpoint_cost_s)
        self.initial_mtbf_s = float(initial_mtbf_s)
        self.min_observations = min_observations
        self.started_at = float(started_at)
        self.failure_times: list[float] = []

    def record_failure(self, now: float) -> None:
        self.failure_times.append(float(now))

    @property
    def observed_failures(self) -> int:
        return len(self.failure_times)

    def mtbf_estimate_s(self) -> float:
        """MLE for an exponential failure process, or the initial guess."""
        if len(self.failure_times) < self.min_observations:
            return self.initial_mtbf_s
        elapsed = self.failure_times[-1] - self.started_at
        if elapsed <= 0:
            return self.initial_mtbf_s
        return elapsed / len(self.failure_times)

    def interval_s(self) -> float:
        return daly_interval_s(self.checkpoint_cost_s,
                               self.mtbf_estimate_s())

    def __repr__(self) -> str:
        return (f"AdaptiveCheckpoint(C={self.checkpoint_cost_s:g}s, "
                f"MTBF_hat={self.mtbf_estimate_s():g}s from "
                f"{self.observed_failures} failures)")
