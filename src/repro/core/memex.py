"""The Distributed Systems Memex (paper Challenge C6).

The paper proposes archiving "large amounts of operational traces
collected from the distributed systems that currently underpin our
society", and adds a second aspect: *the preservation of original designs
and of their origins* — the artifacts, decisions, and discussions that
led to them, before the generations that produced them retire.

The Memex here stores three entry kinds — designs (with their
C8 provenance documents), operational traces (via the Trace Archive
header), and dissemination artifacts — searchable by keyword, domain,
and era, with a *heritage report* that locates the gaps the paper warns
about (eras/domains with nothing preserved, designs preserved without
their decision provenance).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence, Union

from repro.core.process import DesignDocument

ENTRY_KINDS = ("design", "trace", "artifact")


@dataclass
class MemexEntry:
    """One preserved item."""

    kind: str
    name: str
    year: int
    domain: str
    keywords: frozenset[str] = frozenset()
    #: For designs: the provenance document; for traces: the archive
    #: header; for artifacts: free-form metadata.
    payload: Any = None

    def __post_init__(self):
        if self.kind not in ENTRY_KINDS:
            raise ValueError(f"kind must be one of {ENTRY_KINDS}")

    @property
    def has_provenance(self) -> bool:
        if self.kind != "design":
            return True
        return isinstance(self.payload, DesignDocument) and bool(
            self.payload.events)


class DistributedSystemsMemex:
    """The archive: add, search, and audit preservation coverage."""

    def __init__(self, name: str = "ds-memex"):
        self.name = name
        self.entries: list[MemexEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    # -- ingestion ----------------------------------------------------------
    def add(self, entry: MemexEntry) -> MemexEntry:
        if any(e.name == entry.name and e.kind == entry.kind
               for e in self.entries):
            raise ValueError(
                f"{entry.kind} entry {entry.name!r} already archived")
        self.entries.append(entry)
        return entry

    def preserve_design(self, document: DesignDocument, year: int,
                        domain: str,
                        keywords: Iterable[str] = ()) -> MemexEntry:
        """Archive a design with its full provenance document."""
        return self.add(MemexEntry(
            kind="design", name=document.problem, year=year, domain=domain,
            keywords=frozenset(keywords), payload=document))

    def preserve_trace(self, header: dict, year: int,
                       keywords: Iterable[str] = ()) -> MemexEntry:
        """Archive a Trace Archive's header (the FAIR metadata)."""
        return self.add(MemexEntry(
            kind="trace", name=header["name"], year=year,
            domain=header.get("domain", "unknown"),
            keywords=frozenset(keywords), payload=header))

    # -- search -------------------------------------------------------------
    def search(self, keyword: Optional[str] = None,
               domain: Optional[str] = None,
               kind: Optional[str] = None,
               era: Optional[tuple[int, int]] = None) -> list[MemexEntry]:
        """All entries matching every given criterion."""
        hits = []
        for entry in self.entries:
            if keyword is not None and keyword not in entry.keywords:
                continue
            if domain is not None and entry.domain != domain:
                continue
            if kind is not None and entry.kind != kind:
                continue
            if era is not None and not era[0] <= entry.year <= era[1]:
                continue
            hits.append(entry)
        return sorted(hits, key=lambda e: (e.year, e.name))

    def domains(self) -> list[str]:
        return sorted({e.domain for e in self.entries})

    # -- heritage audit -----------------------------------------------------
    def heritage_report(self, first_year: int, last_year: int,
                        decade_size: int = 10) -> dict[str, Any]:
        """Where are we losing heritage?

        Reports, per domain, the decades with nothing preserved, plus the
        designs preserved *without* decision provenance — the two loss
        modes C6 names.
        """
        if last_year < first_year:
            raise ValueError("last_year must be >= first_year")
        decades = list(range(first_year - first_year % decade_size,
                             last_year + 1, decade_size))
        gaps: dict[str, list[int]] = {}
        for domain in self.domains():
            years = {e.year for e in self.entries if e.domain == domain}
            gaps[domain] = [
                d for d in decades
                if not any(d <= y < d + decade_size for y in years)
            ]
        missing_provenance = sorted(
            e.name for e in self.entries
            if e.kind == "design" and not e.has_provenance)
        designs = [e for e in self.entries if e.kind == "design"]
        return {
            "entries": len(self.entries),
            "domains": self.domains(),
            "decade_gaps": gaps,
            "designs_without_provenance": missing_provenance,
            "provenance_coverage": (
                1.0 - len(missing_provenance) / len(designs)
                if designs else 1.0),
        }

    # -- persistence -----------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        with path.open("w") as fh:
            fh.write(json.dumps({"memex": self.name,
                                 "entries": len(self.entries)}) + "\n")
            for entry in self.entries:
                payload: Any
                if isinstance(entry.payload, DesignDocument):
                    payload = json.loads(entry.payload.to_json())
                else:
                    payload = entry.payload
                fh.write(json.dumps({
                    "kind": entry.kind, "name": entry.name,
                    "year": entry.year, "domain": entry.domain,
                    "keywords": sorted(entry.keywords),
                    "payload": payload,
                }, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "DistributedSystemsMemex":
        path = Path(path)
        with path.open() as fh:
            header = json.loads(fh.readline())
            memex = cls(name=header["memex"])
            for line in fh:
                data = json.loads(line)
                payload = data["payload"]
                if data["kind"] == "design" and isinstance(payload, dict) \
                        and "events" in payload:
                    document = DesignDocument(problem=payload["problem"])
                    for event in payload["events"]:
                        document.log(event["iteration"], event["stage"],
                                     event["action"],
                                     note=event.get("note", ""))
                    payload = document
                memex.entries.append(MemexEntry(
                    kind=data["kind"], name=data["name"],
                    year=data["year"], domain=data["domain"],
                    keywords=frozenset(data["keywords"]),
                    payload=payload))
        if len(memex.entries) != header["entries"]:
            raise ValueError(f"memex file {path} truncated")
        return memex
