"""Dissemination artifacts and checklists (paper §3.6).

The framework treats dissemination itself as a design problem: articles,
free open-source software (FOSS), and FAIR / free open-access data (FOAD)
each get a checklist-backed artifact type, and a :class:`DisseminationPlan`
validates that a design effort ships all three where applicable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class ArtifactKind(enum.Enum):
    ARTICLE = "article"
    SOFTWARE = "software"   # FOSS
    DATA = "data"           # FAIR / FOAD


#: The FAIR guiding principles (Wilkinson et al., the paper's [47]).
FAIR_CHECKLIST: tuple[str, ...] = (
    "findable: globally unique persistent identifier",
    "findable: rich metadata",
    "accessible: retrievable by identifier via open protocol",
    "accessible: metadata persists even when data is gone",
    "interoperable: formal shared knowledge representation",
    "interoperable: qualified references to other (meta)data",
    "reusable: clear usage license",
    "reusable: detailed provenance",
)

#: Checklists per artifact kind; items must be checked off before release.
CHECKLISTS: dict[ArtifactKind, tuple[str, ...]] = {
    ArtifactKind.ARTICLE: (
        "states the design problem and its archetype",
        "describes the design space and exploration process",
        "reports conceptual analysis",
        "reports experimental analysis",
        "discusses threats to validity and reproducibility",
    ),
    ArtifactKind.SOFTWARE: (
        "open-source license",
        "documented public API",
        "automated tests",
        "continuous integration configured",
        "versioned release",
    ),
    ArtifactKind.DATA: FAIR_CHECKLIST,
}


@dataclass
class Artifact:
    """A dissemination artifact with its release checklist."""

    kind: ArtifactKind
    title: str
    checked: set[str] = field(default_factory=set)

    @property
    def checklist(self) -> tuple[str, ...]:
        return CHECKLISTS[self.kind]

    def check(self, item: str) -> None:
        if item not in self.checklist:
            raise KeyError(
                f"{item!r} is not on the {self.kind.value} checklist")
        self.checked.add(item)

    def missing(self) -> list[str]:
        return [item for item in self.checklist if item not in self.checked]

    @property
    def release_ready(self) -> bool:
        return not self.missing()

    @property
    def completeness(self) -> float:
        return len(self.checked) / len(self.checklist)


@dataclass
class DisseminationPlan:
    """Stage 8 of the BDC as a plan: which artifacts a design effort ships."""

    design_name: str
    artifacts: list[Artifact] = field(default_factory=list)

    def add(self, kind: ArtifactKind, title: str) -> Artifact:
        artifact = Artifact(kind=kind, title=title)
        self.artifacts.append(artifact)
        return artifact

    def of_kind(self, kind: ArtifactKind) -> list[Artifact]:
        return [a for a in self.artifacts if a.kind is kind]

    @property
    def covers_all_kinds(self) -> bool:
        """Whether the plan ships article + software + data (the paper's
        full stage-8 expansion)."""
        return all(self.of_kind(kind) for kind in ArtifactKind)

    def release_report(self) -> dict[str, dict[str, object]]:
        return {
            artifact.title: {
                "kind": artifact.kind.value,
                "ready": artifact.release_ready,
                "completeness": round(artifact.completeness, 3),
                "missing": artifact.missing(),
            }
            for artifact in self.artifacts
        }
