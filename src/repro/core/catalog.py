"""Catalogs of the framework: Tables 1–3, problem archetypes, Altshuller.

Everything a designer would look up lives here as data, cross-linked:
principles (Table 2) ↔ challenges (Table 3), problem archetypes P1–P5
(§3.4) with problem sources S1–S3, the framework overview (Table 1), and
the two Altshuller assessments Challenge C2 cites (levels of creativity,
and performance baselines).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


# ---------------------------------------------------------------------------
# Table 1: the framework overview.
# ---------------------------------------------------------------------------
FRAMEWORK_OVERVIEW: dict[str, dict[str, str]] = {
    "Who?": {
        "Stakeholders": "designers, scientists, engineers, students, society",
    },
    "What?": {
        "Central Paradigm": "design, different from science and engineering",
        "Focus": "ecosystems, systems within; structure, organization, "
                 "dynamics",
        "Concerns": "functional and non-functional properties; phenomena, "
                    "evolution",
    },
    "How?": {
        "Design Thinking": "abductive thinking, processes, co-evolving "
                           "problem-solution",
        "Exploration": "design space, process to explore",
        "Problem-finding": "structured, ill-defined, wicked",
        "Problem-solving": "pragmatic, innovative, ethical",
        "Reporting": "articles, software, data",
    },
}


# ---------------------------------------------------------------------------
# Table 2: the eight core principles of MCS design.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Principle:
    index: str            # "P1".."P8"
    category: str         # Highest / Systems / Peopleware / Methodology
    statement: str
    key_aspects: str


PRINCIPLES: dict[str, Principle] = {p.index: p for p in [
    Principle("P1", "Highest", "Design needs design.", "design of design"),
    Principle("P2", "Systems", "This is the Age of Distributed Ecosystems.",
              "age of distributed ecosystems"),
    Principle("P3", "Systems",
              "Dynamic non-functional properties and phenomena are "
              "first-class concerns.", "NFRs, phenomena"),
    Principle("P4", "Systems",
              "Resource Management and Scheduling, and its interplay with "
              "various sources of information to achieve local and global "
              "Self-Awareness, are key concerns.", "RM&S, self-awareness"),
    Principle("P5", "Peopleware",
              "Education practices for MCS must ensure the competence and "
              "integrity needed for experimenting, creating, and operating "
              "ecosystems.", "education in design"),
    Principle("P6", "Peopleware",
              "Design communities can foster and curate pragmatic, "
              "innovative, and ethical design practices.",
              "pragmatic, innovative, ethical"),
    Principle("P7", "Methodology",
              "We understand and create together a science, practice, and "
              "culture of MCS design.", "design science, practice, culture"),
    Principle("P8", "Methodology",
              "We are aware of the history and evolution of MCS designs, "
              "key debates, and evolving patterns.",
              "evolution and emergence"),
]}


# ---------------------------------------------------------------------------
# Table 3: the ten challenges, each linked to its principles.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Challenge:
    index: str            # "C1".."C10"
    category: str
    key_aspects: str
    statement: str
    principles: tuple[str, ...]  # indices into PRINCIPLES


CHALLENGES: dict[str, Challenge] = {c.index: c for c in [
    Challenge("C1", "Highest", "Design of design",
              "Creating processes that enable and facilitate pragmatic and "
              "innovative MCS designs.", ("P1",)),
    Challenge("C2", "Highest", "What is good design?",
              "Understand (automatically) what is good design.", ("P1",)),
    Challenge("C3", "Highest", "Design space exploration",
              "Simulation-based approaches and experimentation for design "
              "space exploration; calibration and reproducibility are key.",
              ("P1",)),
    Challenge("C4", "Systems", "Design for ecosystems",
              "Design for MCS, not for individual systems.", ("P2",)),
    Challenge("C5", "Systems", "Catalog for MCS design",
              "Establish a catalog of components for MCS design.",
              ("P3", "P4")),
    Challenge("C6", "Peopleware", "Education, curriculum",
              "Create a teachable common body of knowledge for MCS designs, "
              "focusing on pragmatism, innovation, and ethics.", ("P5",)),
    Challenge("C7", "Peopleware", "Community engagement",
              "Create communities and environments for people to engage "
              "with the design and operation of ecosystems.", ("P6",)),
    Challenge("C8", "Methodology", "Documenting designs",
              "Design a formalism for documenting designs.",
              ("P5", "P6", "P7")),
    Challenge("C9", "Methodology", "Design in practice",
              "Understand MCS design in practice: how and when do "
              "practitioners design what they design?", ("P7",)),
    Challenge("C10", "Methodology", "Organizational similarity",
              "Organizational similarity in MCS design.", ("P7",)),
]}


def challenges_for_principle(principle_index: str) -> list[Challenge]:
    """All challenges that cite the given principle (Table 3's Pr. column)."""
    if principle_index not in PRINCIPLES:
        raise KeyError(f"unknown principle {principle_index!r}")
    return [c for c in CHALLENGES.values()
            if principle_index in c.principles]


# ---------------------------------------------------------------------------
# §3.4: problem archetypes P1-P5 and problem sources S1-S3.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ProblemArchetype:
    index: str
    name: str
    description: str
    #: Which problem-finding sources apply (S1-S3, or a process note).
    finding: tuple[str, ...]


PROBLEM_SOURCES: dict[str, str] = {
    "S1": "peer-reviewed qualitative and quantitative studies on "
          "ecosystems and on systems within them",
    "S2": "discussion with experts; analysis of best-practices, technical "
          "reports, tech blogs, best-practice books",
    "S3": "own thought and lab experiments on key technology trends and "
          "known limitations",
}

PROBLEM_ARCHETYPES: dict[str, ProblemArchetype] = {
    a.index: a for a in [
        ProblemArchetype("P1", "ecosystem life-cycle",
                         "problems in ecosystem life-cycle, including for "
                         "new and emerging processes, services, and "
                         "ecosystems", ("S1", "S2", "S3")),
        ProblemArchetype("P2", "needs and phenomena",
                         "problems related to new and emerging needs of "
                         "ecosystem-clients and -operators; newly "
                         "discovered, emerging, and recurring phenomena; "
                         "harnessing new technology", ("S1", "S2", "S3")),
        ProblemArchetype("P3", "legacy components",
                         "problems related to leveraging and maintaining "
                         "legacy components", ("S1", "S2", "S3")),
        ProblemArchetype("P4", "morphology of ecosystems",
                         "understanding how new and emerging technology "
                         "actually works in practice or in ecosystems, and "
                         "what new phenomena appear",
                         ("empirical-science-process",)),
        ProblemArchetype("P5", "unexplored design space",
                         "problems related to previously unexplored parts "
                         "of the design space, driven by curiosity",
                         ("morphological-analysis",)),
    ]
}


# ---------------------------------------------------------------------------
# Challenge C2: Altshuller's levels, for assessing designs.
# ---------------------------------------------------------------------------
class CreativityLevel(enum.IntEnum):
    """Altshuller's five levels of design, by long-term impact."""

    TRIVIAL = 1       # existing design, minimal local adaptation
    NORMAL = 2        # selection among designs + careful adaptation
    NOVEL = 3         # significant adaptation of an existing design
    FUNDAMENTAL = 4   # new design or important feature (big data, FaaS)
    OUTSTANDING = 5   # a completely new ecosystem (the Internet, the cloud)


ALTSHULLER_LEVELS: dict[CreativityLevel, str] = {
    CreativityLevel.TRIVIAL:
        "using an existing design and minimally adapting it for local "
        "situations",
    CreativityLevel.NORMAL:
        "selecting one of several designs, and adapting the selected "
        "design after careful reasoning",
    CreativityLevel.NOVEL:
        "entailing significant adaptation of an existing design",
    CreativityLevel.FUNDAMENTAL:
        "development of a new design or important feature, or the complete "
        "adaptation of an existing design (e.g., big data, serverless "
        "computing)",
    CreativityLevel.OUTSTANDING:
        "a completely new ecosystem leading to significant scientific or "
        "technical advance (e.g., the Internet, the cloud)",
}

#: Altshuller's four performance baselines a design is judged against.
PERFORMANCE_BASELINES: tuple[str, ...] = (
    "random design", "naive design", "current practice",
    "ideal or optimal alternative")


def assess_creativity(reuses_existing: bool, adaptation_extent: float,
                      creates_new_feature: bool,
                      creates_new_ecosystem: bool) -> CreativityLevel:
    """Derive an Altshuller level from structured answers.

    ``adaptation_extent`` in [0, 1]: how much of the prior design changed.
    The mapping follows the level definitions: new ecosystem > new
    feature/design > significant adaptation > careful selection >
    minimal adaptation.
    """
    if not 0 <= adaptation_extent <= 1:
        raise ValueError("adaptation_extent must be in [0, 1]")
    if creates_new_ecosystem:
        return CreativityLevel.OUTSTANDING
    if creates_new_feature or adaptation_extent >= 0.9:
        return CreativityLevel.FUNDAMENTAL
    if reuses_existing and adaptation_extent >= 0.4:
        return CreativityLevel.NOVEL
    if reuses_existing and adaptation_extent >= 0.1:
        return CreativityLevel.NORMAL
    return CreativityLevel.TRIVIAL
