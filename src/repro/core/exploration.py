"""Design-space exploration processes (paper Figures 6 and 7).

Four processes share one budgeted interface:

- :class:`FreeExploration` — pure design abduction: uniform random
  sampling of the whole space. Can find radical designs, but success
  probability shrinks with space size.
- :class:`FixTheWhatExploration` — pins some dimensions ("fixing the
  concepts / technology at play") and explores the rest.
- :class:`FixTheHowExploration` — restricts the *moves*: local search from
  a current design via one-dimension re-framings (hill climbing with
  sideways moves).
- :class:`CoEvolvingExploration` — iterates any inner process; when
  progress stalls, *evolves the problem itself* (a new landscape epoch),
  keeping the best design found per problem — the Figure 7 narrative.

An exploration records problems posed, solutions found, and failures, so
benchmarks can reproduce the figure's annotated trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.space import Candidate, DesignProblem, DesignSpace


@dataclass
class ExplorationResult:
    """The Figure 7 trajectory of one exploration run."""

    process: str
    problems_posed: int = 0
    solutions: list[tuple[Candidate, float]] = field(default_factory=list)
    failures: int = 0
    evaluations: int = 0
    best_quality: float = 0.0
    best_candidate: Optional[Candidate] = None
    #: Per-problem best quality (non-trivial only for co-evolving runs).
    per_problem_best: list[float] = field(default_factory=list)

    def record_solution(self, candidate: Candidate, quality: float) -> None:
        self.solutions.append((candidate, quality))
        if quality > self.best_quality:
            self.best_quality = quality
            self.best_candidate = candidate

    @property
    def succeeded(self) -> bool:
        return bool(self.solutions)

    @property
    def yield_per_evaluation(self) -> float:
        if self.evaluations == 0:
            return 0.0
        return len(self.solutions) / self.evaluations


class Explorer:
    """Base class: explore ``problem`` within an evaluation budget."""

    name = "abstract"

    def __init__(self, rng: np.random.Generator):
        self.rng = rng

    def explore(self, problem: DesignProblem,
                budget: int) -> ExplorationResult:
        raise NotImplementedError

    def _result(self) -> ExplorationResult:
        return ExplorationResult(process=self.name, problems_posed=1)


class FreeExploration(Explorer):
    """Uniform random sampling of the full design space."""

    name = "free"

    def explore(self, problem: DesignProblem,
                budget: int) -> ExplorationResult:
        result = self._result()
        for _ in range(budget):
            candidate = problem.space.random_candidate(self.rng)
            quality = problem.evaluate(candidate)
            result.evaluations += 1
            if quality >= problem.satisfice_threshold:
                result.record_solution(candidate, quality)
            else:
                result.failures += 1
                if quality > result.best_quality:
                    result.best_quality = quality
                    result.best_candidate = candidate
        result.per_problem_best = [result.best_quality]
        return result


class FixTheWhatExploration(Explorer):
    """Fix a fraction of dimensions to a probe candidate's options.

    Spends a small scouting budget choosing what to fix, then explores the
    restricted space. Trades radical innovation for success likelihood, as
    the paper describes.
    """

    name = "fix-the-what"

    def __init__(self, rng: np.random.Generator, fix_fraction: float = 0.5,
                 scout_budget: int = 16):
        super().__init__(rng)
        if not 0 <= fix_fraction < 1:
            raise ValueError("fix_fraction must be in [0, 1)")
        self.fix_fraction = fix_fraction
        self.scout_budget = scout_budget

    def explore(self, problem: DesignProblem,
                budget: int) -> ExplorationResult:
        result = self._result()
        scout = min(self.scout_budget, max(budget // 4, 1))
        best_probe, best_quality = None, -1.0
        for _ in range(scout):
            probe = problem.space.random_candidate(self.rng)
            quality = problem.evaluate(probe)
            result.evaluations += 1
            if quality > best_quality:
                best_probe, best_quality = probe, quality
        # Fix the chosen fraction of dimensions to the best probe's options.
        dims = [d.name for d in problem.space.dimensions]
        n_fix = int(len(dims) * self.fix_fraction)
        fixed_dims = list(self.rng.choice(dims, size=n_fix, replace=False))
        fixed = {d: best_probe[d] for d in fixed_dims}
        subspace = problem.space.restrict(fixed)
        for _ in range(budget - result.evaluations):
            candidate = subspace.random_candidate(self.rng)
            quality = problem.evaluate(candidate)
            result.evaluations += 1
            if quality >= problem.satisfice_threshold:
                result.record_solution(candidate, quality)
            else:
                result.failures += 1
                if quality > result.best_quality:
                    result.best_quality = quality
                    result.best_candidate = candidate
        result.per_problem_best = [result.best_quality]
        return result


class FixTheHowExploration(Explorer):
    """Local search: only one-dimension re-framings of the current design."""

    name = "fix-the-how"

    def __init__(self, rng: np.random.Generator, restarts: int = 4):
        super().__init__(rng)
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        self.restarts = restarts

    def explore(self, problem: DesignProblem,
                budget: int) -> ExplorationResult:
        result = self._result()
        per_restart = max(budget // self.restarts, 1)
        for _ in range(self.restarts):
            if result.evaluations >= budget:
                break
            current = problem.space.random_candidate(self.rng)
            current_q = problem.evaluate(current)
            result.evaluations += 1
            spent = 1
            while spent < per_restart and result.evaluations < budget:
                neighbors = problem.space.neighbors(current)
                idx = self.rng.permutation(len(neighbors))
                improved = False
                for i in idx:
                    if spent >= per_restart or result.evaluations >= budget:
                        break
                    quality = problem.evaluate(neighbors[int(i)])
                    result.evaluations += 1
                    spent += 1
                    if quality > current_q:
                        current, current_q = neighbors[int(i)], quality
                        improved = True
                        break
                if not improved:
                    break  # local optimum
            if current_q >= problem.satisfice_threshold:
                result.record_solution(current, current_q)
            else:
                result.failures += 1
                if current_q > result.best_quality:
                    result.best_quality = current_q
                    result.best_candidate = current
        result.per_problem_best = [result.best_quality]
        return result


class CoEvolvingExploration(Explorer):
    """Co-evolving problem-solution exploration (Figure 7).

    Runs an inner explorer; when an iteration fails to improve on the
    problem's best design, the *problem evolves* — ``evolve_problem`` is
    asked for the next problem (typically a shifted landscape epoch or a
    re-thresholded variant). The best design per problem is kept, so a
    satisficing solution stays available after the first success.
    """

    name = "co-evolving"

    def __init__(self, rng: np.random.Generator, inner: Explorer,
                 evolve_problem, max_problems: int = 8,
                 stall_iterations: int = 2):
        super().__init__(rng)
        self.inner = inner
        self.evolve_problem = evolve_problem
        self.max_problems = max_problems
        self.stall_iterations = stall_iterations

    def explore(self, problem: DesignProblem,
                budget: int) -> ExplorationResult:
        result = ExplorationResult(process=self.name)
        remaining = budget
        current_problem = problem
        for problem_idx in range(self.max_problems):
            if remaining <= 0:
                break
            result.problems_posed += 1
            problem_best = 0.0
            stalls = 0
            while remaining > 0 and stalls < self.stall_iterations:
                slice_budget = min(remaining,
                                   max(budget // (self.max_problems * 2), 8))
                inner_result = self.inner.explore(current_problem,
                                                  slice_budget)
                remaining -= inner_result.evaluations
                result.evaluations += inner_result.evaluations
                result.failures += inner_result.failures
                for candidate, quality in inner_result.solutions:
                    result.record_solution(candidate, quality)
                iteration_best = max(inner_result.best_quality, problem_best)
                if iteration_best > problem_best + 1e-12:
                    problem_best = iteration_best
                    stalls = 0
                else:
                    stalls += 1
            result.per_problem_best.append(problem_best)
            if remaining <= 0:
                break
            evolved = self.evolve_problem(current_problem, problem_idx)
            if evolved is None:
                break
            current_problem = evolved
        return result


def compare_explorers(problem_factory, explorers: dict[str, Explorer],
                      budget: int, repetitions: int = 10
                      ) -> dict[str, dict[str, float]]:
    """Head-to-head comparison across fresh problem instances.

    ``problem_factory(rep)`` must return a fresh :class:`DesignProblem`
    per repetition so no explorer benefits from another's evaluations.
    Returns per-explorer success rate, mean solutions, and mean best
    quality — the Figure 6 comparison table.
    """
    stats = {name: {"successes": 0, "solutions": 0.0, "best_quality": 0.0,
                    "problems_posed": 0.0}
             for name in explorers}
    for rep in range(repetitions):
        for name, explorer in explorers.items():
            problem = problem_factory(rep)
            result = explorer.explore(problem, budget)
            stats[name]["successes"] += int(result.succeeded)
            stats[name]["solutions"] += len(result.solutions)
            stats[name]["best_quality"] += result.best_quality
            stats[name]["problems_posed"] += result.problems_posed
    return {
        name: {
            "success_rate": s["successes"] / repetitions,
            "mean_solutions": s["solutions"] / repetitions,
            "mean_best_quality": s["best_quality"] / repetitions,
            "mean_problems_posed": s["problems_posed"] / repetitions,
        }
        for name, s in stats.items()
    }
