"""The ATLARGE design framework, executable (the paper's primary contribution).

Sub-modules map one-to-one onto the paper's Section 3 and the catalogs of
Sections 4–5:

- :mod:`repro.core.reasoning` — Dorst's reasoning model (Figure 5):
  deduction, induction, two kinds of abduction, and "unreasoning".
- :mod:`repro.core.space` — design spaces and design problems, including
  the well-structured / ill-structured / wicked classification (§2.4).
- :mod:`repro.core.exploration` — design-space exploration processes
  (Figure 6): free, fix-the-what, fix-the-how, and co-evolving (Figure 7).
- :mod:`repro.core.process` — the Basic Design Cycle and the hierarchical
  Overall Process with skippable stages and five stopping criteria
  (Figure 8).
- :mod:`repro.core.catalog` — Tables 1–3: the framework overview, the 8
  core principles, the 10 challenges, the problem archetypes P1–P5 with
  problem sources S1–S3, and Altshuller's levels of creativity.
- :mod:`repro.core.dissemination` — §3.6: article / FOSS / FOAD artifact
  checklists.
"""

from repro.core.reasoning import (
    Frame,
    ReasoningMode,
    Universe,
    reason,
)
from repro.core.space import (
    Candidate,
    DesignProblem,
    DesignSpace,
    Dimension,
    ProblemStructure,
    RuggedLandscape,
    classify_problem,
)
from repro.core.exploration import (
    CoEvolvingExploration,
    ExplorationResult,
    Explorer,
    FixTheHowExploration,
    FixTheWhatExploration,
    FreeExploration,
    compare_explorers,
)
from repro.core.process import (
    BasicDesignCycle,
    CycleResult,
    DesignDocument,
    OverallProcess,
    Stage,
    StoppingCriterion,
)
from repro.core.catalog import (
    ALTSHULLER_LEVELS,
    CHALLENGES,
    FRAMEWORK_OVERVIEW,
    PERFORMANCE_BASELINES,
    PRINCIPLES,
    PROBLEM_ARCHETYPES,
    PROBLEM_SOURCES,
    Challenge,
    CreativityLevel,
    Principle,
    ProblemArchetype,
    assess_creativity,
    challenges_for_principle,
)
from repro.core.dissemination import (
    Artifact,
    ArtifactKind,
    DisseminationPlan,
    FAIR_CHECKLIST,
)
from repro.core.memex import DistributedSystemsMemex, MemexEntry
from repro.core.problemfinding import (
    KnownSystem,
    MorphologicalField,
    ProblemCollector,
    ProblemStatement,
)

__all__ = [
    "ALTSHULLER_LEVELS",
    "Artifact",
    "ArtifactKind",
    "BasicDesignCycle",
    "CHALLENGES",
    "Candidate",
    "Challenge",
    "CoEvolvingExploration",
    "CreativityLevel",
    "CycleResult",
    "DesignDocument",
    "DesignProblem",
    "DesignSpace",
    "Dimension",
    "DistributedSystemsMemex",
    "MemexEntry",
    "DisseminationPlan",
    "ExplorationResult",
    "Explorer",
    "FAIR_CHECKLIST",
    "FRAMEWORK_OVERVIEW",
    "FixTheHowExploration",
    "FixTheWhatExploration",
    "Frame",
    "FreeExploration",
    "KnownSystem",
    "MorphologicalField",
    "ProblemCollector",
    "ProblemStatement",
    "OverallProcess",
    "PERFORMANCE_BASELINES",
    "PRINCIPLES",
    "PROBLEM_ARCHETYPES",
    "PROBLEM_SOURCES",
    "Principle",
    "ProblemArchetype",
    "ProblemStructure",
    "ReasoningMode",
    "RuggedLandscape",
    "Stage",
    "StoppingCriterion",
    "Universe",
    "assess_creativity",
    "challenges_for_principle",
    "classify_problem",
    "compare_explorers",
    "reason",
]
