"""Dorst's reasoning model (paper Figure 5), made executable.

The reasoning universe consists of *concepts* ("What?"), *relationships*
("How?") that map concept combinations to outcomes, and *outcomes*. Each
reasoning mode solves for a different unknown:

=====================  =========  =======  =========
Mode                   What?      How?     Outcome
=====================  =========  =======  =========
deduction              given      given    **solve**
induction              given      solve    given
abduction (problems)   **solve**  given    given
abduction (design)     **solve**  solve    given
unreasoning            anything   anything anything
=====================  =========  =======  =========

A :class:`Universe` holds finite sets of concepts and relationships, so
all four well-defined modes are implementable as search. Design abduction
is visibly the hardest: its search space is the product of the other two —
the formal core of the paper's claim that design is a distinct activity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class ReasoningMode(enum.Enum):
    DEDUCTION = "deduction"
    INDUCTION = "induction"
    ABDUCTION_PROBLEM_SOLVING = "abduction-problem-solving"
    ABDUCTION_DESIGN = "abduction-design"
    UNREASONING = "unreasoning"


@dataclass(frozen=True)
class Frame:
    """One (what, how, outcome) triple of the reasoning universe."""

    what: tuple[str, ...]
    how: str
    outcome: Any


class Universe:
    """A finite reasoning universe.

    ``concepts`` are named things; ``relationships`` map a tuple of
    concepts to an outcome via a callable.
    """

    def __init__(self):
        self.concepts: dict[str, Any] = {}
        self.relationships: dict[str, Callable[..., Any]] = {}

    def add_concept(self, name: str, value: Any = None) -> "Universe":
        self.concepts[name] = value
        return self

    def add_relationship(self, name: str,
                         fn: Callable[..., Any]) -> "Universe":
        self.relationships[name] = fn
        return self

    def apply(self, how: str, what: tuple[str, ...]) -> Any:
        """Evaluate a relationship on concept values."""
        fn = self.relationships[how]
        return fn(*(self.concepts[w] for w in what))

    def concept_tuples(self, arity: int) -> list[tuple[str, ...]]:
        """All ordered concept tuples of the given arity."""
        names = sorted(self.concepts)
        if arity == 0:
            return [()]
        tuples: list[tuple[str, ...]] = [()]
        for _ in range(arity):
            tuples = [t + (n,) for t in tuples for n in names]
        return tuples


@dataclass
class ReasoningResult:
    """Outcome of one reasoning episode."""

    mode: ReasoningMode
    frames: list[Frame] = field(default_factory=list)
    #: Number of (what, how) combinations examined — the search cost.
    examined: int = 0

    @property
    def solved(self) -> bool:
        return bool(self.frames)


def _outcomes_match(a: Any, b: Any) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        try:
            return abs(float(a) - float(b)) < 1e-9
        except (TypeError, ValueError):
            return False
    return a == b


def reason(universe: Universe, mode: ReasoningMode,
           what: Optional[tuple[str, ...]] = None,
           how: Optional[str] = None,
           outcome: Any = None,
           arity: int = 2,
           max_frames: Optional[int] = None) -> ReasoningResult:
    """Run one reasoning mode over the universe.

    - DEDUCTION: ``what`` + ``how`` given; computes the outcome.
    - INDUCTION: ``what`` + ``outcome`` given; finds relationships that
      produce the outcome.
    - ABDUCTION_PROBLEM_SOLVING: ``how`` + ``outcome`` given; finds concept
      tuples that produce the outcome.
    - ABDUCTION_DESIGN: only ``outcome`` given; searches the full product
      space of concepts × relationships.
    - UNREASONING: accepts any frame without evaluation (and is thus
      reported as solved but with zero evidential value).
    """
    result = ReasoningResult(mode=mode)

    if mode is ReasoningMode.DEDUCTION:
        if what is None or how is None:
            raise ValueError("deduction needs both what and how")
        value = universe.apply(how, what)
        result.examined = 1
        result.frames.append(Frame(what=what, how=how, outcome=value))
        return result

    if mode is ReasoningMode.INDUCTION:
        if what is None:
            raise ValueError("induction needs what (+ observed outcome)")
        for name in sorted(universe.relationships):
            result.examined += 1
            try:
                value = universe.apply(name, what)
            except Exception:
                continue
            if _outcomes_match(value, outcome):
                result.frames.append(Frame(what=what, how=name,
                                           outcome=value))
                if max_frames and len(result.frames) >= max_frames:
                    break
        return result

    if mode is ReasoningMode.ABDUCTION_PROBLEM_SOLVING:
        if how is None:
            raise ValueError("problem-solving abduction needs how")
        for candidate in universe.concept_tuples(arity):
            result.examined += 1
            try:
                value = universe.apply(how, candidate)
            except Exception:
                continue
            if _outcomes_match(value, outcome):
                result.frames.append(Frame(what=candidate, how=how,
                                           outcome=value))
                if max_frames and len(result.frames) >= max_frames:
                    break
        return result

    if mode is ReasoningMode.ABDUCTION_DESIGN:
        for name in sorted(universe.relationships):
            for candidate in universe.concept_tuples(arity):
                result.examined += 1
                try:
                    value = universe.apply(name, candidate)
                except Exception:
                    continue
                if _outcomes_match(value, outcome):
                    result.frames.append(Frame(what=candidate, how=name,
                                               outcome=value))
                    if max_frames and len(result.frames) >= max_frames:
                        return result
        return result

    if mode is ReasoningMode.UNREASONING:
        # "Facts don't matter": claim a frame without evaluating anything.
        result.frames.append(Frame(what=what or ("anything",),
                                   how=how or "anything", outcome=outcome))
        result.examined = 0
        return result

    raise ValueError(f"unknown mode {mode}")
