"""The Basic Design Cycle and the Overall Process (paper §3.5, Figure 8).

The BDC is the paper's eight-element loop:

1. Formulate requirements
2. Understand alternatives
3. Bootstrap the creative process
4. High-level and low-level design
5. Implementation (analysis code, simulators, prototypes)
6. Conceptual analysis
7. Experimental analysis
8. Result summarizing and dissemination

Stages are *skippable per iteration* — the framework's signature feature —
and the cycle stops on one of five criteria (satisficed / portfolio /
systematic / exhausted / out-of-budget). The Overall Process nests BDCs:
any complex stage may expand into a child cycle, and the provenance of
every decision is recorded in a :class:`DesignDocument` (the Challenge C8
formalism).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence, Union


class Stage(enum.Enum):
    """The eight BDC elements (§3.5)."""

    FORMULATE_REQUIREMENTS = 1
    UNDERSTAND_ALTERNATIVES = 2
    BOOTSTRAP_CREATIVE = 3
    DESIGN = 4
    IMPLEMENTATION = 5
    CONCEPTUAL_ANALYSIS = 6
    EXPERIMENTAL_ANALYSIS = 7
    DISSEMINATION = 8


class StoppingCriterion(enum.Enum):
    """§3.5's five stopping criteria."""

    SATISFICED = "satisficed"            # one good-enough answer
    PORTFOLIO = "portfolio"              # a few answers for a human reviewer
    SYSTEMATIC = "systematic"            # many answers, systematic design
    EXHAUSTED = "design-space-exhausted"  # all answers
    BUDGET = "out-of-budget"             # time or resources ran out


#: Default answer-count thresholds per criterion.
PORTFOLIO_SIZE = 3
SYSTEMATIC_SIZE = 10


@dataclass
class ProvenanceEvent:
    """One recorded design decision (the C8 documentation formalism)."""

    iteration: int
    stage: str
    action: str  # "executed" | "skipped" | "expanded" | "stopped"
    note: str = ""
    payload: Any = None


@dataclass
class DesignDocument:
    """Append-only provenance log of a design effort.

    "An open process for design requires more than its final results and
    artifacts to be made public" (C8) — the document captures who did what
    at which iteration and why, and serializes to JSON for archiving.
    """

    problem: str
    events: list[ProvenanceEvent] = field(default_factory=list)

    def log(self, iteration: int, stage: Union[Stage, str], action: str,
            note: str = "", payload: Any = None) -> None:
        name = stage.name if isinstance(stage, Stage) else str(stage)
        self.events.append(ProvenanceEvent(
            iteration=iteration, stage=name, action=action, note=note,
            payload=payload))

    def iterations(self) -> int:
        return max((e.iteration for e in self.events), default=-1) + 1

    def skipped(self) -> list[ProvenanceEvent]:
        return [e for e in self.events if e.action == "skipped"]

    def executed(self) -> list[ProvenanceEvent]:
        return [e for e in self.events if e.action == "executed"]

    def to_json(self) -> str:
        return json.dumps({
            "problem": self.problem,
            "events": [
                {"iteration": e.iteration, "stage": e.stage,
                 "action": e.action, "note": e.note}
                for e in self.events
            ],
        }, indent=2)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path


@dataclass
class CycleResult:
    """Outcome of running a BDC (or an Overall Process)."""

    stopped_by: StoppingCriterion
    answers: list[Any]
    iterations: int
    budget_spent: int
    document: DesignDocument

    @property
    def succeeded(self) -> bool:
        return self.stopped_by is not StoppingCriterion.BUDGET or bool(
            self.answers)


#: A stage handler receives a mutable context dict and returns either
#: None (no answer this stage) or an answer object to add to the answers.
StageHandler = Callable[[dict], Any]


class BasicDesignCycle:
    """The iterative eight-stage loop with skippable stages.

    Parameters
    ----------
    problem_name:
        For the provenance document.
    handlers:
        Mapping of :class:`Stage` to a handler; stages without handlers
        are implicitly skippable.
    skip_policy:
        ``skip_policy(stage, iteration, context) -> bool``; True skips the
        stage this iteration (the OP's per-iteration tailoring).
    target:
        The stopping criterion the designers aim for; the cycle may still
        stop earlier on BUDGET.
    budget:
        Maximum stage executions (the cycle's time-and-resources budget).
    """

    STAGES: Sequence[Stage] = tuple(Stage)

    def __init__(self, problem_name: str,
                 handlers: dict[Stage, StageHandler],
                 skip_policy: Optional[Callable[[Stage, int, dict], bool]] = None,
                 target: StoppingCriterion = StoppingCriterion.SATISFICED,
                 budget: int = 200,
                 portfolio_size: int = PORTFOLIO_SIZE,
                 systematic_size: int = SYSTEMATIC_SIZE,
                 space_size: Optional[int] = None):
        if budget <= 0:
            raise ValueError("budget must be positive")
        if target is StoppingCriterion.BUDGET:
            raise ValueError(
                "BUDGET is the fallback criterion, not a target")
        self.problem_name = problem_name
        self.handlers = dict(handlers)
        self.skip_policy = skip_policy or (lambda stage, i, ctx: False)
        self.target = target
        self.budget = budget
        self.portfolio_size = portfolio_size
        self.systematic_size = systematic_size
        self.space_size = space_size

    def _target_met(self, answers: list[Any]) -> bool:
        if self.target is StoppingCriterion.SATISFICED:
            return len(answers) >= 1
        if self.target is StoppingCriterion.PORTFOLIO:
            return len(answers) >= self.portfolio_size
        if self.target is StoppingCriterion.SYSTEMATIC:
            return len(answers) >= self.systematic_size
        if self.target is StoppingCriterion.EXHAUSTED:
            if self.space_size is None:
                raise ValueError(
                    "EXHAUSTED target requires space_size to be known")
            return len(answers) >= self.space_size
        return False

    def run(self, context: Optional[dict] = None) -> CycleResult:
        context = context if context is not None else {}
        document = DesignDocument(problem=self.problem_name)
        answers: list[Any] = []
        spent = 0
        iteration = 0
        while True:
            for stage in self.STAGES:
                if spent >= self.budget:
                    document.log(iteration, "cycle", "stopped",
                                 note="budget exhausted")
                    return CycleResult(
                        stopped_by=StoppingCriterion.BUDGET,
                        answers=answers, iterations=iteration + 1,
                        budget_spent=spent, document=document)
                handler = self.handlers.get(stage)
                if handler is None or self.skip_policy(stage, iteration,
                                                       context):
                    document.log(iteration, stage, "skipped")
                    continue
                spent += 1
                answer = handler(context)
                document.log(iteration, stage, "executed",
                             note="" if answer is None else "produced answer")
                if answer is not None:
                    answers.append(answer)
                if self._target_met(answers):
                    document.log(iteration, "cycle", "stopped",
                                 note=f"target {self.target.value} met")
                    return CycleResult(
                        stopped_by=self.target, answers=answers,
                        iterations=iteration + 1, budget_spent=spent,
                        document=document)
            iteration += 1


class OverallProcess:
    """Hierarchical composition of BDCs (Figure 8).

    The OP is itself a BDC whose complex stages (implementation,
    experimentation, dissemination) may expand into child BDCs. A child is
    declared by mapping a stage to a :class:`BasicDesignCycle`; its answers
    feed the parent context under ``context['children'][stage]``, and the
    expansion is recorded in the provenance document.
    """

    EXPANDABLE = {Stage.IMPLEMENTATION, Stage.EXPERIMENTAL_ANALYSIS,
                  Stage.DISSEMINATION}

    def __init__(self, cycle: BasicDesignCycle,
                 children: Optional[dict[Stage, BasicDesignCycle]] = None):
        self.cycle = cycle
        self.children = dict(children or {})
        for stage in self.children:
            if stage not in self.EXPANDABLE:
                raise ValueError(
                    f"stage {stage.name} cannot expand into a child BDC; "
                    f"expandable: {sorted(s.name for s in self.EXPANDABLE)}")

    def run(self, context: Optional[dict] = None) -> CycleResult:
        context = context if context is not None else {}
        context.setdefault("children", {})
        original_handlers = dict(self.cycle.handlers)
        try:
            for stage, child in self.children.items():
                self.cycle.handlers[stage] = self._expanding_handler(
                    stage, child, original_handlers.get(stage))
            result = self.cycle.run(context)
        finally:
            self.cycle.handlers = original_handlers
        return result

    def _expanding_handler(self, stage: Stage, child: BasicDesignCycle,
                           fallback: Optional[StageHandler]) -> StageHandler:
        def handler(context: dict) -> Any:
            child_result = child.run(dict(context))
            context["children"].setdefault(stage, []).append(child_result)
            if fallback is not None:
                return fallback(context)
            # The child's first answer (if any) becomes the stage's answer.
            return child_result.answers[0] if child_result.answers else None
        return handler
