"""Design spaces and design problems.

A design space is the cross product of named discrete dimensions (the
technologies, mechanisms, and policies a designer can pick). A design
problem attaches a quality function and a *satisficing* threshold — the
paper (following Simon) treats "good enough" as the realistic stopping
point for ill-defined problems.

The synthetic :class:`RuggedLandscape` provides NK-style tunably-rugged
quality functions so exploration processes can be compared quantitatively
(the Figure 6/7 experiments).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class Dimension:
    """One axis of the design space: a name and its discrete options."""

    name: str
    options: tuple[str, ...]

    def __post_init__(self):
        if not self.options:
            raise ValueError(f"dimension {self.name}: no options")
        if len(set(self.options)) != len(self.options):
            raise ValueError(f"dimension {self.name}: duplicate options")


@dataclass(frozen=True)
class Candidate:
    """A complete assignment of one option per dimension."""

    choices: tuple[tuple[str, str], ...]  # ((dimension, option), ...)

    def as_dict(self) -> dict[str, str]:
        return dict(self.choices)

    def __getitem__(self, dimension: str) -> str:
        return self.as_dict()[dimension]

    def with_choice(self, dimension: str, option: str) -> "Candidate":
        new = dict(self.choices)
        if dimension not in new:
            raise KeyError(dimension)
        new[dimension] = option
        return Candidate(tuple(sorted(new.items())))


class DesignSpace:
    """The cross product of dimensions, with neighbour structure."""

    def __init__(self, dimensions: Iterable[Dimension]):
        self.dimensions = list(dimensions)
        if not self.dimensions:
            raise ValueError("a design space needs at least one dimension")
        names = [d.name for d in self.dimensions]
        if len(set(names)) != len(names):
            raise ValueError("duplicate dimension names")
        self._by_name = {d.name: d for d in self.dimensions}

    @property
    def size(self) -> int:
        size = 1
        for d in self.dimensions:
            size *= len(d.options)
        return size

    def dimension(self, name: str) -> Dimension:
        return self._by_name[name]

    def candidate(self, **choices: str) -> Candidate:
        """Build a candidate, validating every choice."""
        if set(choices) != set(self._by_name):
            missing = set(self._by_name) - set(choices)
            extra = set(choices) - set(self._by_name)
            raise ValueError(
                f"candidate must assign every dimension; missing={missing}, "
                f"unknown={extra}")
        for dim, opt in choices.items():
            if opt not in self._by_name[dim].options:
                raise ValueError(
                    f"{opt!r} is not an option of dimension {dim!r}")
        return Candidate(tuple(sorted(choices.items())))

    def random_candidate(self, rng: np.random.Generator) -> Candidate:
        choices = {
            d.name: d.options[int(rng.integers(0, len(d.options)))]
            for d in self.dimensions
        }
        return Candidate(tuple(sorted(choices.items())))

    def neighbors(self, candidate: Candidate) -> list[Candidate]:
        """All candidates differing in exactly one dimension."""
        result = []
        for dim, current in candidate.choices:
            for option in self._by_name[dim].options:
                if option != current:
                    result.append(candidate.with_choice(dim, option))
        return result

    def all_candidates(self) -> Iterable[Candidate]:
        """Exhaustive enumeration (use only for small spaces)."""
        def rec(idx: int, partial: dict[str, str]):
            if idx == len(self.dimensions):
                yield Candidate(tuple(sorted(partial.items())))
                return
            dim = self.dimensions[idx]
            for option in dim.options:
                partial[dim.name] = option
                yield from rec(idx + 1, partial)
            del dim
        yield from rec(0, {})

    def restrict(self, fixed: dict[str, str]) -> "DesignSpace":
        """The sub-space with some dimensions pinned (Fix-the-What)."""
        dims = []
        for d in self.dimensions:
            if d.name in fixed:
                if fixed[d.name] not in d.options:
                    raise ValueError(
                        f"{fixed[d.name]!r} not an option of {d.name!r}")
                dims.append(Dimension(d.name, (fixed[d.name],)))
            else:
                dims.append(d)
        return DesignSpace(dims)


class ProblemStructure(enum.Enum):
    """Simon's classification (§2.4)."""

    WELL_STRUCTURED = "well-structured"
    ILL_STRUCTURED = "ill-structured"
    WICKED = "wicked"


@dataclass
class DesignProblem:
    """A problem over a design space.

    ``quality`` maps a candidate to [0, 1]. ``satisfice_threshold`` is the
    "good enough" bar; ``optimize_threshold`` (if reachable) marks
    near-optimal designs. The five Simon criteria (§2.4) are explicit
    booleans so :func:`classify_problem` can derive the structure class.
    """

    name: str
    space: DesignSpace
    quality: Callable[[Candidate], float]
    satisfice_threshold: float = 0.7
    optimize_threshold: float = 0.95
    # Simon's well-structuredness criteria:
    has_evaluation_criterion: bool = True
    has_unambiguous_representation: bool = True
    has_complete_domain_knowledge: bool = True
    captures_nature_interaction: bool = True
    is_tractable: bool = True
    # Wickedness markers (Rittel & Webber):
    has_final_formulation: bool = True
    stakeholders_agree_on_success: bool = True
    evaluations: int = field(default=0, init=False)

    def evaluate(self, candidate: Candidate) -> float:
        self.evaluations += 1
        value = self.quality(candidate)
        if not 0.0 <= value <= 1.0 + 1e-9:
            raise ValueError(
                f"quality function returned {value}; must be in [0, 1]")
        return min(value, 1.0)

    def satisfices(self, candidate: Candidate) -> bool:
        return self.evaluate(candidate) >= self.satisfice_threshold

    def structure(self) -> ProblemStructure:
        return classify_problem(self)


def classify_problem(problem: DesignProblem) -> ProblemStructure:
    """Simon / Rittel-Webber classification from the declared criteria."""
    if not (problem.has_final_formulation
            and problem.stakeholders_agree_on_success):
        return ProblemStructure.WICKED
    simon = [
        problem.has_evaluation_criterion,
        problem.has_unambiguous_representation,
        problem.has_complete_domain_knowledge,
        problem.captures_nature_interaction,
        problem.is_tractable,
    ]
    if all(simon):
        return ProblemStructure.WELL_STRUCTURED
    return ProblemStructure.ILL_STRUCTURED


class RuggedLandscape:
    """A deterministic, tunably-rugged quality function (NK-style).

    ``k`` controls epistasis: quality is the mean of per-dimension
    contributions, where each contribution depends on the option chosen in
    its own dimension *and in k other dimensions*. ``k = 0`` gives a smooth
    separable landscape (hill-climbing suffices); larger ``k`` creates the
    many local optima that motivate co-evolving exploration.

    The landscape is seeded: the same (seed, epoch) yields the same
    function. ``shift_epoch`` perturbs the landscape — modelling the
    problem itself changing under co-evolution.
    """

    def __init__(self, space: DesignSpace, seed: int = 0, k: int = 2,
                 epoch: int = 0):
        n_dims = len(space.dimensions)
        if k < 0 or k >= max(n_dims, 1):
            if not (k == 0 and n_dims == 1):
                raise ValueError(
                    f"k={k} must be in [0, {n_dims - 1}] for "
                    f"{n_dims} dimensions")
        self.space = space
        self.seed = seed
        self.k = k
        self.epoch = epoch
        rng = np.random.default_rng(seed + 7919 * epoch)
        n = len(space.dimensions)
        # For each dimension, pick k interaction partners.
        self._partners = [
            sorted(rng.choice([j for j in range(n) if j != i],
                              size=min(k, n - 1), replace=False).tolist())
            for i in range(n)
        ]

    def _contribution(self, dim_idx: int, key: tuple[str, ...]) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{self.epoch}:{dim_idx}:{key}".encode()).digest()
        return int.from_bytes(digest[:8], "little") / 2**64

    def __call__(self, candidate: Candidate) -> float:
        choices = candidate.as_dict()
        names = [d.name for d in self.space.dimensions]
        total = 0.0
        for i, name in enumerate(names):
            key = (choices[name],) + tuple(
                choices[names[j]] for j in self._partners[i])
            total += self._contribution(i, key)
        return total / len(names)

    def shifted(self, delta_epochs: int = 1) -> "RuggedLandscape":
        """The same landscape family, in a later epoch (problem evolved)."""
        return RuggedLandscape(self.space, seed=self.seed, k=self.k,
                               epoch=self.epoch + delta_epochs)

    def best_quality(self, sample: int = 2048,
                     rng: Optional[np.random.Generator] = None) -> float:
        """Estimate of the global optimum (exact for small spaces)."""
        if self.space.size <= sample:
            return max(self(c) for c in self.space.all_candidates())
        rng = rng or np.random.default_rng(self.seed)
        return max(self(self.space.random_candidate(rng))
                   for _ in range(sample))
