"""Problem-finding processes (paper §3.4).

Two of the framework's problem-finding methods, made executable:

- **morphological analysis** (archetype P5, after Zwicky [46]): lay out
  the design space as a morphological field, mark the cells occupied by
  known systems, and surface the *unoccupied niches* as curiosity-driven
  problems;
- **source-tagged collection** (archetypes P1–P3, sources S1–S3):
  aggregate observations from studies, expert discussion, and own
  experiments into problem statements tagged with archetype and source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.catalog import PROBLEM_ARCHETYPES, PROBLEM_SOURCES
from repro.core.space import Candidate, DesignSpace


@dataclass(frozen=True)
class KnownSystem:
    """A system occupying part of the morphological field.

    ``choices`` is a *partial* assignment: the system covers every full
    candidate compatible with it (e.g., BitTorrent covers all cells with
    topology=p2p, incentive=tit-for-tat, whatever the transport).
    """

    name: str
    choices: tuple[tuple[str, str], ...]

    def covers(self, candidate: Candidate) -> bool:
        assignment = candidate.as_dict()
        return all(assignment.get(dim) == opt
                   for dim, opt in self.choices)


@dataclass(frozen=True)
class ProblemStatement:
    """A found problem, tagged with its archetype and provenance."""

    title: str
    archetype: str          # index into PROBLEM_ARCHETYPES
    source: str             # "S1".."S3" or "morphological-analysis"
    detail: str = ""
    niche: Optional[Candidate] = None

    def __post_init__(self):
        if self.archetype not in PROBLEM_ARCHETYPES:
            raise ValueError(f"unknown archetype {self.archetype!r}")
        valid_sources = set(PROBLEM_SOURCES) | {
            "morphological-analysis", "empirical-science-process"}
        if self.source not in valid_sources:
            raise ValueError(f"unknown source {self.source!r}")


class MorphologicalField:
    """The P5 method: a design space with known systems marked on it."""

    def __init__(self, space: DesignSpace,
                 known_systems: Iterable[KnownSystem] = ()):
        self.space = space
        self.known_systems: list[KnownSystem] = []
        for system in known_systems:
            self.add_system(system)

    def add_system(self, system: KnownSystem) -> None:
        for dim, opt in system.choices:
            dimension = self.space.dimension(dim)  # raises on unknown dim
            if opt not in dimension.options:
                raise ValueError(
                    f"system {system.name}: {opt!r} is not an option of "
                    f"{dim!r}")
        self.known_systems.append(system)

    def occupied(self, candidate: Candidate) -> list[KnownSystem]:
        return [s for s in self.known_systems if s.covers(candidate)]

    def coverage_fraction(self, limit: int = 100_000) -> float:
        """Fraction of the field occupied by at least one system."""
        if self.space.size > limit:
            raise ValueError(
                f"field too large to enumerate ({self.space.size} cells)")
        total = occupied = 0
        for candidate in self.space.all_candidates():
            total += 1
            if self.occupied(candidate):
                occupied += 1
        return occupied / total if total else 1.0

    def gaps(self, limit: int = 100_000) -> list[Candidate]:
        """All unoccupied cells — the unexplored niches."""
        if self.space.size > limit:
            raise ValueError(
                f"field too large to enumerate ({self.space.size} cells)")
        return [c for c in self.space.all_candidates()
                if not self.occupied(c)]

    def find_problems(self, max_problems: Optional[int] = None
                      ) -> list[ProblemStatement]:
        """Turn unoccupied niches into P5 problem statements."""
        problems = []
        for candidate in self.gaps():
            desc = ", ".join(f"{dim}={opt}"
                             for dim, opt in candidate.choices)
            problems.append(ProblemStatement(
                title=f"explore the niche [{desc}]",
                archetype="P5",
                source="morphological-analysis",
                detail="no known system occupies this combination",
                niche=candidate))
            if max_problems is not None and len(problems) >= max_problems:
                break
        return problems


@dataclass
class ProblemCollector:
    """S1–S3 collection for archetypes P1–P3 (§3.4's 'How to identify
    meaningful problems')."""

    problems: list[ProblemStatement] = field(default_factory=list)

    def from_study(self, title: str, archetype: str,
                   detail: str = "") -> ProblemStatement:
        """S1: peer-reviewed studies on ecosystems."""
        return self._add(title, archetype, "S1", detail)

    def from_experts(self, title: str, archetype: str,
                     detail: str = "") -> ProblemStatement:
        """S2: expert discussion, tech reports, best-practice books."""
        return self._add(title, archetype, "S2", detail)

    def from_own_experiments(self, title: str, archetype: str,
                             detail: str = "") -> ProblemStatement:
        """S3: own thought and lab experiments."""
        return self._add(title, archetype, "S3", detail)

    def _add(self, title: str, archetype: str, source: str,
             detail: str) -> ProblemStatement:
        expected = PROBLEM_ARCHETYPES[archetype].finding
        if source not in expected:
            raise ValueError(
                f"archetype {archetype} is not found via {source}; "
                f"its sources are {expected}")
        problem = ProblemStatement(title=title, archetype=archetype,
                                   source=source, detail=detail)
        self.problems.append(problem)
        return problem

    def by_archetype(self, archetype: str) -> list[ProblemStatement]:
        return [p for p in self.problems if p.archetype == archetype]
