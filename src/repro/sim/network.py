"""A fault-aware message fabric between named simulation nodes.

The paper's ecosystem lens (§3) treats communication as a first-class
failure domain: components do not call each other, they *send messages*
that a real network may delay, drop, or — during a partition — refuse to
carry at all. Before this module, every domain hand-rolled its own loss
check (the P2P swarm consulted a :class:`~repro.faults.MessageLossModel`
inline, heartbeats went straight into the detector, dispatches teleported
onto machines). :class:`Network` centralizes that: senders name their
endpoints, attached fault models vote on each message, and the fabric
keeps conservation accounting the invariant engine can audit::

    sent == delivered + blocked + dropped + in_flight

Fault models attach duck-typed — any object may implement any subset of:

- ``blocks(src, dst) -> bool`` — partition semantics: the message cannot
  leave the source at all (e.g.
  :class:`~repro.faults.NetworkPartitionModel`);
- ``drops(src, dst, kind) -> bool`` — loss semantics: the message leaves
  but never arrives (e.g. :class:`~repro.faults.GrayFailureModel`);
- ``extra_latency_s(src, dst) -> float`` — added one-way delay.

Keeping the protocol structural (no base class) means :mod:`repro.sim`
does not import :mod:`repro.faults`; the dependency points the same way
it always has.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.environment import Environment
from repro.sim.monitor import Monitor

__all__ = ["Network"]

#: Verdicts :meth:`Network.send` can return.
DELIVERED = "delivered"
BLOCKED = "blocked"
DROPPED = "dropped"
IN_FLIGHT = "in_flight"


class Network:
    """Message routing between registered nodes, filtered by fault models.

    ``send`` consults every attached model in attach order: a *block*
    (partition) beats a *drop* (loss), and extra latencies are additive.
    With zero total latency the payload callback runs synchronously —
    message passing costs nothing unless a model says otherwise, so a
    fabric without faults is behaviorally invisible to its users.
    """

    # Every simulated message crosses this object; keep it dict-free.
    __slots__ = ("env", "monitor", "default_latency_s", "_nodes", "_models",
                 "sent", "delivered", "blocked", "dropped", "in_flight",
                 "by_kind")

    def __init__(self, env: Environment, monitor: Optional[Monitor] = None,
                 default_latency_s: float = 0.0):
        if default_latency_s < 0:
            raise ValueError("default_latency_s must be non-negative")
        self.env = env
        self.monitor = monitor
        self.default_latency_s = default_latency_s
        self._nodes: dict[str, None] = {}  # insertion-ordered set
        self._models: list[Any] = []
        #: Conservation ledger (``sent == delivered + blocked + dropped
        #: + in_flight`` at every instant).
        self.sent = 0
        self.delivered = 0
        self.blocked = 0
        self.dropped = 0
        self.in_flight = 0
        #: Per-kind breakdown of the same ledger.
        self.by_kind: dict[str, dict[str, int]] = {}

    # -- topology ----------------------------------------------------------
    def add_node(self, name: str) -> str:
        """Register a node (idempotent); returns the name for chaining."""
        self._nodes[str(name)] = None
        return str(name)

    def add_nodes(self, names) -> None:
        for name in names:
            self.add_node(name)

    def remove_node(self, name: str) -> None:
        self._nodes.pop(str(name), None)

    @property
    def nodes(self) -> list[str]:
        """Registered node names, in registration order."""
        return list(self._nodes)

    def attach(self, model: Any) -> Any:
        """Attach a fault model (evaluated in attach order); returns it."""
        self._models.append(model)
        return model

    # -- verdicts ----------------------------------------------------------
    def _require(self, name: str) -> str:
        if name not in self._nodes:
            raise KeyError(f"unknown network node {name!r}; "
                           f"known: {self.nodes}")
        return name

    def allows(self, src: str, dst: str) -> bool:
        """Whether a message from ``src`` to ``dst`` would not be blocked."""
        self._require(src)
        self._require(dst)
        for model in self._models:
            blocks = getattr(model, "blocks", None)
            if blocks is not None and blocks(src, dst):
                return False
        return True

    def latency_s(self, src: str, dst: str) -> float:
        """One-way delay ``src`` -> ``dst`` under the attached models."""
        total = self.default_latency_s
        for model in self._models:
            extra = getattr(model, "extra_latency_s", None)
            if extra is not None:
                total += float(extra(src, dst))
        return total

    def _book(self, outcome: str, kind: str) -> None:
        per_kind = self.by_kind.setdefault(
            kind, {"sent": 0, DELIVERED: 0, BLOCKED: 0, DROPPED: 0})
        per_kind[outcome] += 1
        if self.monitor is not None:
            self.monitor.count(outcome, key=kind)

    # -- transmission ------------------------------------------------------
    def send(self, src: str, dst: str, deliver: Callable[[], Any],
             size_mb: float = 0.0, kind: str = "message") -> str:
        """Attempt one message; returns its immediate verdict.

        - ``"blocked"`` — a partition refused it; ``deliver`` never runs.
        - ``"dropped"`` — a loss model ate it in transit; ``deliver``
          never runs.
        - ``"delivered"`` — ``deliver()`` ran synchronously (zero-latency
          path).
        - ``"in_flight"`` — a positive latency applies; ``deliver()`` runs
          after it (the message counts as in flight until then).
        """
        nodes = self._nodes
        if src not in nodes:
            self._require(src)
        if dst not in nodes:
            self._require(dst)
        self.sent += 1
        # Hot path: walk the attached models once, pre-bound, instead of
        # re-walking via allows()/latency_s() (each re-reads self._models).
        models = self._models
        book = self._book
        book("sent", kind)
        for model in models:
            blocks = getattr(model, "blocks", None)
            if blocks is not None and blocks(src, dst):
                self.blocked += 1
                book(BLOCKED, kind)
                return BLOCKED
        for model in models:
            drops = getattr(model, "drops", None)
            if drops is not None and drops(src, dst, kind):
                self.dropped += 1
                book(DROPPED, kind)
                return DROPPED
        delay = self.default_latency_s
        for model in models:
            extra = getattr(model, "extra_latency_s", None)
            if extra is not None:
                delay += float(extra(src, dst))
        if delay <= 0:
            self.delivered += 1
            self._book(DELIVERED, kind)
            deliver()
            return DELIVERED
        self.in_flight += 1
        self.env.process(self._deliver_later(deliver, delay, kind))
        return IN_FLIGHT

    def _deliver_later(self, deliver: Callable[[], Any], delay: float,
                       kind: str):
        yield self.env.timeout(delay)
        self.in_flight -= 1
        self.delivered += 1
        self._book(DELIVERED, kind)
        deliver()
