"""Contended resources: capacity-limited servers, levels, and object stores.

These model the shared entities of the paper's experiment domains — machine
slots in a cluster, upload capacity of a BitTorrent peer, function instances
in a FaaS pool, game-server CPU, and so on.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Optional

from repro.sim.events import Event, Interrupt


class Preempted(Exception):
    """Cause attached to the interrupt a preempted user receives."""

    def __init__(self, by: Any, usage_since: float):
        super().__init__(by, usage_since)
        self.by = by
        self.usage_since = usage_since


class Request(Event):
    """A pending claim on one unit of a :class:`Resource`.

    Usable as a context manager so the unit is always released::

        with resource.request() as req:
            yield req
            ... use the resource ...
    """

    __slots__ = ("resource", "usage_since", "process")


    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        self.usage_since: Optional[float] = None
        #: The process that issued the request (preemption target).
        self.process = resource.env.active_process
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the unit if granted; withdraw the claim if still queued."""
        self.resource.release(self)


class PriorityRequest(Request):
    """A request with a priority (lower value = more important)."""

    __slots__ = ("priority", "preempt", "time")


    def __init__(self, resource: "Resource", priority: float = 0,
                 preempt: bool = True):
        self.priority = priority
        self.preempt = preempt
        self.time = resource.env.now
        super().__init__(resource)

    @property
    def key(self) -> tuple:
        # Non-preempting requests sort after preempting ones of equal priority.
        return (self.priority, self.time, not self.preempt)


class Resource:
    """A FIFO resource with fixed integer capacity."""

    def __init__(self, env, capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self.users: list[Request] = []
        self.queue: list[Request] = []

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {len(self.users)}/{self._capacity} "
                f"used, {len(self.queue)} queued>")

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Units currently in use."""
        return len(self.users)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
            self._trigger_queue()
        elif request in self.queue:
            self.queue.remove(request)

    # -- internals ---------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self._grant(request)
        else:
            self.queue.append(request)

    def _grant(self, request: Request) -> None:
        self.users.append(request)
        request.usage_since = self.env.now
        request.succeed()

    def _trigger_queue(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            self._grant(self.queue.pop(0))


class PriorityResource(Resource):
    """A resource whose queue is ordered by request priority."""

    def __init__(self, env, capacity: int = 1):
        super().__init__(env, capacity)
        self._pq: list[tuple[tuple, int, PriorityRequest]] = []
        self._tiebreak = count()

    def request(self, priority: float = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority, preempt=False)

    def release(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
            self._trigger_queue()
        else:
            self._pq = [entry for entry in self._pq if entry[2] is not request]
            heapq.heapify(self._pq)

    def _do_request(self, request: PriorityRequest) -> None:  # type: ignore[override]
        if len(self.users) < self._capacity:
            self._grant(request)
        else:
            heapq.heappush(self._pq, (request.key, next(self._tiebreak), request))

    def _trigger_queue(self) -> None:
        while self._pq and len(self.users) < self._capacity:
            _, _, request = heapq.heappop(self._pq)
            self._grant(request)

    @property
    def queue(self):  # type: ignore[override]
        return [entry[2] for entry in sorted(self._pq)]

    @queue.setter
    def queue(self, value):  # pragma: no cover - base-class __init__ writes it
        pass


class PreemptiveResource(PriorityResource):
    """A priority resource where urgent requests evict less-urgent users."""

    def request(self, priority: float = 0,  # type: ignore[override]
                preempt: bool = True) -> PriorityRequest:
        return PriorityRequest(self, priority, preempt)

    def _do_request(self, request: PriorityRequest) -> None:
        if len(self.users) >= self._capacity and request.preempt:
            # Find the weakest current user; evict if strictly weaker.
            victim = max(
                (u for u in self.users if isinstance(u, PriorityRequest)),
                key=lambda u: u.key, default=None)
            if victim is not None and victim.key > request.key:
                self.users.remove(victim)
                proc = getattr(victim, "process", None)
                cause = Preempted(by=request, usage_since=victim.usage_since)
                if proc is not None and proc.is_alive:
                    proc.interrupt(cause)
        super()._do_request(request)


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._get_waiters.append(self)
        container._dispatch()


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._put_waiters.append(self)
        container._dispatch()


class Container:
    """A continuous level between 0 and ``capacity``.

    Models divisible quantities: bandwidth tokens, monetary budget, battery.
    """

    def __init__(self, env, capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must lie in [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._get_waiters: list[ContainerGet] = []
        self._put_waiters: list[ContainerPut] = []

    @property
    def level(self) -> float:
        return self._level

    def get(self, amount: float) -> ContainerGet:
        return ContainerGet(self, amount)

    def put(self, amount: float) -> ContainerPut:
        return ContainerPut(self, amount)

    def _dispatch(self) -> None:
        # Hot loop: pre-bind the waiter lists and capacity; only _level
        # changes across iterations.
        put_waiters = self._put_waiters
        get_waiters = self._get_waiters
        capacity = self.capacity
        progress = True
        while progress:
            progress = False
            if put_waiters:
                put = put_waiters[0]
                if self._level + put.amount <= capacity:
                    put_waiters.pop(0)
                    self._level += put.amount
                    put.succeed()
                    progress = True
            if get_waiters:
                get = get_waiters[0]
                if self._level >= get.amount:
                    get_waiters.pop(0)
                    self._level -= get.amount
                    get.succeed()
                    progress = True


class BoundedQueue:
    """A capacity-bounded FIFO request queue with an explicit overflow policy.

    Unlike :class:`Store` (whose putters *block* when full), arrivals at a
    full BoundedQueue are never suspended: :meth:`offer` either rejects the
    newcomer (``policy="reject"``) or sheds the oldest queued item to make
    room (``policy="shed-oldest"``). Overflow is a visible, counted event —
    the backpressure signal an unbounded FIFO silently swallows.

    Consumers take items with the synchronous :meth:`pop` (e.g. a service
    draining its front-door queue when capacity frees up) or the event-based
    :meth:`get` (a dedicated consumer process); both report how long the
    item waited, which is exactly the signal CoDel-style shedding and
    brownout controllers feed on.
    """

    POLICIES = ("reject", "shed-oldest")

    def __init__(self, env, capacity: int, policy: str = "reject",
                 on_shed: Optional[Callable[[Any, float], None]] = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if policy not in self.POLICIES:
            raise ValueError(f"policy must be one of {self.POLICIES}, "
                             f"got {policy!r}")
        self.env = env
        self.capacity = int(capacity)
        self.policy = policy
        #: Called as ``on_shed(item, waited_s)`` for every shed item.
        self.on_shed = on_shed
        #: Queued entries as (enqueued_at, item), oldest first.
        self._entries: list[tuple[float, Any]] = []
        self._getters: list[Event] = []
        self.offered = 0
        #: Offers that entered the queue (or went straight to a getter).
        self.accepted = 0
        self.rejected = 0
        #: Items dropped after acceptance (overflow or explicit shed_head).
        self.shed = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (f"<BoundedQueue {len(self._entries)}/{self.capacity} "
                f"policy={self.policy}>")

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def head_delay(self) -> float:
        """How long the oldest queued item has waited (0 if empty)."""
        if not self._entries:
            return 0.0
        return self.env.now - self._entries[0][0]

    def offer(self, item: Any) -> bool:
        """Enqueue ``item`` if the policy allows; False means rejected."""
        self.offered += 1
        if self._getters:
            # A consumer is already waiting: hand the item straight over.
            self.accepted += 1
            self._getters.pop(0).succeed((item, 0.0))
            return True
        if self.full:
            if self.policy == "reject":
                self.rejected += 1
                return False
            oldest_at, oldest = self._entries.pop(0)
            self.shed += 1
            if self.on_shed is not None:
                self.on_shed(oldest, self.env.now - oldest_at)
        self.accepted += 1
        self._entries.append((self.env.now, item))
        return True

    def pop(self) -> Optional[tuple[Any, float]]:
        """Dequeue the oldest item as ``(item, waited_s)``, or None."""
        if not self._entries:
            return None
        enqueued_at, item = self._entries.pop(0)
        return item, self.env.now - enqueued_at

    def shed_head(self) -> Optional[tuple[Any, float]]:
        """Drop the oldest item as a shed (counted, ``on_shed`` fired)."""
        popped = self.pop()
        if popped is None:
            return None
        self.shed += 1
        item, waited = popped
        if self.on_shed is not None:
            self.on_shed(item, waited)
        return popped

    def get(self) -> Event:
        """Event-based take: succeeds with ``(item, waited_s)``."""
        event = Event(self.env)
        popped = self.pop()
        if popped is not None:
            event.succeed(popped)
        else:
            self._getters.append(event)
        return event


class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._getters.append(self)
        store._dispatch()


class FilterStoreGet(StoreGet):
    __slots__ = ("predicate",)

    def __init__(self, store: "FilterStore",
                 predicate: Callable[[Any], bool]):
        self.predicate = predicate
        super().__init__(store)


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._putters.append(self)
        store._dispatch()


class Store:
    """A FIFO queue of arbitrary items with optional capacity."""

    def __init__(self, env, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._getters: list[StoreGet] = []
        self._putters: list[StorePut] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        return StoreGet(self)

    def _dispatch(self) -> None:
        # Hot loop: pre-bind waiter lists, items, and bound methods; the
        # lists mutate in place so the bindings stay live.
        putters = self._putters
        getters = self._getters
        items = self.items
        capacity = self.capacity
        do_put = self._do_put
        match = self._match
        progress = True
        while progress:
            progress = False
            while putters and len(items) < capacity:
                put = putters.pop(0)
                do_put(put)
                put.succeed()
                progress = True
            idx = 0
            while idx < len(getters):
                get = getters[idx]
                item = match(get)
                if item is _NO_MATCH:
                    idx += 1
                    continue
                getters.pop(idx)
                get.succeed(item)
                progress = True

    def _do_put(self, put: StorePut) -> None:
        self.items.append(put.item)

    def _match(self, get: StoreGet) -> Any:
        if self.items:
            return self.items.pop(0)
        return _NO_MATCH


_NO_MATCH = object()


class FilterStore(Store):
    """A store whose getters can take only items matching a predicate."""

    def get(self, predicate: Callable[[Any], bool] = lambda item: True  # type: ignore[override]
            ) -> FilterStoreGet:
        return FilterStoreGet(self, predicate)

    def _match(self, get: FilterStoreGet) -> Any:  # type: ignore[override]
        for idx, item in enumerate(self.items):
            if get.predicate(item):
                return self.items.pop(idx)
        return _NO_MATCH


class PriorityStore(Store):
    """A store that always yields its smallest item (heap-ordered)."""

    def _do_put(self, put: StorePut) -> None:
        heapq.heappush(self.items, put.item)

    def _match(self, get: StoreGet) -> Any:
        if self.items:
            return heapq.heappop(self.items)
        return _NO_MATCH
