"""Event primitives for the discrete-event simulation kernel.

Events follow a small life-cycle: *pending* (created, not yet scheduled),
*triggered* (scheduled on the environment's queue with a value), and
*processed* (callbacks ran). Processes are themselves events that trigger
when their generator ends, so processes can wait on each other.
"""

from __future__ import annotations

import sys
from heapq import heapify, heappop, heappush, heapreplace
from typing import Any, Callable, Generator, Iterable, Optional

#: Sentinel for "no value yet"; distinguishes an untriggered event from one
#: triggered with ``None``.
PENDING = object()


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries whatever the interrupter supplied.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    env:
        The environment that will dispatch this event's callbacks.
    """

    # Events are created per-dispatch on the kernel hot path; slots keep
    # them dict-free. ``__weakref__`` stays so sanitizers can key weak maps
    # on live events without pinning them.
    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused",
                 "__weakref__")

    #: Interned event-kind string handed to tracers/profilers. Kept as a
    #: class attribute so the instrumented dispatch path loads one shared
    #: string instead of rebuilding ``type(event).__name__`` per event.
    _kind = "Event"

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        cls._kind = sys.intern(cls.__name__)

    def __init__(self, env: "Environment"):  # noqa: F821 - forward ref
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: Set when a failure was given a chance to be handled.
        self._defused: bool = False

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.env.now}>"

    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded. Only meaningful once triggered."""
        if not self.triggered:
            raise RuntimeError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise RuntimeError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive ``exception``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event."""
        self._ok = event._ok
        self._value = event._value
        self.env._schedule(self)

    # -- composition -------------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """An event that triggers after a fixed delay."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Timeouts are the kernel's highest-volume allocation, so the
        # Event field init is flattened here (one frame, no super call)
        # and the event is born triggered.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self._delay = delay
        env._schedule(self, _NORMAL, delay)

    @classmethod
    def _raw(cls, env: "Environment", delay: float, value: Any) -> "Timeout":  # noqa: F821
        """Construct without scheduling — the batch API schedules en masse."""
        timeout = cls.__new__(cls)
        timeout.env = env
        timeout.callbacks = []
        timeout._value = value
        timeout._ok = True
        timeout._defused = False
        timeout._delay = delay
        return timeout

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay}>"


class Initialize(Event):
    """Internal event that starts a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):  # noqa: F821
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env._schedule(self, priority=_URGENT)


#: Scheduling priorities: urgent events (process init, interrupts) dispatch
#: before normal events at the same timestamp.
_URGENT = 0
_NORMAL = 1


class Process(Event):
    """Wraps a generator; the de-facto "thread" of the simulation.

    The process is itself an event that triggers with the generator's return
    value when it finishes (or fails with the escaping exception), so other
    processes can ``yield proc`` to join it.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):  # noqa: F821
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process currently waits on.
        self._target: Optional[Event] = None
        Initialize(env, self)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process({name}) at t={self.env.now}>"

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev.callbacks = [self._resume]
        self.env._schedule(interrupt_ev, priority=_URGENT)

    # -- internal ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the event's outcome."""
        self.env._active_process = self
        while True:
            # Ignore stale wakeups: if we were interrupted while waiting on
            # a target, the target may still fire later and must not resume
            # us a second time.
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._schedule(self)
                break
            except BaseException as err:
                self._ok = False
                self._value = err
                self._defused = False
                self.env._schedule(self)
                break

            if not isinstance(next_event, Event):
                kind = type(next_event).__name__
                err = RuntimeError(
                    f"process yielded a non-event ({kind}); yield Timeout, "
                    "Process, Resource requests, or other Event instances")
                # Crash the process with a clear error.
                try:
                    self._generator.throw(err)
                except StopIteration as stop:
                    self._ok = True
                    self._value = stop.value
                except BaseException as err2:
                    self._ok = False
                    self._value = err2
                self.env._schedule(self)
                break

            if next_event.callbacks is not None:
                # Not yet processed: subscribe and go to sleep.
                next_event.callbacks.append(self._resume_if_target)
                self._target = next_event
                break
            # Already-processed event: loop immediately with its outcome.
            event = next_event

        self._target = None if not self.is_alive else self._target
        self.env._active_process = None

    def _resume_if_target(self, event: Event) -> None:
        """Callback wrapper that drops stale wakeups after interrupts."""
        if not self.is_alive:
            # Process already ended (e.g., crashed on interrupt).
            return
        if self._target is not event and not isinstance(
                event._value, Interrupt):
            return
        self._target = None
        self._resume(event)


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):  # noqa: F821
        super().__init__(env)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.env is not env:
                raise ValueError("events from different environments")
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {
            ev: ev._value
            for ev in self.events
            if ev.triggered and ev._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Triggers when all constituent events have triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(Condition):
    """Triggers as soon as any constituent event triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Ticker:
    """A pure-delay process on the kernel's timeout fast path.

    Created via :meth:`Environment.ticker` from a generator — or any
    iterator, e.g. a precomputed list of task durations wrapped in
    ``iter()``, which ticks without resuming Python code at all — that
    yields *raw delays* instead of events:

    - ``yield d`` (a non-negative number): one tick, ``d`` time units
      from now — the fast-path analogue of ``yield env.timeout(d)``;
    - ``yield (period, n)`` (``n`` a positive int): ``n`` ticks at fixed
      ``period`` — batched timeout scheduling. The generator resumes
      only after the n-th tick, so fixed-period loops (gossip rounds,
      heartbeats, poll intervals) skip the per-tick generator resume;
    - ``return value``: the ticker ends and :attr:`completed` succeeds
      with ``value`` (other processes join via ``yield t.completed``;
      a plain iterator ends with ``None``).

    Every tick is a real dispatched kernel event: it advances the clock,
    increments ``dispatch_count``, and is visible to tracers and the
    profiler as kind ``"Tick"``. Tick times are bit-identical to the
    equivalent ``timeout`` chain (each tick time is ``previous + d``).

    Determinism: all of a ticker's ticks reuse the single queue entry id
    allocated at spawn, so same-time ties against other events break by
    *spawn* order (a ticker spawned before an event was scheduled wins
    the tie for its whole lifetime). Tickers cannot wait on events or be
    interrupted — use :class:`Process` for that; an exception escaping
    the generator fails :attr:`completed` (unhandled if nobody waits).
    """

    __slots__ = ("env", "_generator", "_entry", "completed", "__weakref__")

    #: Kind string for tick dispatches (class-level, like Event._kind).
    _kind = "Tick"

    def __init__(self, env: "Environment", generator: Iterable):  # noqa: F821
        if not hasattr(generator, "__next__"):
            raise TypeError(
                f"{generator!r} is not a generator or iterator")
        self.env = env
        self._generator = generator
        #: The ticker's queue entry ``[time, priority, eid, self,
        #: remaining, period]``. Batch state lives *in the entry* so the
        #: dispatch loop works on list indices instead of slot lookups;
        #: the entry is reused (mutated and re-sifted) for every tick.
        self._entry: Optional[list] = None
        #: Event that triggers with the generator's return value when the
        #: ticker ends (or fails with the escaping exception).
        self.completed = Event(env)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Ticker({name}) at t={self.env.now}>"

    @property
    def done(self) -> bool:
        return self.completed.triggered

    def _finish(self, value: Any) -> None:
        self.completed.succeed(value)

    def _crash(self, err: BaseException) -> None:
        self.completed.fail(err)


def _retire_entry(queue: list, entry: list) -> None:
    """Remove a finished/crashed ticker's entry from the heap.

    Common case: the entry is still the root — one pop. Rare case: the
    generator scheduled something (an urgent process spawn, another
    ticker) that displaced it; entries are unique by eid, so ``index``
    finds exactly this entry, and swap-with-last + heapify restores the
    invariant in O(n), which is fine at churn frequency.
    """
    if queue[0] is entry:
        heappop(queue)
        return
    pos = queue.index(entry)
    last = queue.pop()
    if last is not entry:
        queue[pos] = last
        heapify(queue)


def _reschedule_ticker(queue: list, entry: list, ticker: Ticker,
                       t: float, d: Any) -> None:
    """Validate a yielded delay ``d`` and reschedule ``entry``.

    The slow tail of a ticker resume: ``(period, n)`` batches, int
    delays, and invalid yields all land here (the run loop inlines only
    the common non-negative-float case). The entry is still in the heap;
    in the common case it is still the root and the reschedule is one
    in-place key bump + ``heapreplace`` sift. If the generator scheduled
    something that displaced the root, the entry is pulled from the
    interior instead (rare, O(n)).
    """
    try:
        if d.__class__ is tuple:
            d, n = d
            if n.__class__ is not int or n < 1:
                raise ValueError(
                    f"tick batch count must be a positive int, got {n!r}")
            remaining = n - 1
        else:
            remaining = 0
        next_t = t + d  # also rejects non-numeric yields (TypeError)
        if d < 0:
            raise ValueError(f"negative tick delay {d}")
    except (TypeError, ValueError) as err:
        _retire_entry(queue, entry)
        close = getattr(ticker._generator, "close", None)
        if close is not None:  # plain iterators have no close()
            close()
        ticker._crash(RuntimeError(
            f"ticker yielded an invalid value ({err}); yield a "
            "non-negative delay or a (period, count) batch"))
        return
    entry[0] = next_t
    entry[1] = _NORMAL
    entry[4] = remaining
    entry[5] = d
    if queue[0] is entry:
        heapreplace(queue, entry)
    else:
        _retire_entry(queue, entry)
        heappush(queue, entry)


def _resume_ticker(queue: list, entry: list, ticker: Ticker,
                   t: float) -> None:
    """Resume a ticker generator; ``entry`` is the heap root (just
    dispatched at time ``t``). The entry is left in the heap across the
    resume — see :func:`_reschedule_ticker` for why.
    """
    try:
        d = ticker._generator.__next__()
    except StopIteration as stop:
        _retire_entry(queue, entry)
        ticker._finish(stop.value)
        return
    except BaseException as err:
        _retire_entry(queue, entry)
        ticker._crash(err)
        return
    _reschedule_ticker(queue, entry, ticker, t, d)
