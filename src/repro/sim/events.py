"""Event primitives for the discrete-event simulation kernel.

Events follow a small life-cycle: *pending* (created, not yet scheduled),
*triggered* (scheduled on the environment's queue with a value), and
*processed* (callbacks ran). Processes are themselves events that trigger
when their generator ends, so processes can wait on each other.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

#: Sentinel for "no value yet"; distinguishes an untriggered event from one
#: triggered with ``None``.
PENDING = object()


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries whatever the interrupter supplied.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    env:
        The environment that will dispatch this event's callbacks.
    """

    # Events are created per-dispatch on the kernel hot path; slots keep
    # them dict-free. ``__weakref__`` stays so sanitizers can key weak maps
    # on live events without pinning them.
    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused",
                 "__weakref__")

    def __init__(self, env: "Environment"):  # noqa: F821 - forward ref
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: Set when a failure was given a chance to be handled.
        self._defused: bool = False

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.env.now}>"

    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded. Only meaningful once triggered."""
        if not self.triggered:
            raise RuntimeError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise RuntimeError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive ``exception``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event."""
        self._ok = event._ok
        self._value = event._value
        self.env._schedule(self)

    # -- composition -------------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """An event that triggers after a fixed delay."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay}>"


class Initialize(Event):
    """Internal event that starts a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):  # noqa: F821
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env._schedule(self, priority=_URGENT)


#: Scheduling priorities: urgent events (process init, interrupts) dispatch
#: before normal events at the same timestamp.
_URGENT = 0
_NORMAL = 1


class Process(Event):
    """Wraps a generator; the de-facto "thread" of the simulation.

    The process is itself an event that triggers with the generator's return
    value when it finishes (or fails with the escaping exception), so other
    processes can ``yield proc`` to join it.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):  # noqa: F821
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process currently waits on.
        self._target: Optional[Event] = None
        Initialize(env, self)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process({name}) at t={self.env.now}>"

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev.callbacks = [self._resume]
        self.env._schedule(interrupt_ev, priority=_URGENT)

    # -- internal ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the event's outcome."""
        self.env._active_process = self
        while True:
            # Ignore stale wakeups: if we were interrupted while waiting on
            # a target, the target may still fire later and must not resume
            # us a second time.
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env._schedule(self)
                break
            except BaseException as err:
                self._ok = False
                self._value = err
                self._defused = False
                self.env._schedule(self)
                break

            if not isinstance(next_event, Event):
                kind = type(next_event).__name__
                err = RuntimeError(
                    f"process yielded a non-event ({kind}); yield Timeout, "
                    "Process, Resource requests, or other Event instances")
                # Crash the process with a clear error.
                try:
                    self._generator.throw(err)
                except StopIteration as stop:
                    self._ok = True
                    self._value = stop.value
                except BaseException as err2:
                    self._ok = False
                    self._value = err2
                self.env._schedule(self)
                break

            if next_event.callbacks is not None:
                # Not yet processed: subscribe and go to sleep.
                next_event.callbacks.append(self._resume_if_target)
                self._target = next_event
                break
            # Already-processed event: loop immediately with its outcome.
            event = next_event

        self._target = None if not self.is_alive else self._target
        self.env._active_process = None

    def _resume_if_target(self, event: Event) -> None:
        """Callback wrapper that drops stale wakeups after interrupts."""
        if not self.is_alive:
            # Process already ended (e.g., crashed on interrupt).
            return
        if self._target is not event and not isinstance(
                event._value, Interrupt):
            return
        self._target = None
        self._resume(event)


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):  # noqa: F821
        super().__init__(env)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.env is not env:
                raise ValueError("events from different environments")
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {
            ev: ev._value
            for ev in self.events
            if ev.triggered and ev._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Triggers when all constituent events have triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(Condition):
    """Triggers as soon as any constituent event triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())
