"""Named, reproducible random-number streams.

Every stochastic component of the reproduction draws from a named stream so
that (a) runs are reproducible from a single root seed and (b) adding a new
source of randomness does not perturb existing streams — a requirement for
the paper's emphasis on calibration and reproducibility (Challenge C3).
"""

from __future__ import annotations

import hashlib

import numpy as np


class RandomStreams:
    """A factory of independent ``numpy.random.Generator`` streams.

    Streams are derived from ``(root_seed, name)`` via SHA-256, so the same
    name always yields the same stream for a given root seed, independent of
    creation order.

    >>> streams = RandomStreams(seed=42)
    >>> a = streams.get("arrivals")
    >>> b = streams.get("arrivals")
    >>> a is b
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode()).digest()
            substream_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(substream_seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory, itself reproducible from ``(seed, name)``."""
        digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "little"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
