"""A unified, namespaced metrics registry for scenario runs.

The registry absorbs the per-domain ad-hoc :class:`~repro.sim.Monitor`
instances into one coherent surface: every metric has a dotted,
lower-case name (``serverless.invocations.shed``), optional labels, and
is backed by the same :class:`~repro.sim.TimeSeries` / counter objects
the monitors always used — a :class:`~repro.sim.Monitor` constructed
with ``registry=`` and ``namespace=`` shares its objects with the
registry, so domain-local reads (``platform.monitor.counters["shed"]``)
and the unified snapshot see the *same* data.

``snapshot()`` returns a deterministic dict of everything recorded;
``export_text()`` renders it Prometheus-style for eyeballs and scrapers.
"""

from __future__ import annotations

import re
from typing import Any, Optional, Union

from repro.sim.monitor import Counter, TimeSeries

__all__ = ["METRIC_NAME_RE", "MetricsRegistry", "metric_name"]

#: Contract for registry metric names: dotted, at least two components,
#: each lower-case ``[a-z0-9_]+``. The cross-domain consistency test
#: holds every recorded metric to this and to the docs/observability.md
#: catalog table.
METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

_SANITIZE_RE = re.compile(r"[^a-z0-9_.]+")


def metric_name(*parts: str) -> str:
    """Join and sanitize name components into a valid dotted metric name.

    ``metric_name("serverless", "latency:f")`` -> ``"serverless.latency_f"``
    — any character outside ``[a-z0-9_.]`` becomes ``_``.
    """
    joined = ".".join(p for p in parts if p)
    return _SANITIZE_RE.sub("_", joined.lower()).strip("._")


def _label_key(labels: Optional[dict]) -> tuple:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(label_key: tuple) -> str:
    if not label_key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in label_key)
    return "{" + inner + "}"


class MetricsRegistry:
    """All metrics of one scenario run, keyed by (name, labels).

    ``strict`` (the default) rejects names that violate
    :data:`METRIC_NAME_RE` — pass names through :func:`metric_name` if
    they may contain stray characters.
    """

    def __init__(self, strict: bool = True):
        self.strict = strict
        self._metrics: dict[tuple[str, tuple],
                            Union[Counter, TimeSeries]] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return any(key[0] == name for key in self._metrics)

    def _validate(self, name: str) -> str:
        if self.strict and not METRIC_NAME_RE.match(name):
            raise ValueError(
                f"invalid metric name {name!r}: must match "
                f"{METRIC_NAME_RE.pattern} (try metric_name() to sanitize)")
        return name

    # -- metric factories --------------------------------------------------
    def counter(self, name: str, labels: Optional[dict] = None) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        key = (self._validate(name), _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Counter(name)
            self._metrics[key] = metric
        elif not isinstance(metric, Counter):
            raise TypeError(f"metric {name!r} is a series, not a counter")
        return metric

    def series(self, name: str, labels: Optional[dict] = None) -> TimeSeries:
        """Get or create the time series (gauge) ``name`` with ``labels``."""
        key = (self._validate(name), _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = TimeSeries(name)
            self._metrics[key] = metric
        elif not isinstance(metric, TimeSeries):
            raise TypeError(f"metric {name!r} is a counter, not a series")
        return metric

    # -- recording shorthands ----------------------------------------------
    def record(self, name: str, value: float, time: float,
               labels: Optional[dict] = None) -> None:
        self.series(name, labels).record(time, value)

    def incr(self, name: str, amount: int = 1, key: Any = None,
             labels: Optional[dict] = None) -> None:
        self.counter(name, labels).incr(key=key, amount=amount)

    # -- adoption (Monitor bridge) -----------------------------------------
    def adopt(self, name: str, metric: Union[Counter, TimeSeries],
              labels: Optional[dict] = None) -> Union[Counter, TimeSeries]:
        """Register an existing metric object under ``name``.

        Used by :class:`~repro.sim.Monitor` so its domain-local objects
        and the registry's are one and the same. Returns the registered
        object — the caller's if the slot was free, the registry's
        existing object otherwise (first writer wins, so a re-created
        monitor keeps appending to the same series).
        """
        key = (self._validate(name), _label_key(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            return existing
        self._metrics[key] = metric
        return metric

    # -- introspection -----------------------------------------------------
    def names(self) -> list[str]:
        """Sorted unique metric names (label sets collapsed)."""
        return sorted({key[0] for key in self._metrics})

    def get(self, name: str, labels: Optional[dict] = None
            ) -> Optional[Union[Counter, TimeSeries]]:
        return self._metrics.get((name, _label_key(labels)))

    def items(self):
        """Deterministic iteration: sorted by (name, labels)."""
        return sorted(self._metrics.items(), key=lambda kv: kv[0])

    def snapshot(self) -> dict:
        """A deterministic, JSON-able dump of every metric.

        Keys are ``name{label="value",...}``; counter values carry
        ``total`` (and ``by_key`` when present), series carry count,
        last value, and time-average.
        """
        out: dict[str, dict] = {}
        for (name, label_key), metric in self.items():
            display = name + _format_labels(label_key)
            if isinstance(metric, Counter):
                entry: dict[str, Any] = {"type": "counter",
                                         "total": metric.total}
                if metric.by_key:
                    entry["by_key"] = {str(k): v for k, v in
                                       sorted(metric.by_key.items(),
                                              key=lambda kv: str(kv[0]))}
            else:
                entry = {"type": "series", "count": len(metric)}
                if len(metric):
                    entry["first_t"] = metric.times[0]
                    entry["last_t"] = metric.times[-1]
                    entry["last"] = metric.values[-1]
                    entry["time_average"] = metric.time_average()
            out[display] = entry
        return out

    def export_text(self) -> str:
        """Prometheus-style exposition (dots become underscores).

        Counters export as ``<name>_total``; series export their last
        value as a gauge plus a ``<name>_samples`` count.
        """
        lines: list[str] = []
        for (name, label_key), metric in self.items():
            flat = name.replace(".", "_")
            labels = _format_labels(label_key)
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {flat}_total counter")
                lines.append(f"{flat}_total{labels} {metric.total}")
                for k in sorted(metric.by_key, key=str):
                    sub = _format_labels(label_key
                                         + (("key", str(k)),))
                    lines.append(f"{flat}_total{sub} {metric.by_key[k]}")
            else:
                last = metric.values[-1] if len(metric) else float("nan")
                lines.append(f"# TYPE {flat} gauge")
                lines.append(f"{flat}{labels} {last:g}")
                lines.append(f"{flat}_samples{labels} {len(metric)}")
        return "\n".join(lines) + ("\n" if lines else "")
