"""The simulation environment: clock, event queue, and run loop."""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from itertools import count
from typing import Any, Callable, Generator, Optional, Union

from repro.sim.events import _NORMAL, Event, Process, Timeout

#: Default epsilon for :func:`time_eq`: generous for second-scale sim time,
#: tight enough to distinguish distinct scheduled instants.
TIME_EPSILON = 1e-9


def time_eq(a: float, b: float, eps: float = TIME_EPSILON) -> bool:
    """Whether two sim timestamps are equal up to accumulated float error.

    Sim time is a float advanced by summing delays, so exact ``==`` on it
    is fragile (simlint rule SL006). The tolerance scales with magnitude:
    ``|a - b| <= eps * max(1, |a|, |b|)``.
    """
    return abs(a - b) <= eps * max(1.0, abs(a), abs(b))


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at an event."""


class EmptySchedule(Exception):
    """Raised when the event queue runs dry before ``until``."""


class DebugViolation(AssertionError):
    """A kernel invariant failed while running with ``debug=True``."""


class Environment:
    """A deterministic discrete-event simulation environment.

    Time is a float starting at ``initial_time`` (default 0) and advances
    only when events are dispatched. Events scheduled at the same timestamp
    dispatch in (priority, insertion-order), which makes runs fully
    deterministic.
    """

    #: Process-wide tracers inherited by environments created inside a
    #: :meth:`traced` block (the determinism sanitizer's hook, the span
    #: tracer's kernel feed). Nested blocks stack additively.
    _default_tracers: tuple = ()
    #: Process-wide profiler inherited by environments created inside a
    #: :meth:`profiled` block (wall-clock attribution per event kind and
    #: per process; see :class:`repro.observability.SimProfiler`).
    _default_profiler = None

    # The environment is touched on every dispatch; slots keep attribute
    # access dict-free (class attributes above are unaffected by slots).
    __slots__ = ("_now", "_queue", "_eid", "_active_process", "debug",
                 "_tracers", "profiler", "dispatch_count", "_current_event",
                 "_on_schedule")

    def __init__(self, initial_time: float = 0.0, debug: bool = False):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        #: Debug mode: assert kernel invariants (clock monotonicity,
        #: non-negative delays, sane dispatch counters) on every step.
        self.debug = debug
        #: Every callable here is invoked as ``tracer(t, eid, kind)`` for
        #: each dispatched event. Multiple subscribers may be active at
        #: once (e.g. a determinism digest and a span tracer).
        self._tracers: list[Callable[[float, int, str], None]] = list(
            Environment._default_tracers)
        #: Optional profiler; when set, :meth:`step` attributes wall-clock
        #: time per event kind and per resumed process to it.
        self.profiler = Environment._default_profiler
        #: Events dispatched so far (a non-negative, monotone counter).
        self.dispatch_count = 0
        #: The event whose callbacks :meth:`step` is currently running;
        #: sanitizers use it to attribute effects to their causing event.
        self._current_event: Optional[Event] = None
        #: Optional hook called as ``fn(event)`` whenever an event is
        #: scheduled (see :class:`repro.analysis.SharedStateSanitizer`).
        self._on_schedule: Optional[Callable[[Event], None]] = None

    @property
    def tracer(self) -> Optional[Callable[[float, int, str], None]]:
        """The first installed tracer (back-compat single-hook view)."""
        return self._tracers[0] if self._tracers else None

    @tracer.setter
    def tracer(self, fn: Optional[Callable[[float, int, str], None]]):
        self._tracers = [fn] if fn is not None else []

    def add_tracer(self, fn: Callable[[float, int, str], None]) -> None:
        """Subscribe ``fn`` to every dispatched event (additive)."""
        self._tracers.append(fn)

    def remove_tracer(self, fn: Callable[[float, int, str], None]) -> None:
        self._tracers.remove(fn)

    @classmethod
    @contextmanager
    def traced(cls, tracer: Callable[[float, int, str], None]):
        """Install ``tracer`` on every Environment created in the block.

        This is how :class:`repro.analysis.sanitizers.DeterminismSanitizer`
        observes scenarios that construct their own environments. Nested
        ``traced`` blocks stack: every active tracer sees every event.
        """
        previous = cls._default_tracers
        cls._default_tracers = previous + (tracer,)
        try:
            yield tracer
        finally:
            cls._default_tracers = previous

    @classmethod
    @contextmanager
    def profiled(cls, profiler):
        """Install ``profiler`` on every Environment created in the block.

        The profiler (see :class:`repro.observability.SimProfiler`)
        receives per-dispatch and per-callback wall-clock attributions
        from :meth:`step`. Only one profiler is active at a time; nested
        blocks shadow the outer profiler for their duration.
        """
        previous = cls._default_profiler
        cls._default_profiler = profiler
        try:
            yield profiler
        finally:
            cls._default_profiler = previous

    def __repr__(self) -> str:
        return f"<Environment t={self._now} queued={len(self._queue)}>"

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories -----------------------------------------------------
    def event(self) -> Event:
        """A fresh, untriggered event (trigger it with ``succeed``/``fail``)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator function's generator."""
        return Process(self, generator)

    def all_of(self, events) -> "Event":
        from repro.sim.events import AllOf
        return AllOf(self, events)

    def any_of(self, events) -> "Event":
        from repro.sim.events import AnyOf
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------------
    def _schedule(self, event: Event, priority: int = _NORMAL,
                  delay: float = 0.0) -> None:
        if self.debug and delay < 0:
            raise DebugViolation(
                f"scheduling {event!r} with negative delay {delay}")
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event))
        if self._on_schedule is not None:
            self._on_schedule(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Dispatch exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise EmptySchedule()
        t, _, eid, event = heapq.heappop(self._queue)
        if self.debug and t < self._now:
            raise DebugViolation(
                f"clock would move backwards: {self._now} -> {t} "
                f"dispatching {event!r}")
        self._now = t
        self.dispatch_count += 1
        self._current_event = event
        profiler = self.profiler
        if self._tracers or profiler is not None:
            kind = type(event).__name__
            for tracer in self._tracers:
                tracer(t, eid, kind)
        callbacks, event.callbacks = event.callbacks, None
        if profiler is None:
            for callback in callbacks:
                callback(event)
        else:
            t0 = profiler.clock()
            for callback in callbacks:
                c0 = profiler.clock()
                callback(event)
                profiler.account_callback(callback, profiler.clock() - c0)
            profiler.account_dispatch(kind, profiler.clock() - t0)
        self._current_event = None
        if not event._ok and not event._defused:
            # An unhandled failure: surface it rather than losing it.
            raise event._value

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        - ``None``: run until the event queue is exhausted;
        - a number: run until the clock reaches that time;
        - an :class:`Event`: run until that event is processed, returning
          its value (or raising its failure).
        """
        if until is None:
            stop_at = float("inf")
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_at = float("inf")
            stop_event = until
            if stop_event.callbacks is None:  # already processed
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
            stop_event.callbacks.append(self._stop_callback)
        else:
            stop_at = float(until)
            if stop_at <= self._now:
                raise ValueError(
                    f"until ({stop_at}) must be greater than now ({self._now})")
            stop_event = None

        try:
            # Hot loop: pre-bind the queue and step; ``queue[0][0]`` is
            # ``peek()`` without the attribute walk and truth-test detour.
            queue = self._queue
            step = self.step
            while queue and queue[0][0] < stop_at:
                step()
        except StopSimulation as stop:
            event = stop.args[0]
            if event._ok:
                return event._value
            raise event._value
        if stop_event is not None:
            raise RuntimeError(
                "event queue ran dry before the until-event triggered")
        if stop_at != float("inf"):
            self._now = stop_at
        return None

    def _stop_callback(self, event: Event) -> None:
        event._defused = True
        raise StopSimulation(event)
