"""The simulation environment: clock, event queue, and run loop.

The dispatch machinery is split into two tiers:

- an *instrumented* path (:meth:`Environment.step`) that feeds tracers,
  the profiler, debug invariants, and the scheduling hook; and
- a *fast* path inlined into :meth:`Environment.run` that dispatches
  straight off the heap with pre-bound locals when none of those are
  installed — the common case, and the hot path under every domain.

Which tier runs is decided per dispatch by a one-cell "live" flag kept
current by every hook mutator (``add_tracer``/``remove_tracer``, the
``tracer``/``profiler``/``debug``/``_on_schedule`` setters), so
installing a tracer mid-run takes effect on the next dispatch and
removing the last one restores the zero-overhead loop.

Queue entries are mutable lists ``[time, priority, eid, obj, remaining,
period]`` rather than tuples so the ticker fast path (see
:class:`repro.sim.Ticker`) can reschedule by mutating the root entry in
place and re-sifting once (``heapreplace``) instead of allocating and
doing a pop + push. The last two cells are ticker batch state; they are
zero on every other entry, which lets the run loop recognize a mid-batch
tick — the highest-volume dispatch — from ``entry[4]`` alone, without
loading the payload object or checking its class. Entries never compare
beyond the eid cell (eids are unique), so the trailing cells don't
affect heap order.
"""

from __future__ import annotations

from contextlib import contextmanager
from heapq import heapify, heappop, heappush, heapreplace
from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional, Union

from repro.sim.events import (
    _NORMAL,
    _URGENT,
    Event,
    Process,
    Ticker,
    Timeout,
    _reschedule_ticker,
    _resume_ticker,
    _retire_entry,
)

#: Default epsilon for :func:`time_eq`: generous for second-scale sim time,
#: tight enough to distinguish distinct scheduled instants.
TIME_EPSILON = 1e-9


def time_eq(a: float, b: float, eps: float = TIME_EPSILON) -> bool:
    """Whether two sim timestamps are equal up to accumulated float error.

    Sim time is a float advanced by summing delays, so exact ``==`` on it
    is fragile (simlint rule SL006). The tolerance scales with magnitude:
    ``|a - b| <= eps * max(1, |a|, |b|)``.
    """
    return abs(a - b) <= eps * max(1.0, abs(a), abs(b))


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at an event."""


class EmptySchedule(Exception):
    """Raised when the event queue runs dry before ``until``."""


class DebugViolation(AssertionError):
    """A kernel invariant failed while running with ``debug=True``."""


class Environment:
    """A deterministic discrete-event simulation environment.

    Time is a float starting at ``initial_time`` (default 0) and advances
    only when events are dispatched. Events scheduled at the same timestamp
    dispatch in (priority, insertion-order), which makes runs fully
    deterministic.
    """

    #: Process-wide tracers inherited by environments created inside a
    #: :meth:`traced` block (the determinism sanitizer's hook, the span
    #: tracer's kernel feed). Nested blocks stack additively.
    _default_tracers: tuple = ()
    #: Process-wide profiler inherited by environments created inside a
    #: :meth:`profiled` block (wall-clock attribution per event kind and
    #: per process; see :class:`repro.observability.SimProfiler`).
    _default_profiler = None

    # The environment is touched on every dispatch; slots keep attribute
    # access dict-free (class attributes above are unaffected by slots).
    __slots__ = ("_now", "_queue", "_eid", "_active_process", "_debug",
                 "_tracers", "_profiler", "dispatch_count", "_current_event",
                 "_schedule_hook", "_live")

    def __init__(self, initial_time: float = 0.0, debug: bool = False):
        self._now = float(initial_time)
        self._queue: list[list] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        #: Debug mode: assert kernel invariants (clock monotonicity,
        #: non-negative delays, sane dispatch counters) on every step.
        self._debug = bool(debug)
        #: Every callable here is invoked as ``tracer(t, eid, kind)`` for
        #: each dispatched event. Multiple subscribers may be active at
        #: once (e.g. a determinism digest and a span tracer).
        self._tracers: list[Callable[[float, int, str], None]] = list(
            Environment._default_tracers)
        #: Optional profiler; when set, :meth:`step` attributes wall-clock
        #: time per event kind and per resumed process to it.
        self._profiler = Environment._default_profiler
        #: Events dispatched so far (a non-negative, monotone counter).
        self.dispatch_count = 0
        #: The event whose callbacks :meth:`step` is currently running;
        #: sanitizers use it to attribute effects to their causing event.
        self._current_event: Optional[Event] = None
        #: Optional hook called as ``fn(event)`` whenever an event is
        #: scheduled (see :class:`repro.analysis.SharedStateSanitizer`).
        self._schedule_hook: Optional[Callable[[Event], None]] = None
        #: One-cell instrumentation flag, pre-bound as a local by the run
        #: loop. ``_live[0]`` is True iff any dispatch-time hook (tracer,
        #: profiler, debug invariants, scheduling hook) is installed —
        #: every hook mutator keeps it current via
        #: :meth:`_refresh_instrumentation`, so a mid-run ``add_tracer``
        #: is honored on the very next dispatch.
        self._live = [False]
        self._refresh_instrumentation()

    def _refresh_instrumentation(self) -> None:
        """Recompute the live flag after any hook change."""
        self._live[0] = bool(
            self._tracers
            or self._profiler is not None
            or self._schedule_hook is not None
            or self._debug)

    @property
    def _instrumented(self) -> bool:
        """Whether dispatch currently routes through :meth:`step`."""
        return self._live[0]

    @property
    def debug(self) -> bool:
        return self._debug

    @debug.setter
    def debug(self, enabled: bool) -> None:
        self._debug = bool(enabled)
        self._refresh_instrumentation()

    @property
    def profiler(self):
        return self._profiler

    @profiler.setter
    def profiler(self, profiler) -> None:
        self._profiler = profiler
        self._refresh_instrumentation()

    @property
    def _on_schedule(self) -> Optional[Callable[[Event], None]]:
        return self._schedule_hook

    @_on_schedule.setter
    def _on_schedule(self, fn: Optional[Callable[[Event], None]]) -> None:
        self._schedule_hook = fn
        self._refresh_instrumentation()

    @property
    def tracer(self) -> Optional[Callable[[float, int, str], None]]:
        """The first installed tracer (back-compat single-hook view)."""
        return self._tracers[0] if self._tracers else None

    @tracer.setter
    def tracer(self, fn: Optional[Callable[[float, int, str], None]]):
        self._tracers = [fn] if fn is not None else []
        self._refresh_instrumentation()

    def add_tracer(self, fn: Callable[[float, int, str], None]) -> None:
        """Subscribe ``fn`` to every dispatched event (additive)."""
        self._tracers.append(fn)
        self._refresh_instrumentation()

    def remove_tracer(self, fn: Callable[[float, int, str], None]) -> None:
        self._tracers.remove(fn)
        self._refresh_instrumentation()

    @classmethod
    @contextmanager
    def traced(cls, tracer: Callable[[float, int, str], None]):
        """Install ``tracer`` on every Environment created in the block.

        This is how :class:`repro.analysis.sanitizers.DeterminismSanitizer`
        observes scenarios that construct their own environments. Nested
        ``traced`` blocks stack: every active tracer sees every event.
        """
        previous = cls._default_tracers
        cls._default_tracers = previous + (tracer,)
        try:
            yield tracer
        finally:
            cls._default_tracers = previous

    @classmethod
    @contextmanager
    def profiled(cls, profiler):
        """Install ``profiler`` on every Environment created in the block.

        The profiler (see :class:`repro.observability.SimProfiler`)
        receives per-dispatch and per-callback wall-clock attributions
        from :meth:`step`. Only one profiler is active at a time; nested
        blocks shadow the outer profiler for their duration.
        """
        previous = cls._default_profiler
        cls._default_profiler = profiler
        try:
            yield profiler
        finally:
            cls._default_profiler = previous

    def __repr__(self) -> str:
        return f"<Environment t={self._now} queued={len(self._queue)}>"

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories -----------------------------------------------------
    def event(self) -> Event:
        """A fresh, untriggered event (trigger it with ``succeed``/``fail``)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def timeout_batch(self, delays: Iterable[float],
                      value: Any = None) -> list[Timeout]:
        """Schedule one timeout per delay in a single batched heap build.

        Dispatch order is identical to ``[self.timeout(d) for d in
        delays]`` — eids are allocated in iteration order and the heap
        pop sequence depends only on ``(time, priority, eid)`` — but
        when the batch rivals the queue in size the entries are appended
        and heapified once (O(n + q)) instead of sifted one by one
        (O(n log q)). Useful for pre-loading arrival/retry schedules.
        """
        queue = self._queue
        now = self._now
        eid = self._eid
        raw = Timeout._raw
        events: list[Timeout] = []
        entries: list[list] = []
        for delay in delays:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            event = raw(self, delay, value)
            events.append(event)
            entries.append([now + delay, _NORMAL, next(eid), event, 0, 0.0])
        if entries:
            if 4 * len(entries) >= len(queue):
                queue.extend(entries)
                heapify(queue)
            else:
                for entry in entries:
                    heappush(queue, entry)
            hook = self._schedule_hook
            if hook is not None:
                for event in events:
                    hook(event)
        return events

    def process(self, generator: Generator) -> Process:
        """Start a new process from a generator function's generator."""
        return Process(self, generator)

    def ticker(self, generator: Union[Generator, Iterable]) -> Ticker:
        """Start a pure-delay process on the timeout fast path.

        ``generator`` — a generator, or any iterator such as a
        precomputed delay list wrapped in ``iter()`` — yields raw
        delays: ``yield d`` for one tick, ``yield (period, n)`` for a
        batch of ``n`` fixed-period ticks — instead of events (see
        :class:`repro.sim.Ticker`). The body starts urgently at the
        current time, like ``process``.
        """
        ticker = Ticker(self, generator)
        entry = [self._now, _URGENT, next(self._eid), ticker, 0, 0.0]
        ticker._entry = entry
        heappush(self._queue, entry)
        return ticker

    def all_of(self, events) -> "Event":
        from repro.sim.events import AllOf
        return AllOf(self, events)

    def any_of(self, events) -> "Event":
        from repro.sim.events import AnyOf
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------------
    def _schedule(self, event: Event, priority: int = _NORMAL,
                  delay: float = 0.0) -> None:
        if self._debug and delay < 0:
            raise DebugViolation(
                f"scheduling {event!r} with negative delay {delay}")
        heappush(self._queue,
                 [self._now + delay, priority, next(self._eid), event, 0, 0.0])
        hook = self._schedule_hook
        if hook is not None:
            hook(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Dispatch exactly one event (advancing the clock to it).

        This is the instrumented dispatch tier: it feeds tracers, the
        profiler, debug invariants, and ``_current_event``. The run loop
        only routes through here while a hook is installed; manual
        stepping always uses it (the overhead is irrelevant off the hot
        loop, and behavior is identical either way).
        """
        queue = self._queue
        if not queue:
            raise EmptySchedule()
        entry = queue[0]
        t = entry[0]
        obj = entry[3]
        if self._debug and t < self._now:
            raise DebugViolation(
                f"clock would move backwards: {self._now} -> {t} "
                f"dispatching {obj!r}")
        self._now = t
        self.dispatch_count += 1
        profiler = self._profiler
        tracers = self._tracers
        if tracers or profiler is not None:
            kind = obj._kind
            for tracer in tracers:
                tracer(t, entry[2], kind)
        if obj.__class__ is Ticker:
            # A tick: advance the ticker in place; no callbacks run
            # (the generator body is the "callback").
            self._current_event = obj
            if profiler is None:
                self._advance_ticker(queue, entry, obj, t)
            else:
                t0 = profiler.clock()
                self._advance_ticker(queue, entry, obj, t)
                profiler.account_dispatch(kind, profiler.clock() - t0)
            self._current_event = None
            return
        heappop(queue)
        event = obj
        self._current_event = event
        callbacks = event.callbacks
        event.callbacks = None
        if profiler is None:
            for callback in callbacks:
                callback(event)
        else:
            t0 = profiler.clock()
            for callback in callbacks:
                c0 = profiler.clock()
                callback(event)
                profiler.account_callback(callback, profiler.clock() - c0)
            profiler.account_dispatch(kind, profiler.clock() - t0)
        self._current_event = None
        if not event._ok and not event._defused:
            # An unhandled failure: surface it rather than losing it.
            raise event._value

    @staticmethod
    def _advance_ticker(queue: list, entry: list, ticker: Ticker,
                        t: float) -> None:
        """Dispatch one tick of the ticker whose entry is ``queue[0]``."""
        remaining = entry[4]
        if remaining:
            # Mid-batch: reschedule by mutating the root in place — one
            # sift, no allocation, no generator resume.
            entry[4] = remaining - 1
            entry[0] = t + entry[5]
            heapreplace(queue, entry)
        else:
            _resume_ticker(queue, entry, ticker, t)

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        - ``None``: run until the event queue is exhausted;
        - a number: run until the clock reaches that time;
        - an :class:`Event`: run until that event is processed, returning
          its value (or raising its failure).
        """
        if until is None:
            stop_at = float("inf")
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_at = float("inf")
            stop_event = until
            if stop_event.callbacks is None:  # already processed
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
            stop_event.callbacks.append(self._stop_callback)
        else:
            stop_at = float(until)
            if stop_at <= self._now:
                raise ValueError(
                    f"until ({stop_at}) must be greater than now ({self._now})")
            stop_event = None

        # Hot loops: everything touched per dispatch is pre-bound to a
        # local; ``queue[0][0]`` is ``peek()`` without the attribute
        # walk. Each tier runs its own inner loop and transitions happen
        # only where they can: hooks are installed/removed exclusively
        # by user code, and no user code runs on a mid-batch tick, so
        # the fast loops re-read ``live[0]`` only after a generator
        # resume or an event's callbacks — a tracer installed by a
        # callback mid-run still flips the very next dispatch onto the
        # instrumented tier, without the highest-volume dispatch paying
        # a per-tick flag check. The fast tier additionally exists in
        # two copies — unbounded and ``until``-bounded — because the
        # time-bound compare is measurable at tick rate and both
        # ``run()`` and ``run(until=event)`` take the unbounded one
        # (an until-event stops via StopSimulation, not the clock).
        # Keep the three inner loops in sync.
        queue = self._queue
        live = self._live
        step = self.step
        ticker_cls = Ticker
        resched = _reschedule_ticker
        retire = _retire_entry
        replace = heapreplace
        push = heappush
        pop = heappop
        normal = _NORMAL
        dispatches = 0
        t = self._now
        halted = False
        try:
            while queue and not halted:
                if live[0]:
                    # -- instrumented tier: every dispatch via step().
                    while queue:
                        t = queue[0][0]
                        if t >= stop_at:
                            halted = True
                            break
                        step()
                        if not live[0]:
                            break
                elif stop_at == float("inf"):
                    # -- fast tier, unbounded. ``while True``: a
                    # mid-batch tick never changes the queue size, so
                    # emptiness is re-checked only after dispatches
                    # that can pop (the user-code exits below).
                    while True:
                        entry = queue[0]
                        dispatches += 1
                        remaining = entry[4]
                        if remaining:
                            # Mid-batch tick: only a ticker entry has a
                            # nonzero batch count, so no payload load or
                            # class check is needed. No user code runs,
                            # so the clock store is deferred (every
                            # branch that reaches user code — and the
                            # run exit paths, which can only follow one
                            # — publish ``t`` before anything can
                            # observe ``now``).
                            entry[4] = remaining - 1
                            entry[0] = entry[0] + entry[5]
                            replace(queue, entry)
                            continue
                        t = entry[0]
                        obj = entry[3]
                        if obj.__class__ is ticker_cls:
                            # Resume point: inline the common case (the
                            # generator yields a non-negative float) —
                            # at tick rate the ``_resume_ticker`` call
                            # itself is measurable. Batches, int delays,
                            # invalid yields, and termination funnel to
                            # the shared helpers, so behavior is
                            # identical to the step() tier.
                            self._now = t
                            try:
                                d = obj._generator.__next__()
                            except StopIteration as stop:
                                retire(queue, entry)
                                obj._finish(stop.value)
                            except BaseException as err:
                                retire(queue, entry)
                                obj._crash(err)
                            else:
                                if d.__class__ is float and d >= 0.0:
                                    entry[0] = t + d
                                    entry[1] = normal
                                    if queue[0] is entry:
                                        replace(queue, entry)
                                    else:
                                        # Displaced mid-resume by some-
                                        # thing the generator scheduled
                                        # (rare).
                                        retire(queue, entry)
                                        push(queue, entry)
                                else:
                                    resched(queue, entry, obj, t, d)
                            if live[0] or not queue:
                                break
                            continue
                        self._now = t
                        pop(queue)
                        callbacks = obj.callbacks
                        obj.callbacks = None
                        for callback in callbacks:
                            callback(obj)
                        if not obj._ok and not obj._defused:
                            raise obj._value
                        if live[0] or not queue:
                            break
                else:
                    # -- fast tier, bounded: identical plus the time
                    # bound.
                    while True:
                        entry = queue[0]
                        t = entry[0]
                        if t >= stop_at:
                            halted = True
                            break
                        dispatches += 1
                        remaining = entry[4]
                        if remaining:
                            entry[4] = remaining - 1
                            entry[0] = t + entry[5]
                            replace(queue, entry)
                            continue
                        obj = entry[3]
                        if obj.__class__ is ticker_cls:
                            self._now = t
                            try:
                                d = obj._generator.__next__()
                            except StopIteration as stop:
                                retire(queue, entry)
                                obj._finish(stop.value)
                            except BaseException as err:
                                retire(queue, entry)
                                obj._crash(err)
                            else:
                                if d.__class__ is float and d >= 0.0:
                                    entry[0] = t + d
                                    entry[1] = normal
                                    if queue[0] is entry:
                                        replace(queue, entry)
                                    else:
                                        retire(queue, entry)
                                        push(queue, entry)
                                else:
                                    resched(queue, entry, obj, t, d)
                            if live[0] or not queue:
                                break
                            continue
                        self._now = t
                        pop(queue)
                        callbacks = obj.callbacks
                        obj.callbacks = None
                        for callback in callbacks:
                            callback(obj)
                        if not obj._ok and not obj._defused:
                            raise obj._value
                        if live[0] or not queue:
                            break
        except StopSimulation as stop:
            event = stop.args[0]
            if event._ok:
                return event._value
            raise event._value
        finally:
            # ``t`` is the time of the last dispatched (or, on a
            # stop_at break, peeked — corrected right below) entry.
            self._now = t
            self.dispatch_count += dispatches
        if stop_event is not None:
            raise RuntimeError(
                "event queue ran dry before the until-event triggered")
        if stop_at != float("inf"):
            self._now = stop_at
        return None

    def _stop_callback(self, event: Event) -> None:
        event._defused = True
        raise StopSimulation(event)
