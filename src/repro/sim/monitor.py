"""Instrumentation for simulations: time series, counters, and summaries.

The paper stresses that "monitoring only reveals what is measurable and
measured" (§2.1); these helpers make measuring cheap so experiments measure
everything they report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np


@dataclass
class TimeSeries:
    """Timestamped samples of a scalar signal."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)

    def time_average(self, until: Optional[float] = None) -> float:
        """Time-weighted mean, treating the signal as right-continuous steps."""
        if not self.times:
            return math.nan
        times = list(self.times)
        values = list(self.values)
        end = until if until is not None else times[-1]
        if end <= times[0]:
            return values[0]
        total = 0.0
        for i in range(len(times)):
            t0 = times[i]
            t1 = times[i + 1] if i + 1 < len(times) else end
            t1 = min(t1, end)
            if t1 > t0:
                total += values[i] * (t1 - t0)
        return total / (end - times[0])

    def resample(self, step: float, until: Optional[float] = None
                 ) -> tuple[np.ndarray, np.ndarray]:
        """Sample the step signal on a regular grid (for metric pipelines)."""
        if not self.times:
            return np.array([]), np.array([])
        end = until if until is not None else self.times[-1]
        grid = np.arange(self.times[0], end + step / 2, step)
        times = np.asarray(self.times)
        idx = np.searchsorted(times, grid, side="right") - 1
        idx = np.clip(idx, 0, len(times) - 1)
        return grid, np.asarray(self.values)[idx]


@dataclass
class Counter:
    """A monotone event counter with optional per-key breakdown."""

    name: str
    total: int = 0
    by_key: dict[Any, int] = field(default_factory=dict)

    def incr(self, key: Any = None, amount: int = 1) -> None:
        self.total += amount
        if key is not None:
            self.by_key[key] = self.by_key.get(key, 0) + amount


class Monitor:
    """A namespace of :class:`TimeSeries` and :class:`Counter` objects.

    Every monitor is backed by a
    :class:`~repro.observability.MetricsRegistry`: pass one (plus a
    ``namespace``) to pool metrics from many components into a single
    scenario-wide registry, or let the monitor own a private registry.
    The registry holds the *same* objects as :attr:`series` /
    :attr:`counters`, under dotted names — a local ``record("queue_length",
    ...)`` in namespace ``"scheduling"`` is the registry metric
    ``scheduling.queue_length``. Local names containing ``:`` (the
    historical per-entity convention, e.g. ``latency:f``) keep their full
    name locally but register as the base name with a ``key`` label.

    Timestamps come from ``env.now``, an explicit ``time=``, or — only
    when constructed with ``ordinal_time=True`` — a per-series ordinal
    (0, 1, 2, ...). Without any of the three, :meth:`record` raises
    rather than guessing (and rather than silently dropping the sample).
    """

    def __init__(self, env=None, registry=None, namespace: str = "sim",
                 ordinal_time: bool = False):
        if registry is None:
            from repro.sim.registry import MetricsRegistry
            registry = MetricsRegistry()
        self.env = env
        self.registry = registry
        self.namespace = namespace
        #: Explicit opt-in for env-less monitors: timestamp records with
        #: the series' sample index instead of raising.
        self.ordinal_time = ordinal_time
        self.series: dict[str, TimeSeries] = {}
        self.counters: dict[str, Counter] = {}

    def _registry_key(self, name: str) -> tuple[str, Optional[dict]]:
        """Map a local name to (registry name, labels)."""
        from repro.sim.registry import metric_name
        base, sep, key = name.partition(":")
        labels = {"key": key} if sep else None
        return metric_name(self.namespace, base), labels

    def _series(self, name: str) -> TimeSeries:
        series = self.series.get(name)
        if series is None:
            reg_name, labels = self._registry_key(name)
            series = self.registry.adopt(reg_name, TimeSeries(name), labels)
            self.series[name] = series
        return series

    def _counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            reg_name, labels = self._registry_key(name)
            counter = self.registry.adopt(reg_name, Counter(name), labels)
            self.counters[name] = counter
        return counter

    def record(self, name: str, value: float,
               time: Optional[float] = None) -> None:
        series = self._series(name)
        if time is None:
            if self.env is not None:
                time = self.env.now
            elif self.ordinal_time:
                time = float(len(series))
            else:
                raise ValueError(
                    "no env attached; pass time explicitly or construct "
                    "the Monitor with ordinal_time=True")
        series.record(time, value)

    def count(self, name: str, key: Any = None, amount: int = 1) -> None:
        self._counter(name).incr(key, amount)

    def __getitem__(self, name: str) -> TimeSeries:
        return self.series[name]

    def __contains__(self, name: str) -> bool:
        return name in self.series or name in self.counters


def summarize(values) -> dict[str, float]:
    """Distributional summary matching the paper's violin-plot statistics.

    Returns mean, median, IQR bounds, whiskers (1.5×IQR clipped to data),
    min, max, and count — the exact annotations of Figure 3.

    Empty input returns ``{"count": 0}`` and nothing else; ``None`` and
    NaN samples are dropped before summarizing (so a series that never
    fired, e.g. ``TimeSeries.last()`` of an empty series, cannot poison
    the percentiles), and input that is *all* None/NaN is treated as
    empty.
    """
    arr = np.asarray([v for v in values if v is not None], dtype=float)
    arr = arr[~np.isnan(arr)]
    if arr.size == 0:
        return {"count": 0}
    q1, med, q3 = np.percentile(arr, [25, 50, 75])
    iqr = q3 - q1
    lo_whisk = arr[arr >= q1 - 1.5 * iqr].min()
    hi_whisk = arr[arr <= q3 + 1.5 * iqr].max()
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "median": float(med),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "q1": float(q1),
        "q3": float(q3),
        "iqr": float(iqr),
        "whisker_low": float(lo_whisk),
        "whisker_high": float(hi_whisk),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }
