"""Discrete-event simulation kernel for the AtLarge reproduction.

A self-contained, deterministic, generator-based discrete-event simulation
(DES) engine in the style of SimPy, built from scratch because the paper's
experiments (P2P swarms, MMOG worlds, datacenter schedulers, FaaS platforms,
autoscalers) all need a common notion of simulated time, concurrent
processes, and contended resources.

Public surface:

- :class:`Environment` — the simulation clock and event loop.
- :class:`Event`, :class:`Timeout`, :class:`Process`, :class:`AllOf`,
  :class:`AnyOf` — the event types processes wait on.
- :class:`Ticker` — a pure-delay process on the kernel's timeout fast
  path (yields raw delays or ``(period, n)`` batches instead of events).
- :class:`Interrupt` — exception thrown into interrupted processes.
- :class:`Resource`, :class:`PriorityResource`, :class:`PreemptiveResource`
  — capacity-limited resources with FIFO / priority / preemptive queueing.
- :class:`Container` — continuous level (e.g., energy budget, tokens).
- :class:`Store`, :class:`FilterStore`, :class:`PriorityStore` — object
  queues between processes.
- :class:`BoundedQueue` — capacity-bounded FIFO that rejects or sheds on
  overflow (the backpressure primitive of the resilience layer).
- :class:`Network` — fault-aware message routing between named nodes
  (partitions, loss, and latency attach as duck-typed fault models).
- :class:`RandomStreams` — named, reproducible RNG streams.
- :class:`Monitor`, :class:`TimeSeries`, :class:`Counter` — instrumentation.
- :func:`time_eq` — epsilon comparison for sim timestamps (simlint SL006).
- :class:`DebugViolation` — raised by ``Environment(debug=True)`` when a
  kernel invariant (clock monotonicity, non-negative delay) fails.

Example
-------
>>> env = Environment()
>>> log = []
>>> def clock(env, name, tick):
...     while True:
...         log.append((name, env.now))
...         yield env.timeout(tick)
>>> _ = env.process(clock(env, 'fast', 1))
>>> env.run(until=3)
>>> log
[('fast', 0), ('fast', 1), ('fast', 2)]
"""

from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Ticker,
    Timeout,
)
from repro.sim.environment import (
    DebugViolation,
    Environment,
    StopSimulation,
    TIME_EPSILON,
    time_eq,
)
from repro.sim.resources import (
    BoundedQueue,
    Container,
    FilterStore,
    PreemptiveResource,
    Preempted,
    PriorityResource,
    PriorityStore,
    Resource,
    Store,
)
from repro.sim.rng import RandomStreams
from repro.sim.monitor import Counter, Monitor, TimeSeries, summarize
from repro.sim.network import Network
from repro.sim.registry import METRIC_NAME_RE, MetricsRegistry, metric_name

__all__ = [
    "AllOf",
    "AnyOf",
    "BoundedQueue",
    "Container",
    "Counter",
    "DebugViolation",
    "Environment",
    "Event",
    "FilterStore",
    "Interrupt",
    "METRIC_NAME_RE",
    "MetricsRegistry",
    "metric_name",
    "Monitor",
    "Network",
    "Preempted",
    "PreemptiveResource",
    "PriorityResource",
    "PriorityStore",
    "Process",
    "RandomStreams",
    "Resource",
    "StopSimulation",
    "Store",
    "TIME_EPSILON",
    "Ticker",
    "TimeSeries",
    "Timeout",
    "summarize",
    "time_eq",
]
