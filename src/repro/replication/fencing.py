"""Fencing tokens: the machines' defense against a deposed leader.

Election terms double as fencing tokens. Every dispatch carries the
sending brain's current term; every completion report carries the
highest term its machine has witnessed. At failover the new leader
broadcasts a ``fence`` message that raises each machine's floor to the
new term *before* the new brain dispatches, so:

- a deposed leader's dispatches arrive with ``token < floor`` and are
  rejected at the machine — split-brain writes become a counted
  non-event instead of silent corruption;
- a report stamped with a pre-fence token is refused by the live brain
  (``admit_report``), which teaches the machine the current term.

One :class:`FencingGate` instance is the simulation's shared ledger for
both sides of the protocol: the control plane's current term and every
machine's witnessed floor.
"""

from __future__ import annotations

from typing import Optional

from repro.sim import Monitor


class FencingGate:
    """Term floor per machine plus the control plane's current term."""

    def __init__(self, monitor: Optional[Monitor] = None):
        self.term = 0
        self._floor: dict[str, int] = {}
        self.accepted = 0
        #: Dispatches rejected at a machine because the token was below
        #: the machine's fenced floor — the split-brain counter the
        #: ``replication.fenced_writes_rejected`` law audits.
        self.rejected = 0
        self.fenced_reports = 0
        self.fence_raises = 0
        self.monitor = monitor

    def advance(self, term: int) -> None:
        """The control plane moved to ``term`` (promotion or boot)."""
        self.term = max(self.term, int(term))

    def raise_floor(self, target: str, term: int) -> None:
        """A ``fence`` message landed at ``target``: lift its floor."""
        if term > self._floor.get(target, 0):
            self._floor[target] = int(term)
            self.fence_raises += 1

    def floor_of(self, target: str) -> int:
        return self._floor.get(target, 0)

    def dispatch_token(self) -> int:
        """Token the current brain stamps on an outgoing dispatch."""
        return self.term

    def admit_dispatch(self, target: str, token: int) -> bool:
        """Machine-side check: does this dispatch outrank the fence?"""
        floor = self._floor.get(target, 0)
        if token < floor:
            self.rejected += 1
            if self.monitor is not None:
                self.monitor.count("fenced_rejections", key=target)
            return False
        if token > floor:
            self._floor[target] = int(token)
        self.accepted += 1
        return True

    def report_token(self, target: str) -> int:
        """Token a machine stamps on an outgoing completion report."""
        return self._floor.get(target, 0)

    def admit_report(self, target: str, token: int) -> bool:
        """Brain-side check on an arriving report.

        A token below the current term means the machine has not
        witnessed the newest fence yet; refuse the report (the sender
        retries) and teach the machine the live term.
        """
        if token < self.term:
            self.fenced_reports += 1
            if self.monitor is not None:
                self.monitor.count("fenced_reports", key=target)
            self.raise_floor(target, self.term)
            return False
        return True
