"""Journal shipping: the leader streams its WAL to hot standbys.

The leader's :class:`~repro.recovery.journal.Journal` is the source of
truth; :class:`JournalReplicator` ships its *durable* records (append
cost already paid) to every standby over the network fabric in seq
order, and standbys acknowledge cumulatively. The acked window is the
durability guarantee a promotion relies on: everything at or below
``acked`` provably reached the standby before the leader died.

Delivery is at-least-once and order-tolerant: records lost to drops or
partitions are re-shipped from the cumulative ack on every tick (counted
as resends), receivers apply strictly in seq order and discard gaps and
duplicates. ``on_apply(standby, record)`` fires exactly once per record
per standby, in order — the hook a control plane uses to keep each
standby's believed-state replica warm, so promotion replays nothing.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.recovery.journal import Journal, JournalRecord
from repro.sim import Environment, Monitor, Network


class JournalReplicator:
    """Leader-to-standby WAL streaming with a cumulative acked window."""

    def __init__(self, env: Environment, network: Network, journal: Journal,
                 leader: str, standbys: Iterable[str], *,
                 ship_interval_s: float = 0.5,
                 batch: int = 16,
                 on_apply: Optional[
                     Callable[[str, JournalRecord], None]] = None,
                 monitor: Optional[Monitor] = None):
        self.env = env
        self.network = network
        self.journal = journal
        self.leader = leader
        self.standbys = [n for n in standbys if n != leader]
        self.ship_interval_s = ship_interval_s
        self.batch = batch
        self.on_apply = on_apply
        self.monitor = monitor

        all_nodes = [leader, *self.standbys]
        #: Highest seq ever sent to each node (resend detection).
        self._sent = {n: -1 for n in all_nodes}
        #: Highest seq each node has applied, contiguously.
        self._applied = {n: -1 for n in all_nodes}
        #: Leader's view: highest cumulatively acked seq per node.
        self.acked = {n: -1 for n in all_nodes}
        #: Each standby's replica of the shipped prefix, in seq order.
        self.replicas: dict[str, list[JournalRecord]] = {
            n: [] for n in all_nodes}

        self.shipped_records = 0
        self.resends = 0
        self.acks_received = 0
        self.batches = 0
        self.duplicates = 0
        self.out_of_order = 0

        self._proc = env.process(self._ship_loop())

    def set_leader(self, node: str) -> None:
        """Promotion: ``node`` now ships to everyone else.

        The deposed leader becomes a standby and is caught up from its
        cumulative ack (its own writes — it already has them — but the
        replica/ack bookkeeping restarts honestly from what the new
        leader knows it has confirmed, which is nothing).
        """
        if node == self.leader:
            return
        previous = self.leader
        self.leader = node
        self.standbys = [n for n in [previous, *self.standbys]
                         if n != node]

    def applied_seq(self, node: str) -> int:
        """Highest journal seq ``node`` has contiguously applied."""
        return self._applied.get(node, -1)

    def lag_of(self, node: str, now: Optional[float] = None) -> int:
        """Durable records the leader holds that ``node`` has not acked."""
        durable = self.journal.durable_records(now)
        return sum(1 for r in durable if r.seq > self.acked.get(node, -1))

    def _count(self, name: str, **kw) -> None:
        if self.monitor is not None:
            self.monitor.count(name, **kw)

    def _ship_loop(self):
        while True:
            yield self.env.timeout(self.ship_interval_s)
            durable = self.journal.durable_records(self.env.now)
            for standby in self.standbys:
                acked = self.acked[standby]
                window = [r for r in durable if r.seq > acked][:self.batch]
                if not window:
                    continue
                self.batches += 1
                for record in window:
                    if record.seq <= self._sent[standby]:
                        self.resends += 1
                        self._count("ship_resends")
                    else:
                        self._sent[standby] = record.seq
                    self.shipped_records += 1
                    self._count("shipped_records")
                    self.network.send(
                        self.leader, standby,
                        deliver=lambda s=standby, r=record:
                            self._receive(s, r),
                        kind="journal")
                if self.monitor is not None:
                    self.monitor.record(
                        "ship_lag", float(len(durable) - 1 - acked))

    def _receive(self, standby: str, record: JournalRecord) -> None:
        leader = self.leader
        if record.seq <= self._applied[standby]:
            # Re-shipped after an ack was lost: re-ack, don't re-apply.
            self.duplicates += 1
        elif record.seq == self._applied[standby] + 1:
            self._applied[standby] = record.seq
            self.replicas[standby].append(record)
            if self.on_apply is not None:
                self.on_apply(standby, record)
        else:
            # A gap: an earlier record was dropped in flight. Discard —
            # the leader re-ships from the cumulative ack next tick.
            self.out_of_order += 1
            return
        self.network.send(
            standby, leader,
            deliver=lambda s=standby, q=self._applied[standby]:
                self._receive_ack(s, q),
            kind="journal_ack")

    def _receive_ack(self, standby: str, seq: int) -> None:
        if seq > self.acked[standby]:
            self.acked[standby] = seq
        self.acks_received += 1
        self._count("ship_acks")
