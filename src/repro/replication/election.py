"""Lease-based leader election over the fault-aware network fabric.

One :class:`LeaseElection` instance simulates *all* control-plane nodes:
each node runs its own sim process, talks to its peers only through
:class:`repro.sim.Network` messages (``lease``, ``lease_ack``,
``vote_req``, ``vote``, ``vote_deny``), and observes its leader's
liveness only through a :class:`~repro.resilience.detection.\
PhiAccrualDetector` fed by delivered renewals — never through ground
truth. Partitions, gray loss, and latency therefore act on elections
exactly as they act on the data plane.

Safety argument (at most one leader per term):

- a node grants a term at most once: ``_granted[node]`` is monotone and
  a grant requires ``term > _granted[node]``;
- winning requires a strict majority of grants, and every candidate
  self-grants, so two winners of the same term would need two disjoint
  majorities — impossible;
- a deposed or stood-down candidate keeps its grant floor, so rejoining
  nodes can never re-grant an old term.

Liveness comes from leader stickiness plus jittered campaigns: peers
holding a *fresh* lease deny vote requests outright (a flaky standby
cannot unseat a live leader), and candidates draw their campaign delay
from a named per-node RNG stream — deterministic tie-breaking under a
fixed seed, de-synchronized campaigns under any seed.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.resilience.detection import PhiAccrualDetector
from repro.sim import Environment, Monitor, Network, RandomStreams


class LeaseElection:
    """Term-numbered leases with majority grants and phi-driven campaigns.

    ``nodes[0]`` starts as the leader of ``initial_term`` — a replicated
    control plane boots with a known primary, not a cold election.

    Parameters
    ----------
    detector:
        Shared phi-accrual detector; one key per *observer* node tracks
        the inter-arrival of lease renewals that node actually received.
    streams:
        Named RNG streams; node ``n`` draws campaign jitter and retry
        backoff from ``streams.get(f"election-{n}")`` only.
    on_promote:
        ``callback(node, term)`` invoked at the instant a node wins an
        election (not for the boot-time leader).
    """

    def __init__(self, env: Environment, network: Network,
                 nodes: Iterable[str], detector: PhiAccrualDetector,
                 streams: RandomStreams, *,
                 lease_ttl_s: float = 4.0,
                 renew_interval_s: float = 1.0,
                 poll_interval_s: float = 0.25,
                 campaign_spread_s: float = 1.5,
                 election_round_s: float = 0.2,
                 retry_backoff_s: float = 1.5,
                 initial_term: int = 1,
                 monitor: Optional[Monitor] = None,
                 tracer=None,
                 on_promote: Optional[Callable[[str, int], None]] = None):
        self.env = env
        self.network = network
        self.nodes = list(nodes)
        if len(self.nodes) < 2:
            raise ValueError("an election needs at least two nodes")
        if lease_ttl_s <= renew_interval_s:
            raise ValueError("lease_ttl_s must exceed renew_interval_s")
        self.detector = detector
        self.lease_ttl_s = lease_ttl_s
        self.renew_interval_s = renew_interval_s
        self.poll_interval_s = poll_interval_s
        self.campaign_spread_s = campaign_spread_s
        self.election_round_s = election_round_s
        self.retry_backoff_s = retry_backoff_s
        self.monitor = monitor
        self.tracer = tracer
        self.on_promote = on_promote

        leader = self.nodes[0]
        self._role = {n: ("leader" if n == leader else "standby")
                      for n in self.nodes}
        self._term = {n: initial_term for n in self.nodes}
        self._believed_leader = {n: leader for n in self.nodes}
        self._last_heard = {n: env.now for n in self.nodes}
        self._granted = {n: initial_term for n in self.nodes}
        #: Term a candidacy is proposing. ``_term`` only moves to it on a
        #: win (pre-vote style): a partitioned node that campaigns in
        #: vain must not inflate its own term, or it would reject the
        #: real leader's renewals after the heal and livelock.
        self._proposal = {n: 0 for n in self.nodes}
        self._votes = {n: 0 for n in self.nodes}
        self._ack_at = {n: {} for n in self.nodes}
        self._last_majority = {n: env.now for n in self.nodes}
        #: Per-node flag: a well-behaved leader steps down when it loses
        #: its own majority-ack window. Scenario code clears it on a node
        #: to model the pathological leader that fencing must stop.
        self.self_demote = {n: True for n in self.nodes}
        self._rng = {n: streams.get(f"election-{n}") for n in self.nodes}

        #: ``{term: winner}`` — ``setdefault`` only, so a double win at
        #: one term shows up as ``promotions > len(leaders_by_term)`` and
        #: trips the ``at_most_one_leader_per_term`` law.
        self.leaders_by_term = {initial_term: leader}
        self.promotions = 1
        self.elections = 0
        self.votes_granted = 0
        self.votes_denied = 0
        self.demotions = 0
        self.stand_downs = 0

        for node in self.nodes:
            network.add_node(node)
            detector.register(self._key(node), renew_interval_s)
        self._procs = {n: env.process(self._node_loop(n))
                       for n in self.nodes}

    # -- queries ---------------------------------------------------------

    def believes_leader(self, node: str) -> bool:
        """Whether ``node`` currently thinks it holds the lease."""
        return self._role[node] == "leader"

    def leader_of(self, node: str) -> Optional[str]:
        """Who ``node`` believes leads (None while orphaned)."""
        return self._believed_leader[node]

    def term_of(self, node: str) -> int:
        return self._term[node]

    @property
    def majority(self) -> int:
        return len(self.nodes) // 2 + 1

    def _key(self, node: str) -> str:
        return f"lease@{node}"

    def _count(self, name: str, **kw) -> None:
        if self.monitor is not None:
            self.monitor.count(name, **kw)

    # -- external invalidation ------------------------------------------

    def depose(self, node: str) -> None:
        """Fencing told ``node`` a higher term exists: step down.

        The rejection proves a newer leader fenced the machines but does
        not say who; the node drops to standby with no believed leader
        and re-learns the leadership through renewals or denials.
        """
        if self._role[node] != "leader":
            return
        self._role[node] = "standby"
        self._believed_leader[node] = None
        self._last_heard[node] = self.env.now
        self.demotions += 1
        self._count("demotions", key=node)

    # -- per-node state machine -----------------------------------------

    def _node_loop(self, node: str):
        while True:
            if self._role[node] == "leader":
                yield from self._lead_once(node)
            else:
                yield from self._watch_once(node)

    def _lead_once(self, node: str):
        """One renewal tick: broadcast the lease, audit the ack window."""
        now = self.env.now
        if (self.self_demote[node]
                and now - self._last_majority[node] > self.lease_ttl_s):
            # Lost our own majority for a full TTL: a healthy leader
            # abdicates rather than keep writing on a dead lease.
            self._role[node] = "standby"
            self._believed_leader[node] = None
            self._last_heard[node] = now
            self.demotions += 1
            self._count("demotions", key=node)
            return
        term = self._term[node]
        self._last_heard[node] = now
        self.detector.heartbeat(self._key(node))
        for peer in self.nodes:
            if peer == node:
                continue
            self.network.send(
                node, peer,
                deliver=lambda p=peer, t=term: self._receive_renewal(
                    p, node, t),
                kind="lease")
            self._count("lease_renewals")
        fresh = sum(1 for at in self._ack_at[node].values()
                    if now - at <= self.lease_ttl_s) + 1  # + self
        if fresh >= self.majority:
            self._last_majority[node] = now
        yield self.env.timeout(self.renew_interval_s)

    def _receive_renewal(self, observer: str, leader: str,
                         term: int) -> None:
        if term < self._term[observer]:
            return  # a deposed leader's stale renewal; fencing handles it
        self._term[observer] = term
        if self._believed_leader[observer] != leader:
            if self._role[observer] == "leader":
                # A higher-termed leader exists: stand down immediately.
                self.demotions += 1
                self._count("demotions", key=observer)
            self._role[observer] = "standby"
            self._believed_leader[observer] = leader
        elif self._role[observer] == "candidate":
            self._role[observer] = "standby"
        self._last_heard[observer] = self.env.now
        self.detector.heartbeat(self._key(observer))
        self.network.send(
            observer, leader,
            deliver=lambda o=observer, t=term: self._receive_ack(
                leader, o, t),
            kind="lease_ack")

    def _receive_ack(self, leader: str, observer: str, term: int) -> None:
        if self._role[leader] == "leader" and self._term[leader] == term:
            self._ack_at[leader][observer] = self.env.now

    def _watch_once(self, node: str):
        """One standby poll: campaign only on a phi-confirmed dead lease."""
        if self._needs_election(node):
            yield from self._campaign(node)
        else:
            yield self.env.timeout(self.poll_interval_s)

    def _needs_election(self, node: str) -> bool:
        if self._believed_leader[node] is None:
            return True
        expired = (self.env.now - self._last_heard[node]) > self.lease_ttl_s
        return expired and self.detector.is_suspect(self._key(node))

    def _campaign(self, node: str):
        rng = self._rng[node]
        # Jittered candidacy delay: the deterministic tie-breaker. Two
        # standbys that detect the same death campaign at different
        # times, so the first one normally wins before the second tries.
        yield self.env.timeout(float(rng.uniform(0.0, self.campaign_spread_s)))
        if not self._needs_election(node):
            return  # a leader announced itself while we hesitated
        term = max(self._term[node], self._granted[node]) + 1
        self._proposal[node] = term
        self._granted[node] = term  # self-grant
        self._votes[node] = 1
        self._role[node] = "candidate"
        self.elections += 1
        self._count("elections", key=node)
        span = None
        if self.tracer is not None:
            span = self.tracer.start_span(
                "replication.election", node=node, term=term)
        for peer in self.nodes:
            if peer == node:
                continue
            self.network.send(
                node, peer,
                deliver=lambda p=peer, t=term: self._receive_vote_request(
                    p, node, t),
                kind="vote_req")
        yield self.env.timeout(self.election_round_s)
        if self._role[node] != "candidate" or self._proposal[node] != term:
            # A renewal or a deny landed mid-round and stood us down.
            if span is not None:
                self.tracer.end_span(span, status="stood_down")
            return
        if self._votes[node] >= self.majority:
            self._win(node, term)
            if span is not None:
                self.tracer.end_span(span, status="won")
            return
        if span is not None:
            self.tracer.end_span(span, status="lost")
        self._role[node] = "standby"
        yield self.env.timeout(
            self.retry_backoff_s * (0.5 + float(rng.random())))

    def _receive_vote_request(self, peer: str, candidate: str,
                              term: int) -> None:
        now = self.env.now
        lease_fresh = (self._believed_leader[peer] is not None
                       and now - self._last_heard[peer] <= self.lease_ttl_s)
        grant = (term > self._granted[peer]
                 and not lease_fresh
                 and self._role[peer] != "leader")
        if grant:
            self._granted[peer] = term
            self.votes_granted += 1
            self._count("votes_granted", key=peer)
            self.network.send(
                peer, candidate,
                deliver=lambda t=term: self._receive_vote(candidate, t),
                kind="vote")
            return
        self.votes_denied += 1
        self._count("votes_denied", key=peer)
        self.network.send(
            peer, candidate,
            deliver=lambda t=self._term[peer],
            led=self._believed_leader[peer],
            fresh=lease_fresh: self._receive_deny(candidate, t, led, fresh),
            kind="vote_deny")

    def _receive_vote(self, candidate: str, term: int) -> None:
        if self._role[candidate] == "candidate" \
                and self._proposal[candidate] == term:
            self._votes[candidate] += 1

    def _receive_deny(self, candidate: str, denier_term: int,
                      denier_leader: Optional[str],
                      lease_fresh: bool) -> None:
        if self._role[candidate] != "candidate":
            return
        if lease_fresh and denier_leader is not None:
            # A live lease exists somewhere we could not see: adopt the
            # denier's view and stand down. The grant floor stays put,
            # so our abandoned term can never be granted to us later.
            self._role[candidate] = "standby"
            self._term[candidate] = max(self._term[candidate], denier_term)
            self._believed_leader[candidate] = denier_leader
            self._last_heard[candidate] = self.env.now
            self.stand_downs += 1
            self._count("stand_downs", key=candidate)

    def _win(self, node: str, term: int) -> None:
        self._role[node] = "leader"
        self._term[node] = term
        self._believed_leader[node] = node
        self._last_heard[node] = self.env.now
        self._ack_at[node] = {}
        self._last_majority[node] = self.env.now
        self.promotions += 1
        self.leaders_by_term.setdefault(term, node)
        self._count("promotions", key=node)
        if self.on_promote is not None:
            self.on_promote(node, term)
