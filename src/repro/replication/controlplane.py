"""The replicated control plane: election + shipping + fencing, composed.

:class:`ReplicatedControlPlane` wraps a running scheduler brain (duck-
typed — any object with the :class:`~repro.scheduling.simulator.\
ClusterSimulator` recovery surface: ``journal``, ``node_name``,
``cluster``, ``crashed``, ``crash_scheduler``, ``recover_scheduler``,
``belief_from_record``, ``fencing``) and makes its *location* highly
available:

- a :class:`~repro.replication.election.LeaseElection` decides which
  control node holds the lease;
- a :class:`~repro.replication.shipping.JournalReplicator` keeps each
  standby's believed-state replica warm from the leader's WAL;
- a :class:`~repro.replication.fencing.FencingGate` is installed on the
  scheduler so every dispatch and report carries a term token.

On promotion the new leader fences all machines at its term, takes over
the brain, and recovers from its *shipped prefix* — no journal replay,
just the takeover cost plus the usual reconciliation against
``_pending_reports`` and in-flight work. A deposed leader that still
believes it leads keeps writing; its dispatches bounce off the fence,
are counted, and the rejections eventually teach it to step down.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.replication.election import LeaseElection
from repro.replication.fencing import FencingGate
from repro.replication.shipping import JournalReplicator
from repro.resilience.detection import PhiAccrualDetector
from repro.sim import Environment, Monitor, Network, RandomStreams


class ReplicatedControlPlane:
    """Hot-standby replication for a journaled scheduler brain."""

    def __init__(self, env: Environment, scheduler, network: Network,
                 nodes: Iterable[str], streams: RandomStreams, *,
                 lease_ttl_s: float = 4.0,
                 renew_interval_s: float = 1.0,
                 ship_interval_s: float = 0.5,
                 takeover_cost_s: float = 0.5,
                 probe_interval_s: float = 2.0,
                 probe_batch: int = 3,
                 detector: Optional[PhiAccrualDetector] = None,
                 monitor: Optional[Monitor] = None,
                 tracer=None,
                 self_demote: Optional[dict] = None,
                 fence_on_failover: bool = True):
        self.env = env
        self.scheduler = scheduler
        self.network = network
        self.nodes = list(nodes)
        if scheduler.node_name != self.nodes[0]:
            raise ValueError(
                f"scheduler.node_name {scheduler.node_name!r} must be the "
                f"initial leader {self.nodes[0]!r}")
        if scheduler.journal is None:
            raise ValueError("a replicated control plane needs a journal")
        self.monitor = monitor if monitor is not None \
            else Monitor(env, namespace="replication")
        self.tracer = tracer
        self.takeover_cost_s = takeover_cost_s
        self.probe_interval_s = probe_interval_s
        self.probe_batch = probe_batch
        #: ``False`` is a deliberately plantable bug knob (for fault-
        #: injection campaigns): promotion skips the machine fence
        #: broadcasts, so a deposed leader's stale writes are *accepted*
        #: — the split-brain the ``replication.fenced_writes_rejected``
        #: law exists to catch.
        self.fence_on_failover = fence_on_failover

        self.gate = FencingGate(monitor=self.monitor)
        scheduler.fencing = self.gate

        if detector is None:
            detector = PhiAccrualDetector(
                env, threshold=4.0, poll_interval_s=0.25,
                monitor=self.monitor, name="lease")
        self.detector = detector
        self.election = LeaseElection(
            env, network, self.nodes, detector, streams,
            lease_ttl_s=lease_ttl_s, renew_interval_s=renew_interval_s,
            monitor=self.monitor, tracer=tracer,
            on_promote=self._on_promote)
        if self_demote:
            self.election.self_demote.update(self_demote)
        self.replicator = JournalReplicator(
            env, network, scheduler.journal,
            leader=self.nodes[0], standbys=self.nodes[1:],
            ship_interval_s=ship_interval_s,
            on_apply=self._apply, monitor=self.monitor)
        self.gate.advance(self.election.term_of(self.nodes[0]))

        #: Per-standby believed task state, built record by record as
        #: the journal ships — the warm replica a promotion starts from.
        self._believed: dict[str, dict] = {n: {} for n in self.nodes}
        self.failovers = 0
        self.stale_dispatches = 0
        #: Stale writes a machine *accepted* (possible only with the
        #: fence disabled) — each one is a split-brain write.
        self.split_brain_writes = 0
        self.promoted_at: dict[int, float] = {}
        self.deposed_at: dict[str, float] = {}
        self.journal_records_at_failover = 0
        self.unshipped_at_promotion = 0

    # -- replica maintenance --------------------------------------------

    def _apply(self, standby: str, record) -> None:
        entry = self.scheduler.belief_from_record(record)
        if entry is not None:
            self._believed[standby][entry[0]] = entry[1]

    # -- failover --------------------------------------------------------

    def _on_promote(self, node: str, term: int) -> None:
        if node == self.scheduler.node_name:
            return  # the incumbent re-won; nothing moves
        self.env.process(self._failover(node, term))

    def _failover(self, node: str, term: int):
        old = self.scheduler.node_name
        span = None
        if self.tracer is not None:
            span = self.tracer.start_span(
                "replication.failover", node=node, term=term)
        # Freeze the old brain's books. In the scenario that matters the
        # old leader is partitioned away and keeps its own (stale) copy;
        # the shared-state model below is the *cluster-visible* brain.
        if not self.scheduler.crashed:
            self.scheduler.crash_scheduler()
        # Fence every machine at the new term before the first dispatch.
        # With the bug knob thrown, the new leader never raises the epoch:
        # no broadcasts, no gate advance — the deposed leader's writes
        # stay indistinguishable from live ones at every machine.
        if self.fence_on_failover:
            for machine in self.scheduler.cluster.machines:
                self.network.send(
                    node, machine.name,
                    deliver=lambda m=machine.name, t=term:
                        self.gate.raise_floor(m, t),
                    kind="fence")
                self.monitor.count("fence_broadcasts")
            self.gate.advance(term)
        durable = self.scheduler.journal.durable_records(self.env.now)
        self.journal_records_at_failover = len(durable)
        self.unshipped_at_promotion = sum(
            1 for r in durable if r.seq > self.replicator.applied_seq(node))
        self.scheduler.node_name = node
        self.replicator.set_leader(node)
        believed = dict(self._believed[node])
        yield from self.scheduler.recover_scheduler(
            believed=believed, restart_cost_s=self.takeover_cost_s)
        self.failovers += 1
        self.promoted_at[term] = self.env.now
        self.monitor.count("failovers", key=node)
        if span is not None:
            self.tracer.end_span(span, status="ok")
        if self.election.believes_leader(old):
            self.env.process(self._stale_writer(old))

    def _stale_writer(self, old: str):
        """Model the deposed leader's split brain until fencing stops it.

        The old leader still believes it holds the lease, so it keeps
        trying to dispatch. Each probe round sends term-stamped dispatch
        messages at a few machines; any that get through the partition
        are rejected by the fence. The first rejection a round observes
        is the proof of a higher term — the old leader steps down.
        """
        term = self.election.term_of(old)
        machines = [m.name for m in self.scheduler.cluster.machines]
        targets = machines[:self.probe_batch]
        while self.election.believes_leader(old):
            rejections = []
            for target in targets:
                self.network.send(
                    old, target,
                    deliver=lambda m=target, t=term:
                        self._stale_probe(m, t, rejections),
                    kind="dispatch")
            yield self.env.timeout(self.probe_interval_s)
            if rejections:
                self.election.depose(old)
                self.deposed_at[old] = self.env.now
                break

    def _stale_probe(self, machine: str, term: int,
                     rejections: list) -> None:
        # Every delivered stale write counts; with the fence up, each is
        # rejected one-for-one (the fencing conservation law). An
        # *accepted* stale write is split-brain — the law's left side
        # stops tracking the right, and the invariant engine sees it.
        self.stale_dispatches += 1
        self.monitor.count("stale_dispatches")
        if not self.gate.admit_dispatch(machine, term):
            rejections.append(machine)
        else:
            self.split_brain_writes += 1
            self.monitor.count("split_brain_writes")
