"""Hot-standby replicated control plane (paper §6: availability keystone).

Single-node crash recovery (:mod:`repro.recovery`) restarts the same
brain; this package makes the brain's *location* survivable. It composes
three mechanisms, each independently testable:

- :mod:`repro.replication.election` — lease-based leader election over
  the network fabric, observed through the phi-accrual detector;
- :mod:`repro.replication.shipping` — WAL streaming from leader to hot
  standbys with a cumulative acked durability window;
- :mod:`repro.replication.fencing` — term tokens on every dispatch and
  report, so a deposed leader's writes are rejected at the machines;
- :mod:`repro.replication.controlplane` — the composition: fence, take
  over, recover from the shipped prefix, count the split-brain.

The failover study lives in
:func:`repro.faults.chaos.run_failover_scenario`; invariant laws
``replication.at_most_one_leader_per_term`` and
``replication.fenced_writes_rejected`` audit every run.
"""

from repro.replication.controlplane import ReplicatedControlPlane
from repro.replication.election import LeaseElection
from repro.replication.fencing import FencingGate
from repro.replication.shipping import JournalReplicator

__all__ = [
    "FencingGate",
    "JournalReplicator",
    "LeaseElection",
    "ReplicatedControlPlane",
]
