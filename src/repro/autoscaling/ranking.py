"""Ranking and grading autoscalers ([126]'s two ranking methods and
[127]'s combined grade).

- :func:`pairwise_wins` — head-to-head: for every pair of autoscalers,
  count the metrics on which each wins; rank by total pairwise wins.
- :func:`fractional_scores` — per metric, score each autoscaler by
  best/value (value/best for higher-is-better), then average across
  metrics; robust to metric scale.
- :func:`grade_autoscalers` — the combined grade: a weighted blend of the
  fractional elasticity score, an SLA score, and a cost score.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.autoscaling.experiment import AutoscalingResult
from repro.autoscaling.metrics import (
    ELASTICITY_METRIC_NAMES,
    HIGHER_IS_BETTER,
    metric_is_better,
)


def pairwise_wins(results: Mapping[str, AutoscalingResult],
                  metric_names: Sequence[str] = ELASTICITY_METRIC_NAMES,
                  ) -> dict[str, int]:
    """Total head-to-head metric wins per autoscaler."""
    if len(results) < 2:
        raise ValueError("need at least two autoscalers to rank")
    names = sorted(results)
    wins = {name: 0 for name in names}
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            for metric in metric_names:
                va = results[a].metrics[metric]
                vb = results[b].metrics[metric]
                if metric_is_better(metric, va, vb):
                    wins[a] += 1
                elif metric_is_better(metric, vb, va):
                    wins[b] += 1
    return wins


def fractional_scores(results: Mapping[str, AutoscalingResult],
                      metric_names: Sequence[str] = ELASTICITY_METRIC_NAMES,
                      ) -> dict[str, float]:
    """Mean of per-metric fractional scores in (0, 1], 1 = best on all."""
    if not results:
        raise ValueError("no results to score")
    names = sorted(results)
    scores = {name: [] for name in names}
    for metric in metric_names:
        values = {n: results[n].metrics[metric] for n in names}
        if metric in HIGHER_IS_BETTER:
            best = max(values.values())
            for n in names:
                scores[n].append(values[n] / best if best > 0 else 1.0)
        else:
            best = min(values.values())
            for n in names:
                value = values[n]
                scores[n].append(best / value if value > 0 else 1.0)
    return {n: float(np.mean(s)) for n, s in scores.items()}


def grade_autoscalers(results: Mapping[str, AutoscalingResult],
                      elasticity_weight: float = 0.5,
                      sla_weight: float = 0.3,
                      cost_weight: float = 0.2) -> dict[str, float]:
    """Combined grade in [0, 1] (the [127] method: combine the scores
    judiciously — elasticity, SLA compliance, and cost)."""
    total = elasticity_weight + sla_weight + cost_weight
    if abs(total - 1.0) > 1e-9:
        raise ValueError("weights must sum to 1")
    if not results:
        raise ValueError("no results to grade")
    elasticity = fractional_scores(results)
    names = sorted(results)
    costs = {n: results[n].cost_continuous for n in names}
    best_cost = min(costs.values())
    grades = {}
    for n in names:
        sla_score = 1.0 - results[n].sla_violation_rate
        cost_score = best_cost / costs[n] if costs[n] > 0 else 1.0
        grades[n] = (elasticity_weight * elasticity[n]
                     + sla_weight * sla_score
                     + cost_weight * cost_score)
    return grades
