"""The ten elasticity metrics (after Herbst et al., the paper's [37]).

All metrics are computed from paired (demand, supply) series sampled on a
regular grid. Lower is better for every metric except ``avg_utilization``.

1.  ``accuracy_under`` (U): average under-provisioned resources,
    normalized by average demand;
2.  ``accuracy_over`` (O): average over-provisioned resources, normalized;
3.  ``timeshare_under`` (T_U): fraction of time under-provisioned;
4.  ``timeshare_over`` (T_O): fraction of time over-provisioned;
5.  ``instability``: fraction of steps where supply changes direction
    relative to demand (supply and demand moving opposite ways);
6.  ``jitter``: net supply adaptations per step (how twitchy);
7.  ``avg_supply``: mean supplied resources (raw capacity footprint);
8.  ``avg_utilization``: mean demand/supply where supply > 0
    (higher is better);
9.  ``under_volume``: total under-provisioned resource-steps (the raw
    degraded-performance mass);
10. ``over_volume``: total over-provisioned resource-steps (the raw
    wasted-capacity mass).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

ELASTICITY_METRIC_NAMES: tuple[str, ...] = (
    "accuracy_under", "accuracy_over", "timeshare_under", "timeshare_over",
    "instability", "jitter", "avg_supply", "avg_utilization",
    "under_volume", "over_volume",
)

#: Metrics where higher values are better.
HIGHER_IS_BETTER: frozenset[str] = frozenset({"avg_utilization"})


def elasticity_metrics(demand: Sequence[float],
                       supply: Sequence[float]) -> dict[str, float]:
    """Compute all ten metrics for one experiment."""
    demand_arr = np.asarray(demand, dtype=float)
    supply_arr = np.asarray(supply, dtype=float)
    if demand_arr.shape != supply_arr.shape or demand_arr.size == 0:
        raise ValueError("demand and supply must be equal-length, non-empty")
    n = demand_arr.size
    under = np.maximum(demand_arr - supply_arr, 0.0)
    over = np.maximum(supply_arr - demand_arr, 0.0)
    mean_demand = max(demand_arr.mean(), 1e-9)

    d_supply = np.diff(supply_arr)
    d_demand = np.diff(demand_arr)
    opposite = np.sign(d_supply) * np.sign(d_demand) < 0
    instability = float(np.mean(opposite)) if d_supply.size else 0.0
    jitter = float(np.mean(np.abs(np.sign(d_supply)))) if d_supply.size \
        else 0.0

    positive_supply = supply_arr > 0
    if positive_supply.any():
        utilization = np.minimum(
            demand_arr[positive_supply] / supply_arr[positive_supply], 1.0)
        avg_utilization = float(utilization.mean())
    else:
        avg_utilization = 0.0

    return {
        "accuracy_under": float(under.mean() / mean_demand),
        "accuracy_over": float(over.mean() / mean_demand),
        "timeshare_under": float(np.mean(under > 1e-9)),
        "timeshare_over": float(np.mean(over > 1e-9)),
        "instability": instability,
        "jitter": jitter,
        "avg_supply": float(supply_arr.mean()),
        "avg_utilization": avg_utilization,
        "under_volume": float(under.sum()),
        "over_volume": float(over.sum()),
    }


def metric_is_better(name: str, a: float, b: float) -> bool:
    """Whether value ``a`` beats value ``b`` on metric ``name``."""
    if name in HIGHER_IS_BETTER:
        return a > b
    return a < b
