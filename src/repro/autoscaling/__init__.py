"""Autoscaling experiments (paper §6.7; [126], [127], [128]).

- :mod:`repro.autoscaling.autoscalers` — the experiment's autoscaler
  roster: five general autoscalers (React, Adapt, Hist, Reg, ConPaaS) and
  two workflow-aware ones (Plan, Token);
- :mod:`repro.autoscaling.metrics` — the ten elasticity metrics (after
  Herbst et al. [37]) plus traditional performance and cost metrics;
- :mod:`repro.autoscaling.experiment` — the in-silico experiment: replay
  workflow workloads against an autoscaled resource pool with
  provisioning delays, deadline SLAs, and cost models;
- :mod:`repro.autoscaling.ranking` — the two head-to-head ranking methods
  and the combined grading of [127].
"""

from repro.autoscaling.autoscalers import (
    AUTOSCALERS,
    Adapt,
    Autoscaler,
    ConPaaS,
    Hist,
    Plan,
    React,
    Reg,
    Token,
    make_autoscaler,
)
from repro.autoscaling.metrics import (
    ELASTICITY_METRIC_NAMES,
    elasticity_metrics,
)
from repro.autoscaling.experiment import (
    AutoscalingResult,
    ExperimentConfig,
    run_autoscaling_experiment,
)
from repro.autoscaling.ranking import (
    fractional_scores,
    grade_autoscalers,
    pairwise_wins,
)

__all__ = [
    "AUTOSCALERS",
    "Adapt",
    "Autoscaler",
    "AutoscalingResult",
    "ConPaaS",
    "ELASTICITY_METRIC_NAMES",
    "ExperimentConfig",
    "Hist",
    "Plan",
    "React",
    "Reg",
    "Token",
    "elasticity_metrics",
    "fractional_scores",
    "grade_autoscalers",
    "make_autoscaler",
    "pairwise_wins",
    "run_autoscaling_experiment",
]
