"""The autoscaler roster of the [126]/[127] experiments.

General autoscalers see only the demand history (they were designed for
request-serving systems); workflow-aware autoscalers additionally see the
structure of queued workflows — the paper's morphological dimension.

Every autoscaler answers one question each interval: *how many resources
(cores) should be supplied next?*
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np


class Autoscaler:
    """Base class."""

    name = "abstract"
    #: Workflow-aware autoscalers receive workflow state (see
    #: :meth:`decide`'s ``workflow_view``).
    workflow_aware = False

    def decide(self, demand_history: Sequence[float], current_supply: float,
               workflow_view: Optional["WorkflowView"] = None) -> float:
        """Target supply (cores) for the next interval."""
        raise NotImplementedError


@dataclass
class WorkflowView:
    """What workflow-aware autoscalers see: near-future parallelism.

    ``running_cores``: cores used right now; ``eligible_cores``: cores
    demanded by tasks eligible to start now; ``next_level_cores``: cores
    of tasks one dependency-level away (unlock within the lookahead);
    ``remaining_estimates``: per-running-task estimated remaining time.
    """

    running_cores: float
    eligible_cores: float
    next_level_cores: float
    remaining_estimates: list[float] = field(default_factory=list)


class React(Autoscaler):
    """Purely reactive: supply what is demanded right now."""

    name = "react"

    def decide(self, demand_history, current_supply, workflow_view=None):
        return float(demand_history[-1]) if len(demand_history) else 0.0


class Adapt(Autoscaler):
    """Gradual adaptation: move a fraction of the gap each interval,
    with hysteresis against small oscillations."""

    name = "adapt"

    def __init__(self, gain: float = 0.5, deadband: float = 0.1):
        if not 0 < gain <= 1:
            raise ValueError("gain must be in (0, 1]")
        self.gain = gain
        self.deadband = deadband

    def decide(self, demand_history, current_supply, workflow_view=None):
        if not len(demand_history):
            return current_supply
        demand = float(demand_history[-1])
        gap = demand - current_supply
        if abs(gap) <= self.deadband * max(current_supply, 1.0):
            return current_supply
        return max(0.0, current_supply + self.gain * gap)


class Hist(Autoscaler):
    """Histogram-based: supply a high percentile of the demand seen at
    this position of the (daily) cycle in previous periods."""

    name = "hist"

    def __init__(self, period_steps: int = 288, percentile: float = 90.0):
        if period_steps < 1:
            raise ValueError("period_steps must be >= 1")
        self.period_steps = period_steps
        self.percentile = percentile

    def decide(self, demand_history, current_supply, workflow_view=None):
        n = len(demand_history)
        if n == 0:
            return 0.0
        phase = n % self.period_steps
        same_phase = [demand_history[i] for i in range(phase, n,
                                                       self.period_steps)]
        if not same_phase:
            same_phase = list(demand_history)
        return float(np.percentile(same_phase, self.percentile))


class Reg(Autoscaler):
    """Regression-based: linear fit over a recent window, extrapolated
    one provisioning delay ahead."""

    name = "reg"

    def __init__(self, window: int = 12, horizon: int = 2):
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window
        self.horizon = horizon

    def decide(self, demand_history, current_supply, workflow_view=None):
        hist = list(demand_history)
        if len(hist) < 2:
            return float(hist[-1]) if hist else 0.0
        tail = np.asarray(hist[-self.window:], dtype=float)
        x = np.arange(tail.size)
        slope, intercept = np.polyfit(x, tail, 1)
        return float(max(0.0, intercept + slope * (tail.size - 1
                                                   + self.horizon)))


class ConPaaS(Autoscaler):
    """ConPaaS-style: provision a high percentile of recent demand (a
    safety margin against short spikes)."""

    name = "conpaas"

    def __init__(self, window: int = 24, percentile: float = 85.0):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.percentile = percentile

    def decide(self, demand_history, current_supply, workflow_view=None):
        hist = list(demand_history)
        if not hist:
            return 0.0
        tail = hist[-self.window:]
        return float(np.percentile(tail, self.percentile))


class Plan(Autoscaler):
    """Workflow-aware planner: supplies eligible work plus the work that
    the plan says unlocks within the lookahead ([126]'s Plan)."""

    name = "plan"
    workflow_aware = True

    def __init__(self, lookahead_weight: float = 1.0):
        if lookahead_weight < 0:
            raise ValueError("lookahead_weight must be >= 0")
        self.lookahead_weight = lookahead_weight

    def decide(self, demand_history, current_supply, workflow_view=None):
        if workflow_view is None:
            raise ValueError("Plan requires a workflow view")
        return float(workflow_view.running_cores
                     + workflow_view.eligible_cores
                     + self.lookahead_weight
                     * workflow_view.next_level_cores)


class Token(Autoscaler):
    """Workflow-aware token propagation: supplies for the tasks that
    tokens (one per workflow) can reach within the lookahead — a cheaper,
    more conservative structure estimate than Plan ([126]'s Token)."""

    name = "token"
    workflow_aware = True

    def __init__(self, token_depth: float = 0.5):
        if not 0 <= token_depth <= 1:
            raise ValueError("token_depth must be in [0, 1]")
        self.token_depth = token_depth

    def decide(self, demand_history, current_supply, workflow_view=None):
        if workflow_view is None:
            raise ValueError("Token requires a workflow view")
        return float(workflow_view.running_cores
                     + workflow_view.eligible_cores
                     + self.token_depth * workflow_view.next_level_cores)


AUTOSCALERS: dict[str, type] = {
    "react": React,
    "adapt": Adapt,
    "hist": Hist,
    "reg": Reg,
    "conpaas": ConPaaS,
    "plan": Plan,
    "token": Token,
}


def make_autoscaler(name: str, **kwargs) -> Autoscaler:
    if name not in AUTOSCALERS:
        raise KeyError(f"unknown autoscaler {name!r}; known: "
                       f"{sorted(AUTOSCALERS)}")
    return AUTOSCALERS[name](**kwargs)
