"""The in-silico autoscaling experiment ([128]).

A time-stepped replay: workflows arrive, eligible tasks run on the
currently supplied cores, and the autoscaler picks the next supply level
each step. Supply follows decisions only after a provisioning delay, and
can never drop below the cores of still-running tasks (no preemption).

The result carries everything §6.7's analysis needs: the demand/supply
series (for the ten elasticity metrics), per-workflow makespans and
deadline-SLA violations, and cost under continuous and hourly billing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.autoscaling.autoscalers import Autoscaler, WorkflowView
from repro.autoscaling.metrics import elasticity_metrics
from repro.cluster.cost import CostModel, ON_DEMAND_PRICING
from repro.workload.task import Task, TaskState, Workflow


@dataclass
class ExperimentConfig:
    step_s: float = 30.0
    provisioning_delay_steps: int = 2
    max_supply: float = 512.0
    cost_model: CostModel = ON_DEMAND_PRICING
    #: Deadline per workflow: submit + factor × critical-path work.
    deadline_factor: float = 3.0
    max_steps: int = 200_000

    def __post_init__(self):
        if self.step_s <= 0:
            raise ValueError("step_s must be positive")
        if self.provisioning_delay_steps < 0:
            raise ValueError("provisioning_delay_steps must be >= 0")


@dataclass
class AutoscalingResult:
    autoscaler: str
    times: np.ndarray
    demand: np.ndarray
    supply: np.ndarray
    workflow_makespans: dict[int, float]
    deadlines: dict[int, float]
    deadline_violations: int
    resource_seconds: float
    cost_continuous: float
    cost_hourly: float
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def n_workflows(self) -> int:
        return len(self.workflow_makespans)

    @property
    def sla_violation_rate(self) -> float:
        if not self.deadlines:
            return 0.0
        return self.deadline_violations / len(self.deadlines)

    @property
    def mean_makespan(self) -> float:
        if not self.workflow_makespans:
            return float("nan")
        return float(np.mean(list(self.workflow_makespans.values())))


class _RunningTask:
    __slots__ = ("task", "remaining")

    def __init__(self, task: Task, remaining: float):
        self.task = task
        self.remaining = remaining


def run_autoscaling_experiment(workflows: Sequence[Workflow],
                               autoscaler: Autoscaler,
                               config: Optional[ExperimentConfig] = None,
                               tracer=None, registry=None
                               ) -> AutoscalingResult:
    """Replay the workload under one autoscaler."""
    config = config or ExperimentConfig()
    if not workflows:
        raise ValueError("no workflows to run")
    workflows = sorted(workflows, key=lambda w: w.submit_time)
    # Time-stepped replay (no DES environment): observability carries
    # explicit times — the replay clock ``t`` below.
    monitor = None
    if registry is not None:
        from repro.sim import Monitor
        monitor = Monitor(registry=registry, namespace="autoscaling")
    root_span = None
    wf_spans: dict[int, object] = {}
    if tracer is not None:
        root_span = tracer.start_span(
            "autoscaling.experiment", t=workflows[0].submit_time,
            autoscaler=autoscaler.name, workflows=len(workflows))
    deadlines = {
        wf.job_id: wf.submit_time
        + config.deadline_factor * wf.critical_path_work()
        for wf in workflows
    }

    t = workflows[0].submit_time
    step = config.step_s
    arrived: list[Workflow] = []
    next_arrival = 0
    running: list[_RunningTask] = []
    demand_series: list[float] = []
    supply_series: list[float] = []
    times: list[float] = []
    demand_history: list[float] = []
    supply = 0.0
    pending: list[tuple[int, float]] = []  # (effective step, target)
    finished_wf: dict[int, float] = {}

    for step_idx in range(config.max_steps):
        # Arrivals.
        while (next_arrival < len(workflows)
               and workflows[next_arrival].submit_time <= t):
            wf = workflows[next_arrival]
            arrived.append(wf)
            if tracer is not None:
                # Tag the arrival ordinal, not wf.job_id: job ids come
                # from a process-global counter.
                wf_spans[wf.job_id] = tracer.start_span(
                    "autoscaling.workflow", parent=root_span, t=t,
                    workflow=next_arrival, tasks=len(wf.tasks))
            next_arrival += 1

        # Apply matured provisioning decisions.
        for at, target in list(pending):
            if at <= step_idx:
                supply = target
                pending.remove((at, target))

        running_cores = sum(r.task.cores for r in running)
        supply = max(supply, float(running_cores))  # no preemption

        # Start eligible tasks within the supply.
        eligible: list[tuple[Workflow, Task]] = []
        for wf in arrived:
            if wf.job_id in finished_wf:
                continue
            for task in wf.ready_tasks():
                eligible.append((wf, task))
        eligible.sort(key=lambda pair: (pair[0].submit_time,
                                        pair[1].task_id))
        for wf, task in eligible:
            if running_cores + task.cores > supply:
                continue
            task.state = TaskState.RUNNING
            task.start_time = t
            running.append(_RunningTask(task, task.work))
            running_cores += task.cores

        eligible_cores = sum(
            task.cores for wf, task in eligible
            if task.state is TaskState.PENDING)
        demand = running_cores + eligible_cores
        demand_series.append(demand)
        supply_series.append(supply)
        times.append(t)
        demand_history.append(demand)
        if monitor is not None:
            monitor.record("demand_cores", demand, time=t)
            monitor.record("supply_cores", supply, time=t)

        # Progress running tasks.
        still_running: list[_RunningTask] = []
        for r in running:
            r.remaining -= step
            if r.remaining <= 1e-9:
                r.task.state = TaskState.DONE
                r.task.finish_time = t + step
            else:
                still_running.append(r)
        running = still_running

        # Completion bookkeeping.
        for wf in arrived:
            if wf.job_id not in finished_wf and wf.done:
                finish_t = max(task.finish_time for task in wf.tasks)
                finished_wf[wf.job_id] = finish_t - wf.submit_time
                span = wf_spans.pop(wf.job_id, None)
                if span is not None:
                    tracer.end_span(span, t=finish_t)

        if (next_arrival >= len(workflows)
                and len(finished_wf) == len(workflows)):
            break

        # Autoscaler decision for the next interval.
        view = None
        if autoscaler.workflow_aware:
            next_level = 0.0
            for wf in arrived:
                if wf.job_id in finished_wf:
                    continue
                for task in wf.tasks:
                    if task.state is not TaskState.PENDING:
                        continue
                    preds = wf.predecessors(task)
                    if preds and all(
                            p.state in (TaskState.DONE, TaskState.RUNNING)
                            for p in preds) and any(
                            p.state is TaskState.RUNNING for p in preds):
                        next_level += task.cores
            view = WorkflowView(
                running_cores=float(sum(r.task.cores for r in running)),
                eligible_cores=float(sum(
                    task.cores for wf in arrived
                    if wf.job_id not in finished_wf
                    for task in wf.ready_tasks())),
                next_level_cores=next_level,
                remaining_estimates=[r.remaining for r in running])
        target = autoscaler.decide(demand_history, supply, view)
        target = float(np.clip(math.ceil(target), 0.0, config.max_supply))
        pending.append((step_idx + 1 + config.provisioning_delay_steps,
                        target))
        t += step
    else:
        raise RuntimeError(
            f"experiment did not finish within {config.max_steps} steps "
            f"({len(finished_wf)}/{len(workflows)} workflows done) — "
            "supply may be starved")

    demand_arr = np.asarray(demand_series)
    supply_arr = np.asarray(supply_series)
    resource_seconds = float(supply_arr.sum() * step)
    violations = sum(
        1 for job_id, makespan in finished_wf.items()
        if (next(w for w in workflows if w.job_id == job_id).submit_time
            + makespan) > deadlines[job_id] + 1e-9)
    price = config.cost_model.price_per_hour
    cost_continuous = resource_seconds / 3600.0 * price
    cost_hourly = math.ceil(resource_seconds / 3600.0) * price
    if monitor is not None:
        monitor.count("deadline_violations", amount=violations)
    if root_span is not None:
        tracer.end_span(root_span, t=t, violations=violations)
    return AutoscalingResult(
        autoscaler=autoscaler.name,
        times=np.asarray(times),
        demand=demand_arr,
        supply=supply_arr,
        workflow_makespans=finished_wf,
        deadlines=deadlines,
        deadline_violations=violations,
        resource_seconds=resource_seconds,
        cost_continuous=cost_continuous,
        cost_hourly=cost_hourly,
        metrics=elasticity_metrics(demand_arr, supply_arr),
    )
