"""Independent corroboration of experiment results ([128], [130]).

§6.7: "We found interesting discrepancies between the real-world software
of the initial in vitro experiments and the software of the simulator,
which we have developed independently; these discrepancies have allowed
us to correct in time the real-world results, and emphasize the need for
*independent corroboration* in the community."

The in-silico analog implemented here: run the same autoscaling
experiment through independently-parameterized evaluations (different
time discretizations of the same ground truth) and flag every metric
whose values disagree beyond a tolerance — exactly the signal that sent
the paper's authors back to their real-world results.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Sequence

from repro.autoscaling.autoscalers import Autoscaler
from repro.autoscaling.experiment import (
    AutoscalingResult,
    ExperimentConfig,
    run_autoscaling_experiment,
)
from repro.autoscaling.metrics import ELASTICITY_METRIC_NAMES


@dataclass
class CorroborationReport:
    """Per-metric agreement between independent evaluations."""

    autoscaler: str
    step_sizes: tuple[float, ...]
    values: dict[str, tuple[float, ...]]
    tolerance: float

    def discrepancy(self, metric: str) -> float:
        """Max relative spread of a metric across evaluations."""
        vals = self.values[metric]
        lo, hi = min(vals), max(vals)
        scale = max(abs(hi), abs(lo), 1e-9)
        return (hi - lo) / scale

    @property
    def disagreeing_metrics(self) -> list[str]:
        return sorted(m for m in self.values
                      if self.discrepancy(m) > self.tolerance)

    @property
    def corroborated(self) -> bool:
        return not self.disagreeing_metrics


def corroborate(workflows, autoscaler_factory,
                step_sizes: Sequence[float] = (15.0, 30.0, 60.0),
                tolerance: float = 0.25,
                provisioning_delay_s: float = 60.0,
                metrics: Sequence[str] = ELASTICITY_METRIC_NAMES
                ) -> CorroborationReport:
    """Run the experiment once per step size; compare the metrics.

    ``autoscaler_factory()`` must return a *fresh* autoscaler per run
    (stateful autoscalers must not leak learning between evaluations).
    The provisioning delay is held constant in wall-clock terms so the
    evaluations model the same system.

    Metrics tied to the discretization itself (per-step counts like
    jitter/instability, and raw volumes that scale with step count) are
    excluded by default via ``metrics`` when callers pass the robust
    subset; the full set is compared otherwise.
    """
    if len(step_sizes) < 2:
        raise ValueError("corroboration needs at least two evaluations")
    values: dict[str, list[float]] = {m: [] for m in metrics}
    name = None
    for step in step_sizes:
        delay_steps = max(1, round(provisioning_delay_s / step))
        config = ExperimentConfig(step_s=step,
                                  provisioning_delay_steps=delay_steps)
        autoscaler = autoscaler_factory()
        if not isinstance(autoscaler, Autoscaler):
            raise TypeError("autoscaler_factory must return an Autoscaler")
        name = autoscaler.name
        result = run_autoscaling_experiment(copy.deepcopy(workflows),
                                            autoscaler, config)
        for metric in metrics:
            values[metric].append(result.metrics[metric])
    return CorroborationReport(
        autoscaler=name,
        step_sizes=tuple(step_sizes),
        values={m: tuple(v) for m, v in values.items()},
        tolerance=tolerance,
    )


#: Metrics whose definition is discretization-independent (normalized
#: accuracies and time shares), suitable for cross-evaluation comparison.
ROBUST_METRICS: tuple[str, ...] = (
    "accuracy_under", "accuracy_over", "timeshare_under",
    "timeshare_over", "avg_supply", "avg_utilization",
)
