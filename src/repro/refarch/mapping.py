"""Mapping concrete ecosystems onto reference architectures.

Reproduces the paper's §6.3 exercise: the MapReduce ecosystem maps onto
both architecture generations, but in-memory file systems, network/storage
engines, portals, and DevOps tools only fit the 2016 architecture — the
quantitative argument for the revision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.refarch.catalog import KNOWN_COMPONENTS
from repro.refarch.model import Component, ReferenceArchitecture


@dataclass
class EcosystemMapping:
    """Result of mapping an ecosystem onto one architecture."""

    architecture: str
    ecosystem: str
    placed: dict[str, list[str]] = field(default_factory=dict)
    unplaced: list[str] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        total = len(self.placed) + len(self.unplaced)
        return len(self.placed) / total if total else 1.0

    def layers_used(self) -> set[str]:
        return {layer for layers in self.placed.values() for layer in layers}


def map_ecosystem(arch: ReferenceArchitecture,
                  components: list[Component],
                  ecosystem_name: str = "ecosystem") -> EcosystemMapping:
    """Place every component; record the ones with no accepting layer."""
    mapping = EcosystemMapping(architecture=arch.name,
                               ecosystem=ecosystem_name)
    for comp in components:
        layers = arch.place(comp)
        if layers:
            mapping.placed[comp.name] = [l.name for l in layers]
        else:
            mapping.unplaced.append(comp.name)
    return mapping


def coverage(arch: ReferenceArchitecture,
             components: list[Component]) -> float:
    """Fraction of components the architecture can place."""
    return map_ecosystem(arch, components).coverage


def _known(*names: str) -> list[Component]:
    return [KNOWN_COMPONENTS[name] for name in names]


#: The minimal MapReduce big data ecosystem of Fig. 9's sample mapping.
MAPREDUCE_ECOSYSTEM: list[Component] = _known(
    "Pig", "Hive", "MapReduce", "Hadoop", "HDFS", "YARN", "Mesos",
    "Zookeeper")

#: Ecosystems the paper says it has mapped since 2016. Stylized component
#: sets: enough to exercise every layer of the 2016 architecture.
INDUSTRY_ECOSYSTEMS: dict[str, list[Component]] = {
    "mapreduce-core": list(MAPREDUCE_ECOSYSTEM),
    "modern-datacenter": _known(
        "Pig", "Hive", "MapReduce", "Hadoop", "HDFS", "YARN", "Zookeeper",
        "MemEFS", "Pocket", "Crail", "FlashNet", "Graphalytics", "Granula",
        "JupyterHub", "Kubernetes", "EC2", "Prometheus"),
    "serverless-stack": _known(
        "Fission", "Fission-Workflows", "Kubernetes", "Pocket", "Prometheus",
        "EC2"),
    "analytics-stack": _known(
        "Spark", "Hive", "HDFS", "YARN", "Zookeeper", "Graphalytics",
        "Prometheus"),
}
