"""The evolving datacenter reference architecture (paper Figure 9).

Two generations are modelled:

- :data:`BIG_DATA_2011` — the 2011–2016 four-layer big-data architecture
  (High-Level Language, Programming Model, Execution Engine, Storage
  Engine);
- :data:`DATACENTER_2016` — the 2016 full-datacenter architecture with five
  core layers (Front-end, Back-end, Resources, Operations Service,
  Infrastructure) plus the orthogonal DevOps layer.

The package provides the architecture model (layers, sub-layers,
components), a registry of well-known ecosystem components (Hadoop, YARN,
Zookeeper, …), mapping of concrete ecosystems onto an architecture, and the
coverage analysis the paper uses to argue the 2016 architecture encompasses
industry ecosystems where the 2011 one cannot.
"""

from repro.refarch.model import (
    Component,
    Layer,
    ReferenceArchitecture,
)
from repro.refarch.catalog import (
    BIG_DATA_2011,
    DATACENTER_2016,
    KNOWN_COMPONENTS,
    component,
)
from repro.refarch.mapping import (
    EcosystemMapping,
    MAPREDUCE_ECOSYSTEM,
    INDUSTRY_ECOSYSTEMS,
    coverage,
    map_ecosystem,
)

__all__ = [
    "BIG_DATA_2011",
    "Component",
    "DATACENTER_2016",
    "EcosystemMapping",
    "INDUSTRY_ECOSYSTEMS",
    "KNOWN_COMPONENTS",
    "Layer",
    "MAPREDUCE_ECOSYSTEM",
    "ReferenceArchitecture",
    "component",
    "coverage",
    "map_ecosystem",
]
