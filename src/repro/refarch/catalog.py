"""The two Figure 9 architectures and a registry of known components.

The component concern-tags encode what the paper says about each system:
e.g., Pig and Hive are high-level languages over the MapReduce programming
model; YARN and Mesos do general-purpose resource allocation; MemEFS and
Pocket are in-memory/ephemeral storage the 2011 architecture cannot place.
"""

from __future__ import annotations

from repro.refarch.model import Component, Layer, ReferenceArchitecture


def component(name: str, *concerns: str, description: str = "") -> Component:
    """Shorthand constructor used by the registry and by tests."""
    return Component(name=name, concerns=frozenset(concerns),
                     description=description)


# ---------------------------------------------------------------------------
# 2011-2016: the four-layer big data reference architecture (Fig. 9 top).
# ---------------------------------------------------------------------------
BIG_DATA_2011 = ReferenceArchitecture(
    name="big-data-reference-architecture",
    era="2011-2016",
    layers=[
        Layer(4, "High-Level Language",
              {"high-level-language", "sql", "dataflow-language"},
              "User-facing query and scripting languages"),
        Layer(3, "Programming Model",
              {"programming-model", "mapreduce-model", "graph-model",
               "stream-model"},
              "The abstraction applications are written against"),
        Layer(2, "Execution Engine",
              {"execution-engine", "task-execution", "job-management",
               "resource-allocation", "scheduling", "coordination"},
              "Distributes and executes jobs"),
        Layer(1, "Storage Engine",
              {"storage-engine", "distributed-fs", "block-storage",
               "nosql-store"},
              "Durable data storage"),
    ],
)


# ---------------------------------------------------------------------------
# 2016-ongoing: the full datacenter reference architecture (Fig. 9 bottom).
# Five core layers plus the orthogonal DevOps layer; Layers 4 and 5 have
# sub-layers to classify emerging specialization.
# ---------------------------------------------------------------------------
DATACENTER_2016 = ReferenceArchitecture(
    name="datacenter-reference-architecture",
    era="2016-ongoing",
    layers=[
        Layer(5, "Front-end",
              {"application"},
              "Application-level functionality",
              sublayers=[
                  Layer(53, "High-Level Language",
                        {"high-level-language", "sql", "dataflow-language"}),
                  Layer(52, "Portals and SaaS",
                        {"portal", "saas", "notebook"}),
                  Layer(51, "Programming Model",
                        {"programming-model", "mapreduce-model",
                         "graph-model", "stream-model", "faas-model"}),
              ]),
        Layer(4, "Back-end",
              {"application-management"},
              "Task, resource, and service management for the application",
              sublayers=[
                  Layer(43, "Execution Engine",
                        {"execution-engine", "task-execution",
                         "job-management", "workflow-engine"}),
                  Layer(42, "Runtime Storage",
                        {"storage-engine", "distributed-fs", "in-memory-fs",
                         "ephemeral-storage", "nosql-store"}),
                  Layer(41, "Network and I/O Engines",
                        {"network-engine", "rdma", "storage-network-codesign"}),
              ]),
        Layer(3, "Resources",
              {"resource-allocation", "scheduling", "resource-management",
               "cluster-management", "autoscaling"},
              "Task, resource, and service management for the operator"),
        Layer(2, "Operations Service",
              {"coordination", "naming", "configuration", "messaging",
               "membership", "locking"},
              "Distributed operating services"),
        Layer(1, "Infrastructure",
              {"virtualization", "physical-resources", "container-runtime",
               "block-storage", "network-fabric"},
              "Physical and virtual resource management"),
        Layer(6, "DevOps",
              {"monitoring", "logging", "benchmarking", "performance-analysis",
               "ci-cd", "tracing"},
              "Orthogonal operational tooling", orthogonal=True),
    ],
)


#: Registry of the ecosystem components named in the paper (Fig. 9 and §6.3).
KNOWN_COMPONENTS: dict[str, Component] = {
    comp.name: comp for comp in [
        component("Pig", "high-level-language", "dataflow-language",
                  description="Dataflow scripting over MapReduce"),
        component("Hive", "high-level-language", "sql",
                  description="SQL over MapReduce"),
        component("MapReduce", "mapreduce-model", "programming-model",
                  description="The MapReduce programming model"),
        component("Hadoop", "execution-engine", "job-management",
                  "task-execution",
                  description="Distributes and executes MapReduce jobs"),
        component("HDFS", "storage-engine", "distributed-fs",
                  description="Hadoop distributed file system"),
        component("YARN", "resource-allocation", "scheduling",
                  description="General-purpose datacenter resource manager"),
        component("Mesos", "resource-allocation", "cluster-management",
                  description="Two-level datacenter resource manager"),
        component("Zookeeper", "coordination", "configuration", "naming",
                  description="Configuration and coordination service"),
        component("Spark", "execution-engine", "programming-model",
                  description="In-memory dataflow engine"),
        component("Kubernetes", "container-runtime", "cluster-management",
                  "resource-allocation",
                  description="Container orchestration"),
        # Components the 2011 architecture cannot place (§6.3's critique):
        component("MemEFS", "in-memory-fs",
                  description="Elastic in-memory runtime distributed FS"),
        component("Pocket", "ephemeral-storage",
                  description="Elastic ephemeral storage for serverless"),
        component("Crail", "network-engine", "rdma",
                  description="High-performance I/O architecture"),
        component("FlashNet", "storage-network-codesign",
                  description="Flash/network stack co-design"),
        component("Graphalytics", "benchmarking",
                  description="Graph-processing benchmark (DevOps tool)"),
        component("Granula", "performance-analysis",
                  description="Fine-grained performance analysis"),
        component("JupyterHub", "portal", "notebook",
                  description="SaaS-style portal; no 2011 home either"),
        component("Fission", "faas-model", "execution-engine",
                  description="FaaS platform over Kubernetes"),
        component("Fission-Workflows", "workflow-engine",
                  description="Workflow engine in the Kubernetes-Fission "
                              "ecosystem"),
        component("Prometheus", "monitoring",
                  description="Metrics and monitoring"),
        component("EC2", "virtualization", "physical-resources",
                  description="IaaS virtual machines"),
    ]
}
