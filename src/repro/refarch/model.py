"""Model of a layered reference architecture."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass(frozen=True)
class Component:
    """A concrete ecosystem component (a system, engine, or service).

    ``concerns`` are free-form capability tags ("sql", "scheduling",
    "in-memory-fs", …) used to decide which layer(s) the component can
    map to.
    """

    name: str
    concerns: frozenset[str]
    description: str = ""

    def __str__(self) -> str:
        return self.name


@dataclass
class Layer:
    """One layer of a reference architecture.

    A layer accepts a component when they share at least one concern.
    Sub-layers give the finer granularity the 2016 architecture introduces
    in its Front-end and Back-end layers.
    """

    index: int
    name: str
    concerns: set[str]
    description: str = ""
    sublayers: list["Layer"] = field(default_factory=list)
    orthogonal: bool = False

    def accepts(self, comp: Component) -> bool:
        if self.concerns & comp.concerns:
            return True
        return any(sub.accepts(comp) for sub in self.sublayers)

    def matching_sublayer(self, comp: Component) -> Optional["Layer"]:
        for sub in self.sublayers:
            if sub.concerns & comp.concerns:
                return sub
        return None

    def all_concerns(self) -> set[str]:
        concerns = set(self.concerns)
        for sub in self.sublayers:
            concerns |= sub.all_concerns()
        return concerns


class ReferenceArchitecture:
    """A named, versioned stack of layers.

    The paper's Figure 9 shows two generations; both instantiate this
    class (see :mod:`repro.refarch.catalog`).
    """

    def __init__(self, name: str, era: str, layers: Iterable[Layer]):
        self.name = name
        self.era = era
        self.layers = sorted(layers, key=lambda l: l.index)
        names = [l.name for l in self.layers]
        if len(set(names)) != len(names):
            raise ValueError(f"architecture {name}: duplicate layer names")

    def __repr__(self) -> str:
        return f"<ReferenceArchitecture {self.name} ({self.era}): " \
               f"{len(self.layers)} layers>"

    @property
    def core_layers(self) -> list[Layer]:
        return [l for l in self.layers if not l.orthogonal]

    @property
    def orthogonal_layers(self) -> list[Layer]:
        return [l for l in self.layers if l.orthogonal]

    def layer(self, name: str) -> Layer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"{self.name} has no layer {name!r}")

    def place(self, comp: Component) -> list[Layer]:
        """All layers that accept the component (a component may span)."""
        return [layer for layer in self.layers if layer.accepts(comp)]

    def can_place(self, comp: Component) -> bool:
        return bool(self.place(comp))

    def placement_detail(self, comp: Component
                         ) -> list[tuple[Layer, Optional[Layer]]]:
        """(layer, sublayer-or-None) pairs for every accepting layer."""
        detail = []
        for layer in self.place(comp):
            detail.append((layer, layer.matching_sublayer(comp)))
        return detail

    def all_concerns(self) -> set[str]:
        concerns: set[str] = set()
        for layer in self.layers:
            concerns |= layer.all_concerns()
        return concerns
