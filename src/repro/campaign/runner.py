"""The parallel shard runner: N workers, one deterministic verdict set.

The determinism contract is the whole point: the campaign's output is a
pure function of ``(root_seed, n_schedules, envelopes, oracle config)``
and **not** of the worker count. That is earned by construction:

- every schedule (and its world seed) is generated *up front* in the
  parent from named :class:`~repro.sim.RandomStreams`, so schedule ``i``
  is fixed before any shard exists;
- shards only execute — shard ``w`` takes schedules ``i`` with
  ``i % workers == w`` and never draws randomness of its own;
- the merge step sorts verdicts by schedule index and folds metrics
  with commutative addition, so arrival order cannot matter.

Run the same campaign with 1 worker and with 8: the verdict list and
merged metrics are equal, element for element. The shard-invariance
test in ``tests/campaign/`` holds the runner to exactly that.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.campaign.oracles import (
    OracleStack,
    RunVerdict,
    merge_metrics,
)
from repro.campaign.schedule import (
    FaultSchedule,
    ScheduleEnvelope,
    derive_seed,
    generate_schedule,
)
from repro.sim import RandomStreams

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "generate_schedules",
    "run_campaign",
]


@dataclass
class CampaignConfig:
    """Everything that determines a campaign's outcome (plus workers,
    which by contract does not)."""

    root_seed: int = 0
    n_schedules: int = 200
    workers: int = 1
    worlds: tuple = ("partition", "failover")
    envelopes: Optional[tuple] = None
    double_run: bool = True
    extra_world_kwargs: dict = field(default_factory=dict)

    def resolved_envelopes(self) -> tuple:
        if self.envelopes is not None:
            return tuple(self.envelopes)
        return tuple(ScheduleEnvelope.for_world(world)
                     for world in self.worlds)


def generate_schedules(config: CampaignConfig) -> list:
    """All ``n_schedules`` schedules, in index order, shard-independent.

    Schedule ``i`` samples from envelope ``i % len(envelopes)`` (the
    campaign round-robins its worlds) with world seed
    ``derive_seed(root_seed, i)``.
    """
    streams = RandomStreams(config.root_seed)
    envelopes = config.resolved_envelopes()
    if not envelopes:
        raise ValueError("campaign needs at least one envelope")
    return [generate_schedule(streams, envelopes[i % len(envelopes)],
                              index=i,
                              seed=derive_seed(config.root_seed, i))
            for i in range(config.n_schedules)]


def _execute_shard(payload: dict) -> list:
    """Run one shard's schedules; returns JSON-able verdict+metrics rows.

    Module-level (not a closure) so it pickles across the
    ``multiprocessing`` boundary; the payload is plain data for the
    same reason.
    """
    stack = OracleStack(double_run=payload["double_run"],
                        extra_world_kwargs=payload["extra_world_kwargs"])
    rows = []
    for index, schedule_dict in payload["schedules"]:
        schedule = FaultSchedule.from_dict(schedule_dict)
        verdict, metrics = stack.evaluate_run(schedule, index=index)
        rows.append({"verdict": verdict.as_dict(), "metrics": metrics})
    return rows


@dataclass
class CampaignReport:
    """The merged campaign outcome: verdicts, metrics, and provenance."""

    root_seed: int
    n_schedules: int
    workers: int
    worlds: tuple
    verdicts: list
    merged_metrics: dict
    wall_time_s: float = 0.0

    @property
    def n_passed(self) -> int:
        return sum(1 for v in self.verdicts if v.passed)

    @property
    def n_failed(self) -> int:
        return len(self.verdicts) - self.n_passed

    def failures(self) -> list:
        return [v for v in self.verdicts if not v.passed]

    def as_dict(self) -> dict:
        return {
            "format": "repro.campaign/report/1",
            "root_seed": self.root_seed,
            "n_schedules": self.n_schedules,
            "workers": self.workers,
            "worlds": list(self.worlds),
            "n_passed": self.n_passed,
            "n_failed": self.n_failed,
            "wall_time_s": round(self.wall_time_s, 3),
            "merged_metrics": self.merged_metrics,
            "verdicts": [v.as_dict() for v in self.verdicts],
        }

    def dumps(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def format(self) -> str:
        """A terminal-friendly campaign summary."""
        lines = [
            f"campaign: {len(self.verdicts)} schedule(s), "
            f"{self.n_passed} passed, {self.n_failed} failed "
            f"({self.workers} worker(s), {self.wall_time_s:.1f}s wall)",
        ]
        by_world: dict[str, list] = {}
        for verdict in self.verdicts:
            by_world.setdefault(verdict.world, []).append(verdict)
        for world in sorted(by_world):
            group = by_world[world]
            passed = sum(1 for v in group if v.passed)
            lines.append(f"  {world}: {passed}/{len(group)} passed")
        for verdict in self.failures():
            detail = "; ".join(
                f"{name}: {verdict.failure_details.get(name, '?')}"
                for name in verdict.failures)
            lines.append(f"  FAIL #{verdict.index} "
                         f"[{verdict.world} seed={verdict.seed} "
                         f"digest={verdict.schedule_digest[:12]}] {detail}")
        return "\n".join(lines)


def run_campaign(config: CampaignConfig) -> CampaignReport:
    """Generate, shard, execute, and merge one campaign."""
    # Campaign wall time is harness telemetry, not simulated time: it
    # measures this process, never feeds back into any world.
    started = time.monotonic()  # simlint: disable=SL002
    schedules = generate_schedules(config)
    indexed = list(enumerate(schedules))
    workers = max(1, config.workers)
    payloads = []
    for shard in range(workers):
        mine = [(i, s.as_dict()) for i, s in indexed
                if i % workers == shard]
        if mine:
            payloads.append({
                "schedules": mine,
                "double_run": config.double_run,
                "extra_world_kwargs": dict(config.extra_world_kwargs),
            })
    if workers == 1 or len(payloads) <= 1:
        shard_rows = [_execute_shard(p) for p in payloads]
    else:
        with multiprocessing.Pool(processes=len(payloads)) as pool:
            shard_rows = pool.map(_execute_shard, payloads)
    rows = [row for shard in shard_rows for row in shard]
    rows.sort(key=lambda row: row["verdict"]["index"])
    verdicts = [RunVerdict.from_dict(row["verdict"]) for row in rows]
    merged = merge_metrics(row["metrics"] for row in rows
                           if row["metrics"] is not None)
    return CampaignReport(
        root_seed=config.root_seed,
        n_schedules=config.n_schedules,
        workers=config.workers,
        worlds=tuple(config.worlds),
        verdicts=verdicts,
        merged_metrics=merged,
        wall_time_s=time.monotonic() - started)  # simlint: disable=SL002
