"""Serializable randomized fault schedules for deterministic fuzzing.

A :class:`FaultSchedule` is the campaign's unit of work: a typed list of
fault :class:`Episode` objects — network partitions, gray failures,
scheduler crashes, correlated bursts, scheduled message loss, and
overload ramps — plus the world it runs against, the world's root seed,
and a sim-time budget. Schedules serialize to canonical JSON and carry a
SHA-256 digest, so a failing schedule found on one machine (or one
shard) replays bit-for-bit anywhere: the digest *is* the identity.

:func:`generate_schedule` samples schedules from a configurable
:class:`ScheduleEnvelope` using named
:class:`~repro.sim.RandomStreams` only — no global RNG, no wall clock —
so schedule ``i`` of root seed ``s`` is the same schedule forever,
independent of how many shards the campaign runs on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from repro.faults.partition import PartitionEpisode
from repro.sim import RandomStreams

__all__ = [
    "EPISODE_KINDS",
    "Episode",
    "FaultSchedule",
    "KINDS_BY_WORLD",
    "SCHEDULE_FORMAT",
    "ScheduleEnvelope",
    "WORLDS",
    "derive_seed",
    "generate_schedule",
    "normalize_episodes",
]

SCHEDULE_FORMAT = "repro.campaign/schedule/1"

#: The worlds a schedule can target — the two composed chaos scenarios.
WORLDS = ("partition", "failover")

#: Every typed fault an episode can inject.
EPISODE_KINDS = ("partition", "gray", "crash", "burst", "loss", "overload")

#: Which kinds each world understands. The failover world's scheduler
#: crashes are organic (the control plane fails it over), so forced
#: ``crash`` episodes only exist in the partition world.
KINDS_BY_WORLD = {
    "partition": frozenset(EPISODE_KINDS),
    "failover": frozenset(("partition", "gray", "burst", "loss",
                           "overload")),
}

_DIRECTIONS = ("both", "outbound", "inbound")
_GRAY_ROLES = ("worker", "scheduler")

#: Kinds whose episodes must not overlap each other: partitions within a
#: group (the network model's half-open-interval contract) and scheduler
#: crash windows (the scheduler cannot crash while already down).
_EXCLUSIVE_KINDS = frozenset(("partition", "crash"))


@dataclass(frozen=True)
class Episode:
    """One typed fault over the half-open sim-time window [start, end).

    ``params`` carries the kind-specific knobs: ``direction`` for
    partitions, ``role`` for gray failures, ``rate`` for loss,
    ``fraction`` for bursts, ``factor`` for overload ramps. Crash
    episodes need none — the outage is ``end_s - start_s``.
    """

    kind: str
    start_s: float
    end_s: float
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in EPISODE_KINDS:
            raise ValueError(f"unknown episode kind {self.kind!r}; "
                             f"known: {EPISODE_KINDS}")
        if not 0 <= self.start_s < self.end_s:
            raise ValueError(
                f"{self.kind} episode [{self.start_s}, {self.end_s}) "
                "needs 0 <= start < end")
        if self.kind == "partition":
            direction = self.params.get("direction", "both")
            if direction not in _DIRECTIONS:
                raise ValueError(f"partition direction {direction!r} not "
                                 f"in {_DIRECTIONS}")
        elif self.kind == "gray":
            role = self.params.get("role", "worker")
            if role not in _GRAY_ROLES:
                raise ValueError(f"gray role {role!r} not in {_GRAY_ROLES}")
        elif self.kind == "loss":
            rate = self.params.get("rate")
            if rate is None or not 0.0 < rate < 1.0:
                raise ValueError(f"loss rate {rate!r} not in (0, 1)")
        elif self.kind == "burst":
            fraction = self.params.get("fraction")
            if fraction is None or not 0.0 < fraction <= 1.0:
                raise ValueError(
                    f"burst fraction {fraction!r} not in (0, 1]")
        elif self.kind == "overload":
            factor = self.params.get("factor")
            if factor is None or factor < 1.0:
                raise ValueError(f"overload factor {factor!r} must be >= 1")

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def as_dict(self) -> dict:
        return {"kind": self.kind, "start_s": self.start_s,
                "end_s": self.end_s, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "Episode":
        return cls(kind=data["kind"], start_s=float(data["start_s"]),
                   end_s=float(data["end_s"]),
                   params=dict(data.get("params", {})))


def normalize_episodes(episodes: Iterable[Episode]) -> tuple:
    """Sort episodes and clip same-kind overlaps for exclusive kinds.

    Episodes are ordered by ``(start_s, end_s, kind)``. For partitions
    and crashes, a later episode starting inside an earlier one of the
    same kind is clipped to start at the earlier one's end; episodes
    swallowed whole are dropped. Gray/burst/loss/overload episodes may
    overlap freely — their models take the max over active windows.
    """
    ordered = sorted(episodes,
                     key=lambda e: (e.start_s, e.end_s, e.kind))
    out: list[Episode] = []
    last_end: dict[str, float] = {}
    for episode in ordered:
        if episode.kind in _EXCLUSIVE_KINDS:
            floor = last_end.get(episode.kind, 0.0)
            start = max(episode.start_s, floor)
            if start >= episode.end_s:
                continue  # swallowed whole by the previous window
            if start != episode.start_s:
                episode = replace(episode, start_s=start)
            last_end[episode.kind] = episode.end_s
        out.append(episode)
    return tuple(out)


@dataclass(frozen=True)
class FaultSchedule:
    """A complete, replayable fault plan for one world run."""

    world: str
    seed: int
    sim_budget_s: float
    episodes: tuple = ()

    def __post_init__(self):
        if self.world not in WORLDS:
            raise ValueError(f"unknown world {self.world!r}; "
                             f"known: {WORLDS}")
        if self.sim_budget_s <= 0:
            raise ValueError("sim_budget_s must be positive")
        allowed = KINDS_BY_WORLD[self.world]
        for episode in self.episodes:
            if episode.kind not in allowed:
                raise ValueError(
                    f"episode kind {episode.kind!r} is not supported by "
                    f"the {self.world!r} world (allowed: {sorted(allowed)})")
        object.__setattr__(self, "episodes",
                           normalize_episodes(self.episodes))

    # -- identity ----------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "format": SCHEDULE_FORMAT,
            "world": self.world,
            "seed": self.seed,
            "sim_budget_s": self.sim_budget_s,
            "episodes": [e.as_dict() for e in self.episodes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        fmt = data.get("format", SCHEDULE_FORMAT)
        if fmt != SCHEDULE_FORMAT:
            raise ValueError(f"unknown schedule format {fmt!r}")
        return cls(world=data["world"], seed=int(data["seed"]),
                   sim_budget_s=float(data["sim_budget_s"]),
                   episodes=tuple(Episode.from_dict(e)
                                  for e in data["episodes"]))

    def canonical_json(self) -> str:
        """Key-sorted, whitespace-free JSON — the digest's input."""
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 of the canonical JSON: the schedule's identity."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def dumps(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))

    # -- world binding -----------------------------------------------------
    def to_world_kwargs(self) -> dict:
        """Translate the schedule into ``run_*_scenario`` keyword args.

        Every schedule-driven knob is set *explicitly* (empty lists, not
        ``None``), so a schedule fully determines the fault envelope —
        the scenario's built-in default faults never leak into a
        campaign run.
        """
        group = "minority" if self.world == "partition" else "old-leader"
        by_kind: dict[str, list] = {kind: [] for kind in EPISODE_KINDS}
        for episode in self.episodes:
            by_kind[episode.kind].append(episode)
        kwargs: dict = {
            "seed": self.seed,
            "sim_budget_s": self.sim_budget_s,
            "invariant_halt": False,
            "partition_episodes": [
                PartitionEpisode(e.start_s, e.end_s, group,
                                 e.params.get("direction", "both"))
                for e in by_kind["partition"]],
            "burst_episodes": [(e.start_s, e.end_s, e.params["fraction"])
                               for e in by_kind["burst"]],
            "loss_episodes": [(e.start_s, e.end_s, e.params["rate"])
                              for e in by_kind["loss"]],
            "overload_spans": [(e.start_s, e.end_s, e.params["factor"])
                               for e in by_kind["overload"]],
        }
        if self.world == "partition":
            gray_spans: dict[str, list] = {"worker": [], "scheduler": []}
            for e in by_kind["gray"]:
                gray_spans[e.params.get("role", "worker")].append(
                    (e.start_s, e.end_s))
            kwargs["gray_spans"] = gray_spans
            kwargs["crash_schedule"] = [(e.start_s, e.duration_s)
                                        for e in by_kind["crash"]]
        else:
            # The failover world grays only its boot leader; the role
            # distinction collapses.
            kwargs["gray_spans"] = [(e.start_s, e.end_s)
                                    for e in by_kind["gray"]]
        return kwargs


# -- generation -------------------------------------------------------------

def derive_seed(root_seed: int, index: int) -> int:
    """The per-schedule world seed: sha256-derived, shard-invariant."""
    digest = hashlib.sha256(f"{root_seed}:world:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % (2 ** 31)


@dataclass(frozen=True)
class ScheduleEnvelope:
    """The sampling envelope :func:`generate_schedule` draws from.

    ``kind_weights`` is a tuple of ``(kind, weight)`` pairs; kinds the
    target world does not support are rejected at construction.
    """

    world: str = "partition"
    max_episodes: int = 6
    horizon_s: float = 240.0
    min_duration_s: float = 10.0
    max_duration_s: float = 90.0
    sim_budget_s: float = 600.0
    min_crash_outage_s: float = 2.0
    max_crash_outage_s: float = 12.0
    min_loss_rate: float = 0.05
    max_loss_rate: float = 0.25
    min_overload_factor: float = 1.2
    max_overload_factor: float = 2.5
    min_burst_fraction: float = 0.1
    max_burst_fraction: float = 0.4
    kind_weights: tuple = (("partition", 2.0), ("gray", 2.0),
                           ("crash", 1.0), ("burst", 1.0),
                           ("loss", 1.0), ("overload", 1.0))

    def __post_init__(self):
        if self.world not in WORLDS:
            raise ValueError(f"unknown world {self.world!r}")
        if self.max_episodes < 1:
            raise ValueError("max_episodes must be >= 1")
        allowed = KINDS_BY_WORLD[self.world]
        for kind, weight in self.kind_weights:
            if kind not in allowed:
                raise ValueError(
                    f"kind {kind!r} (weight {weight}) is not supported "
                    f"by the {self.world!r} world")
            if weight < 0:
                raise ValueError(f"negative weight for kind {kind!r}")

    @classmethod
    def for_world(cls, world: str, **overrides) -> "ScheduleEnvelope":
        """The default envelope for ``world``, minus unsupported kinds."""
        allowed = KINDS_BY_WORLD[world]
        weights = tuple((kind, weight) for kind, weight
                        in cls.kind_weights
                        if kind in allowed)
        overrides.setdefault("kind_weights", weights)
        return cls(world=world, **overrides)


def generate_schedule(streams: RandomStreams, envelope: ScheduleEnvelope,
                      *, index: int,
                      seed: Optional[int] = None) -> FaultSchedule:
    """Sample one schedule from ``envelope`` — named streams only.

    The draw order is fixed per episode (kind, start, duration, then the
    kind's parameter), so the schedule at ``(root_seed, index)`` is
    stable across shard counts, platforms, and runs. ``seed`` defaults
    to nothing sensible — campaigns pass :func:`derive_seed` explicitly
    so the world seed, too, is a pure function of ``(root_seed, index)``.
    """
    rng = streams.get(f"schedule-{index:06d}")
    if seed is None:
        seed = int(rng.integers(0, 2 ** 31))
    kinds = [kind for kind, _ in envelope.kind_weights]
    weights = [weight for _, weight in envelope.kind_weights]
    total = sum(weights)
    if total <= 0:
        raise ValueError("kind_weights must have positive total weight")
    probabilities = [w / total for w in weights]
    n_episodes = int(rng.integers(1, envelope.max_episodes + 1))
    episodes: list[Episode] = []
    for _ in range(n_episodes):
        kind = kinds[int(rng.choice(len(kinds), p=probabilities))]
        start = round(float(rng.uniform(0.0, envelope.horizon_s)), 3)
        if kind == "crash":
            duration = float(rng.uniform(envelope.min_crash_outage_s,
                                         envelope.max_crash_outage_s))
        else:
            duration = float(rng.uniform(envelope.min_duration_s,
                                         envelope.max_duration_s))
        end = round(start + duration, 3)
        params: dict = {}
        if kind == "partition":
            params["direction"] = _DIRECTIONS[int(rng.integers(0, 3))]
        elif kind == "gray":
            if envelope.world == "partition":
                params["role"] = _GRAY_ROLES[int(rng.integers(0, 2))]
            else:
                params["role"] = "worker"
        elif kind == "loss":
            params["rate"] = round(float(rng.uniform(
                envelope.min_loss_rate, envelope.max_loss_rate)), 4)
        elif kind == "burst":
            params["fraction"] = round(float(rng.uniform(
                envelope.min_burst_fraction,
                envelope.max_burst_fraction)), 4)
        elif kind == "overload":
            params["factor"] = round(float(rng.uniform(
                envelope.min_overload_factor,
                envelope.max_overload_factor)), 4)
        episodes.append(Episode(kind=kind, start_s=start, end_s=end,
                                params=params))
    return FaultSchedule(world=envelope.world, seed=seed,
                         sim_budget_s=envelope.sim_budget_s,
                         episodes=tuple(episodes))
