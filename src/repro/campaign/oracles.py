"""The oracle stack: what "this schedule passed" actually means.

A campaign run is only as strong as its oracles. Each
:class:`FaultSchedule` executes against its composed world with the
:class:`~repro.invariants.InvariantEngine` in survey mode over the full
``standard_laws`` catalog, and the :class:`OracleStack` then judges the
run on four axes:

- **safety** — zero conservation-law violations in the survey log, and
  (failover world) zero split-brain writes and at most one leader per
  term;
- **liveness** — the run closes its books (``all_done``) within the
  schedule's sim-time budget and loses zero tasks;
- **determinism** — an optional :class:`DeterminismSanitizer`-style
  double run: the same schedule executed twice must produce the same
  event-trace digest and the same result dict.

Verdicts are plain data (:class:`RunVerdict`), picklable across shard
workers and byte-identical however many shards executed them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.analysis.sanitizers import TraceDigest
from repro.campaign.schedule import FaultSchedule
from repro.faults.chaos import run_failover_scenario, run_partition_scenario
from repro.sim import Environment, MetricsRegistry

__all__ = [
    "CampaignRun",
    "Oracle",
    "OracleStack",
    "RunVerdict",
    "WORLD_RUNNERS",
    "execute_schedule",
    "merge_metrics",
    "standard_oracles",
]

WORLD_RUNNERS = {
    "partition": run_partition_scenario,
    "failover": run_failover_scenario,
}


@dataclass(frozen=True)
class Oracle:
    """One named pass/fail judgment over a world run's result dict.

    ``check`` returns ``None`` on pass, or a human-readable failure
    detail. ``worlds`` restricts applicability (empty = all worlds).
    """

    name: str
    check: Callable[[dict], Optional[str]]
    worlds: tuple = ()

    def applies_to(self, world: str) -> bool:
        return not self.worlds or world in self.worlds


def _invariants_hold(result: dict) -> Optional[str]:
    violations = result.get("invariant_violations", 0)
    if violations:
        return (f"{violations} conservation-law violation(s) in the "
                "survey log")
    return None


def _run_completes(result: dict) -> Optional[str]:
    if not result.get("all_done", False):
        return (f"books still open at sim-time budget: "
                f"{result.get('completed', 0)} completed of "
                f"{result.get('submitted', 0)} submitted")
    return None


def _no_lost_tasks(result: dict) -> Optional[str]:
    lost = result.get("lost", 0)
    if lost:
        return f"{lost} task(s) lost"
    return None


def _at_most_one_leader(result: dict) -> Optional[str]:
    promotions = result.get("promotions", 0)
    terms = result.get("terms_with_leader", 0)
    if promotions != terms:
        return (f"{promotions} promotion(s) across {terms} term(s) with "
                "a leader — some term elected twice")
    return None


def _no_split_brain(result: dict) -> Optional[str]:
    writes = result.get("split_brain_writes", 0)
    if writes:
        return f"{writes} stale write(s) accepted by unfenced machines"
    return None


_ORACLES = (
    Oracle("invariants_hold", _invariants_hold),
    Oracle("run_completes", _run_completes),
    Oracle("no_lost_tasks", _no_lost_tasks),
    Oracle("at_most_one_leader", _at_most_one_leader,
           worlds=("failover",)),
    Oracle("no_split_brain", _no_split_brain, worlds=("failover",)),
)


def standard_oracles(world: Optional[str] = None) -> tuple:
    """The oracle catalog, optionally filtered to one world."""
    if world is None:
        return _ORACLES
    return tuple(o for o in _ORACLES if o.applies_to(world))


# -- execution ---------------------------------------------------------------

@dataclass
class CampaignRun:
    """One traced execution of a schedule: result + digests + metrics."""

    result: dict
    trace_digest: str
    trace_events: int
    metrics: dict


def execute_schedule(schedule: FaultSchedule,
                     extra_world_kwargs: Optional[dict] = None
                     ) -> CampaignRun:
    """Run ``schedule`` against its world, traced and metered.

    ``extra_world_kwargs`` passes additional scenario knobs through —
    the campaign's way of planting a known bug (``fence_on_failover=
    False``, ``report_retry=False``) under the oracles' noses.
    """
    runner = WORLD_RUNNERS[schedule.world]
    kwargs = schedule.to_world_kwargs()
    if extra_world_kwargs:
        kwargs.update(extra_world_kwargs)
    registry = MetricsRegistry()
    digest = TraceDigest()
    with Environment.traced(digest):
        result = runner(registry=registry, **kwargs)
    return CampaignRun(result=result, trace_digest=digest.hexdigest(),
                       trace_events=digest.events,
                       metrics=registry.snapshot())


def merge_metrics(snapshots) -> dict:
    """Merge per-run registry snapshots into one campaign-wide ledger.

    Counters sum their totals (and ``by_key`` maps); series sum their
    sample counts. The merge is order-insensitive by construction —
    addition commutes — so shard count cannot change the merged view.
    """
    merged: dict[str, dict] = {}
    for snapshot in snapshots:
        for name, entry in snapshot.items():
            slot = merged.setdefault(
                name, {"type": entry["type"],
                       "total": 0} if entry["type"] == "counter"
                else {"type": "series", "count": 0})
            if entry["type"] == "counter":
                slot["total"] += entry["total"]
                for key, value in entry.get("by_key", {}).items():
                    by_key = slot.setdefault("by_key", {})
                    by_key[key] = by_key.get(key, 0) + value
            else:
                slot["count"] += entry["count"]
    return {name: ({**entry,
                    "by_key": dict(sorted(entry["by_key"].items()))}
                   if "by_key" in entry else entry)
            for name, entry in sorted(merged.items())}


# -- verdicts ----------------------------------------------------------------

@dataclass
class RunVerdict:
    """The oracle stack's judgment of one schedule — shard-invariant."""

    index: int
    world: str
    seed: int
    schedule_digest: str
    trace_digest: str
    passed: bool
    failures: tuple = ()
    failure_details: dict = field(default_factory=dict)
    summary: dict = field(default_factory=dict)
    schedule: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "world": self.world,
            "seed": self.seed,
            "schedule_digest": self.schedule_digest,
            "trace_digest": self.trace_digest,
            "passed": self.passed,
            "failures": list(self.failures),
            "failure_details": dict(self.failure_details),
            "summary": dict(self.summary),
            "schedule": dict(self.schedule),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunVerdict":
        return cls(index=data["index"], world=data["world"],
                   seed=data["seed"],
                   schedule_digest=data["schedule_digest"],
                   trace_digest=data["trace_digest"],
                   passed=data["passed"],
                   failures=tuple(data["failures"]),
                   failure_details=dict(data["failure_details"]),
                   summary=dict(data["summary"]),
                   schedule=dict(data["schedule"]))


_SUMMARY_KEYS = ("completed", "submitted", "lost", "all_done",
                 "sim_time_s", "invariant_violations",
                 "scheduler_crashes", "split_brain_writes", "failovers")


class OracleStack:
    """Evaluates schedules: execute, judge, optionally double-run.

    ``double_run=True`` re-executes every schedule and requires an
    identical trace digest *and* result dict — the campaign-integrated
    form of the :class:`~repro.analysis.sanitizers.DeterminismSanitizer`
    check. A mismatch fails the ``determinism`` oracle.
    """

    def __init__(self, oracles=None, *, double_run: bool = True,
                 extra_world_kwargs: Optional[dict] = None):
        self.oracles = oracles
        self.double_run = double_run
        self.extra_world_kwargs = dict(extra_world_kwargs or {})

    def evaluate(self, schedule: FaultSchedule,
                 index: int = 0) -> RunVerdict:
        verdict, _ = self.evaluate_run(schedule, index=index)
        return verdict

    def evaluate_run(self, schedule: FaultSchedule,
                     index: int = 0) -> tuple:
        """Like :meth:`evaluate`, also returning the run's metrics
        snapshot (for the campaign-wide merge)."""
        run = execute_schedule(schedule, self.extra_world_kwargs)
        oracles = (self.oracles if self.oracles is not None
                   else standard_oracles(schedule.world))
        failures: list[str] = []
        details: dict[str, str] = {}
        for oracle in oracles:
            if not oracle.applies_to(schedule.world):
                continue
            detail = oracle.check(run.result)
            if detail is not None:
                failures.append(oracle.name)
                details[oracle.name] = detail
        if self.double_run:
            rerun = execute_schedule(schedule, self.extra_world_kwargs)
            if rerun.trace_digest != run.trace_digest:
                failures.append("determinism")
                details["determinism"] = (
                    f"trace digests diverged across same-seed runs "
                    f"({run.trace_events} vs {rerun.trace_events} events)")
            elif rerun.result != run.result:
                failures.append("determinism")
                details["determinism"] = (
                    "result dicts diverged across same-seed runs with "
                    "identical traces")
        summary = {key: run.result[key] for key in _SUMMARY_KEYS
                   if key in run.result}
        verdict = RunVerdict(
            index=index, world=schedule.world, seed=schedule.seed,
            schedule_digest=schedule.digest(),
            trace_digest=run.trace_digest,
            passed=not failures,
            failures=tuple(sorted(failures)),
            failure_details=details,
            summary=summary,
            schedule=schedule.as_dict())
        return verdict, run.metrics
