"""Deterministic chaos-fuzzing campaigns over the composed worlds.

FoundationDB-style simulation testing for the repro ecosystem
(Principle P3, Challenges C3/C6): instead of hand-curating a handful of
chaos scenarios, a campaign *generates* hundreds of randomized,
serializable :class:`FaultSchedule` objects — partitions, gray
failures, crashes, correlated bursts, message loss, overload ramps —
and runs each against the composed partition/failover worlds under a
stack of safety, liveness, and determinism oracles
(:mod:`repro.campaign.oracles`).

Because every schedule is a pure function of ``(root_seed, index)`` and
every world run is deterministic under its seed, a failure found
anywhere replays everywhere: the shard runner
(:mod:`repro.campaign.runner`) produces verdicts that are invariant to
the worker count, and the shrinker (:mod:`repro.campaign.shrink`)
delta-debugs a failing schedule down to a minimal repro file that
``python -m repro.campaign repro <file>`` re-executes exactly.

See ``docs/campaigns.md`` for the schedule format, the oracle catalog,
and the shrink/repro workflow.
"""

from repro.campaign.oracles import (
    CampaignRun,
    Oracle,
    OracleStack,
    RunVerdict,
    WORLD_RUNNERS,
    execute_schedule,
    merge_metrics,
    standard_oracles,
)
from repro.campaign.runner import (
    CampaignConfig,
    CampaignReport,
    generate_schedules,
    run_campaign,
)
from repro.campaign.schedule import (
    EPISODE_KINDS,
    Episode,
    FaultSchedule,
    KINDS_BY_WORLD,
    SCHEDULE_FORMAT,
    ScheduleEnvelope,
    WORLDS,
    derive_seed,
    generate_schedule,
    normalize_episodes,
)
from repro.campaign.shrink import (
    REPRO_FORMAT,
    ReproOutcome,
    ShrinkResult,
    load_repro,
    replay_repro,
    repro_dict,
    shrink_schedule,
)

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "CampaignRun",
    "EPISODE_KINDS",
    "Episode",
    "FaultSchedule",
    "KINDS_BY_WORLD",
    "Oracle",
    "OracleStack",
    "REPRO_FORMAT",
    "ReproOutcome",
    "RunVerdict",
    "SCHEDULE_FORMAT",
    "ScheduleEnvelope",
    "ShrinkResult",
    "WORLDS",
    "WORLD_RUNNERS",
    "derive_seed",
    "execute_schedule",
    "generate_schedule",
    "generate_schedules",
    "load_repro",
    "merge_metrics",
    "normalize_episodes",
    "replay_repro",
    "repro_dict",
    "run_campaign",
    "shrink_schedule",
    "standard_oracles",
]
