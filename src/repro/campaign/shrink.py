"""Counterexample shrinking: from a failing schedule to a minimal repro.

A fuzzing campaign that hands you a six-episode schedule has found a
bug; a shrinker that hands you the one episode that matters has
*explained* it. :func:`shrink_schedule` minimizes a failing
:class:`FaultSchedule` in three passes, re-executing the oracle stack
after every candidate mutation to confirm the failure is preserved:

1. **ddmin over episodes** — classic delta debugging: drop complement
   chunks at doubling granularity until no subset of episodes can be
   removed;
2. **duration halving** — each surviving episode's window is repeatedly
   halved while the schedule still fails;
3. **boundary snapping** — starts and ends are rounded to whole seconds
   where the failure allows, so the minimal repro reads like a test
   case, not like noise.

The result serializes to a repro file that
``python -m repro.campaign repro <file>`` replays exactly: same oracle
failures, same event-trace digest.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.campaign.oracles import OracleStack
from repro.campaign.schedule import FaultSchedule

__all__ = [
    "REPRO_FORMAT",
    "ReproOutcome",
    "ShrinkResult",
    "load_repro",
    "replay_repro",
    "repro_dict",
    "shrink_schedule",
]

REPRO_FORMAT = "repro.campaign/repro/1"

#: Windows shorter than this are not worth halving further — they are
#: already one detector/audit tick wide.
_MIN_DURATION_S = 1.0


@dataclass
class ShrinkResult:
    """What the shrinker did and what it kept."""

    original: FaultSchedule
    minimal: FaultSchedule
    failures: tuple
    steps: int = 0
    executions: int = 0
    trace_digest: str = ""

    @property
    def episodes_removed(self) -> int:
        return len(self.original.episodes) - len(self.minimal.episodes)


class _Shrinker:
    def __init__(self, stack: OracleStack, target_failures: frozenset,
                 max_executions: int):
        self.stack = stack
        self.target = target_failures
        self.max_executions = max_executions
        self.executions = 0
        self.steps = 0
        self.last_digest = ""

    def exhausted(self) -> bool:
        return self.executions >= self.max_executions

    def still_fails(self, schedule: FaultSchedule) -> bool:
        """True iff the candidate reproduces every targeted oracle
        failure (it may fail *more* — shrinking can only demand the bug
        it is chasing stays visible)."""
        if self.exhausted():
            return False
        self.executions += 1
        verdict = self.stack.evaluate(schedule)
        if self.target <= set(verdict.failures):
            self.last_digest = verdict.trace_digest
            return True
        return False

    def _with_episodes(self, schedule: FaultSchedule,
                       episodes) -> FaultSchedule:
        return replace(schedule, episodes=tuple(episodes))

    # -- pass 1: ddmin ----------------------------------------------------
    def ddmin_episodes(self, schedule: FaultSchedule) -> FaultSchedule:
        episodes = list(schedule.episodes)
        granularity = 2
        while len(episodes) >= 2 and not self.exhausted():
            chunk = max(1, (len(episodes) + granularity - 1) // granularity)
            reduced = False
            for lo in range(0, len(episodes), chunk):
                complement = episodes[:lo] + episodes[lo + chunk:]
                if not complement:
                    continue
                candidate = self._with_episodes(schedule, complement)
                if self.still_fails(candidate):
                    episodes = complement
                    schedule = candidate
                    granularity = max(granularity - 1, 2)
                    self.steps += 1
                    reduced = True
                    break
            if not reduced:
                if granularity >= len(episodes):
                    break
                granularity = min(len(episodes), 2 * granularity)
        # Try the single-episode tails ddmin's chunking can miss.
        if len(episodes) > 1 and not self.exhausted():
            for episode in list(episodes):
                if len(episodes) == 1:
                    break
                complement = [e for e in episodes if e is not episode]
                candidate = self._with_episodes(schedule, complement)
                if self.still_fails(candidate):
                    episodes = complement
                    schedule = candidate
                    self.steps += 1
        return schedule

    # -- pass 2: halve durations ------------------------------------------
    def halve_durations(self, schedule: FaultSchedule) -> FaultSchedule:
        for position in range(len(schedule.episodes)):
            while not self.exhausted():
                episodes = list(schedule.episodes)
                episode = episodes[position]
                if episode.duration_s <= 2 * _MIN_DURATION_S:
                    break
                shorter = replace(
                    episode,
                    end_s=round(episode.start_s
                                + episode.duration_s / 2.0, 3))
                episodes[position] = shorter
                candidate = self._with_episodes(schedule, episodes)
                # Normalization may reorder/clip; keep only if the
                # episode count survived (halving must not silently
                # merge windows) and the failure is preserved.
                if (len(candidate.episodes) == len(schedule.episodes)
                        and self.still_fails(candidate)):
                    schedule = candidate
                    self.steps += 1
                else:
                    break
        return schedule

    # -- pass 3: snap boundaries ------------------------------------------
    def snap_boundaries(self, schedule: FaultSchedule) -> FaultSchedule:
        for position in range(len(schedule.episodes)):
            if self.exhausted():
                break
            episodes = list(schedule.episodes)
            episode = episodes[position]
            snapped = replace(episode,
                              start_s=float(math.floor(episode.start_s)),
                              end_s=float(math.ceil(episode.end_s)))
            if snapped == episode:
                continue
            episodes[position] = snapped
            candidate = self._with_episodes(schedule, episodes)
            if (len(candidate.episodes) == len(schedule.episodes)
                    and self.still_fails(candidate)):
                schedule = candidate
                self.steps += 1
        return schedule


def shrink_schedule(schedule: FaultSchedule, *,
                    oracles=None,
                    extra_world_kwargs: Optional[dict] = None,
                    target_failures=None,
                    max_executions: int = 150) -> ShrinkResult:
    """Minimize a failing schedule; raises if it does not fail at all.

    ``target_failures`` (default: whatever the original run fails)
    names the oracle failures every accepted shrink step must preserve.
    Every candidate is confirmed by re-execution — the shrinker never
    guesses. ``max_executions`` bounds total re-runs; the result is the
    best schedule found within that budget.
    """
    stack = OracleStack(oracles, double_run=False,
                        extra_world_kwargs=extra_world_kwargs)
    baseline = stack.evaluate(schedule)
    if baseline.passed:
        raise ValueError(
            f"schedule {schedule.digest()[:12]} does not fail any oracle; "
            "nothing to shrink")
    target = frozenset(target_failures if target_failures is not None
                       else baseline.failures)
    if not target <= set(baseline.failures):
        raise ValueError(
            f"target failures {sorted(target)} not among the schedule's "
            f"actual failures {sorted(baseline.failures)}")
    shrinker = _Shrinker(stack, target, max_executions)
    shrinker.executions = 1  # the baseline run above
    shrinker.last_digest = baseline.trace_digest
    minimal = shrinker.ddmin_episodes(schedule)
    minimal = shrinker.halve_durations(minimal)
    minimal = shrinker.snap_boundaries(minimal)
    return ShrinkResult(original=schedule, minimal=minimal,
                        failures=tuple(sorted(target)),
                        steps=shrinker.steps,
                        executions=shrinker.executions,
                        trace_digest=shrinker.last_digest)


# -- repro files -------------------------------------------------------------

def repro_dict(schedule: FaultSchedule, failures,
               extra_world_kwargs: Optional[dict] = None,
               trace_digest: str = "") -> dict:
    """The serialized minimal repro: schedule + knobs + expectations."""
    return {
        "format": REPRO_FORMAT,
        "schedule": schedule.as_dict(),
        "schedule_digest": schedule.digest(),
        "extra_world_kwargs": dict(extra_world_kwargs or {}),
        "expect_failures": sorted(failures),
        "trace_digest": trace_digest,
    }


def load_repro(text: str) -> dict:
    data = json.loads(text)
    if data.get("format") != REPRO_FORMAT:
        raise ValueError(f"not a campaign repro file "
                         f"(format {data.get('format')!r})")
    return data


@dataclass
class ReproOutcome:
    """One replay of a repro file, judged against its expectations."""

    reproduced: bool
    expected_failures: tuple
    actual_failures: tuple
    trace_digest_matches: Optional[bool]
    verdict_summary: dict

    def describe(self) -> str:
        if self.reproduced:
            extra = ("" if self.trace_digest_matches is None else
                     " (trace digest matches)" if self.trace_digest_matches
                     else " (WARNING: trace digest differs)")
            return ("reproduced: oracle failures "
                    f"{list(self.expected_failures)}{extra}")
        return (f"NOT reproduced: expected {list(self.expected_failures)}, "
                f"got {list(self.actual_failures)}")


def replay_repro(data: dict) -> ReproOutcome:
    """Re-execute a repro file and judge it against its expectations.

    Reproduction means the replay fails *exactly* the expected oracle
    set. When the file pinned a trace digest, a digest mismatch is
    reported (a schema- or model-version drift signal) without voiding
    the reproduction itself.
    """
    schedule = FaultSchedule.from_dict(data["schedule"])
    recorded = data.get("schedule_digest")
    if recorded and recorded != schedule.digest():
        raise ValueError(
            "repro file is corrupt: schedule digest mismatch "
            f"({recorded[:12]} recorded, {schedule.digest()[:12]} actual)")
    stack = OracleStack(double_run=False,
                        extra_world_kwargs=data.get("extra_world_kwargs"))
    verdict = stack.evaluate(schedule)
    expected = tuple(sorted(data.get("expect_failures", [])))
    actual = tuple(sorted(verdict.failures))
    digest_matches: Optional[bool] = None
    if data.get("trace_digest"):
        digest_matches = data["trace_digest"] == verdict.trace_digest
    return ReproOutcome(
        reproduced=actual == expected,
        expected_failures=expected,
        actual_failures=actual,
        trace_digest_matches=digest_matches,
        verdict_summary=verdict.summary)
