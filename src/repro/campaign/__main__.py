"""Entry point: ``python -m repro.campaign``."""

import sys

from repro.campaign.cli import main

sys.exit(main())
