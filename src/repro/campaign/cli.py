"""``python -m repro.campaign`` — run, shrink, and replay campaigns.

Three subcommands close the fuzzing loop:

- ``run`` executes a campaign of randomized schedules across shard
  workers, prints the verdict summary, and (on failures) writes one
  un-minimized repro file per failing schedule;
- ``shrink`` minimizes a repro file's schedule by delta debugging and
  writes the minimal repro;
- ``repro`` replays a repro file and exits 0 iff the recorded oracle
  failures reproduce exactly.

A clean campaign exits 0; a campaign with failures exits 1, so CI can
gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.campaign.runner import CampaignConfig, run_campaign
from repro.campaign.schedule import (
    FaultSchedule,
    ScheduleEnvelope,
    WORLDS,
)
from repro.campaign.shrink import (
    load_repro,
    replay_repro,
    repro_dict,
    shrink_schedule,
)

__all__ = ["main"]


def _parse_value(text: str):
    """Parse a ``--world-kwarg`` value: bool, number, or string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _parse_world_kwargs(pairs) -> dict:
    kwargs = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise SystemExit(f"--world-kwarg needs name=value, got {pair!r}")
        name, _, value = pair.partition("=")
        kwargs[name] = _parse_value(value)
    return kwargs


def _cmd_run(args) -> int:
    worlds = tuple(args.worlds.split(","))
    for world in worlds:
        if world not in WORLDS:
            raise SystemExit(f"unknown world {world!r}; known: {WORLDS}")
    envelopes = None
    if args.budget is not None:
        envelopes = tuple(
            ScheduleEnvelope.for_world(world, sim_budget_s=args.budget)
            for world in worlds)
    config = CampaignConfig(
        root_seed=args.seed,
        n_schedules=args.schedules,
        workers=args.workers,
        worlds=worlds,
        envelopes=envelopes,
        double_run=not args.no_double_run,
        extra_world_kwargs=_parse_world_kwargs(args.world_kwarg))
    report = run_campaign(config)
    print(report.format())
    if args.report:
        Path(args.report).write_text(report.dumps() + "\n")
        print(f"report written to {args.report}")
    if report.n_failed and args.out_dir:
        out_dir = Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for verdict in report.failures():
            schedule = FaultSchedule.from_dict(verdict.schedule)
            path = out_dir / f"failure-{verdict.index:04d}.json"
            path.write_text(json.dumps(repro_dict(
                schedule, verdict.failures,
                extra_world_kwargs=config.extra_world_kwargs,
                trace_digest=verdict.trace_digest),
                indent=2, sort_keys=True) + "\n")
            print(f"repro file written to {path}")
    return 1 if report.n_failed else 0


def _cmd_shrink(args) -> int:
    data = load_repro(Path(args.input).read_text())
    schedule = FaultSchedule.from_dict(data["schedule"])
    result = shrink_schedule(
        schedule,
        extra_world_kwargs=data.get("extra_world_kwargs"),
        target_failures=data.get("expect_failures"),
        max_executions=args.max_executions)
    print(f"shrunk {len(result.original.episodes)} episode(s) -> "
          f"{len(result.minimal.episodes)} in {result.steps} accepted "
          f"step(s), {result.executions} execution(s)")
    minimal = repro_dict(result.minimal, result.failures,
                         extra_world_kwargs=data.get("extra_world_kwargs"),
                         trace_digest=result.trace_digest)
    out = Path(args.out) if args.out else Path(args.input).with_suffix(
        ".minimal.json")
    out.write_text(json.dumps(minimal, indent=2, sort_keys=True) + "\n")
    print(f"minimal repro written to {out}")
    return 0


def _cmd_repro(args) -> int:
    data = load_repro(Path(args.file).read_text())
    outcome = replay_repro(data)
    print(outcome.describe())
    if outcome.verdict_summary:
        print("summary: " + json.dumps(outcome.verdict_summary,
                                       sort_keys=True))
    return 0 if outcome.reproduced else 1


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Deterministic chaos-fuzzing campaigns.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a campaign of random schedules")
    p_run.add_argument("--seed", type=int, default=0,
                       help="campaign root seed (default 0)")
    p_run.add_argument("--schedules", type=int, default=200,
                       help="number of schedules (default 200)")
    p_run.add_argument("--workers", type=int, default=1,
                       help="shard worker processes (default 1)")
    p_run.add_argument("--worlds", default="partition,failover",
                       help="comma-separated worlds "
                            "(default partition,failover)")
    p_run.add_argument("--budget", type=float, default=None,
                       help="sim-time budget per schedule "
                            "(default: envelope's)")
    p_run.add_argument("--no-double-run", action="store_true",
                       help="skip the determinism double-run check")
    p_run.add_argument("--report", default=None,
                       help="write the full JSON report here")
    p_run.add_argument("--out-dir", default=None,
                       help="write repro files for failures here")
    p_run.add_argument("--world-kwarg", action="append", metavar="K=V",
                       help="extra scenario kwarg, e.g. "
                            "fence_on_failover=false (repeatable)")
    p_run.set_defaults(func=_cmd_run)

    p_shrink = sub.add_parser("shrink",
                              help="minimize a failing repro file")
    p_shrink.add_argument("--input", required=True,
                          help="repro file to minimize")
    p_shrink.add_argument("--out", default=None,
                          help="output path (default: <input>.minimal.json)")
    p_shrink.add_argument("--max-executions", type=int, default=150,
                          help="re-execution budget (default 150)")
    p_shrink.set_defaults(func=_cmd_shrink)

    p_repro = sub.add_parser("repro", help="replay a repro file")
    p_repro.add_argument("file", help="repro file to replay")
    p_repro.set_defaults(func=_cmd_repro)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
