"""The Table 9 grid: portfolio scheduling across workloads × environments.

Each cell regenerates one row's *finding*: is portfolio scheduling (PS)
useful — i.e., does it track the per-workload best static policy without
knowing it in advance? Environments follow Table 9's acronyms: CL (own
cluster), CD (public cloud), G+CD (grid plus cloud), MCD (multi-cluster),
GDC (geo-distributed datacenters) — realized as clusters of different
size, speed mix, and heterogeneity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.machine import Machine
from repro.scheduling.policies import POLICIES, make_policy
from repro.scheduling.portfolio import (
    PortfolioConfig,
    PortfolioScheduler,
    PortfolioStats,
)
from repro.scheduling.simulator import (
    ClusterSimulator,
    ScheduleMetrics,
)
from repro.sim import Environment, RandomStreams
from repro.workload.generators import generate_domain_workload


def _cluster_cl() -> Cluster:
    return Cluster.homogeneous("cl", 16, cores=8, speed=1.0)


def _cluster_cd() -> Cluster:
    return Cluster.homogeneous("cd", 48, cores=4, speed=0.9)


def _cluster_grid_cloud() -> Cluster:
    machines = [Machine(f"grid-{i}", cores=8, speed=0.7)
                for i in range(12)]
    machines += [Machine(f"cloud-{i}", cores=4, speed=1.1)
                 for i in range(24)]
    return Cluster("g+cd", machines)


def _cluster_mcd() -> Cluster:
    machines = []
    for c, speed in enumerate([1.0, 0.8, 1.2, 0.9]):
        machines += [Machine(f"c{c}-m{i}", cores=8, speed=speed)
                     for i in range(6)]
    return Cluster("mcd", machines)


def _cluster_gdc() -> Cluster:
    machines = []
    for site, speed in [("ams", 1.0), ("nyc", 1.0), ("sgp", 0.6)]:
        machines += [Machine(f"{site}-m{i}", cores=8, speed=speed)
                     for i in range(8)]
    return Cluster("gdc", machines)


ENVIRONMENTS: dict[str, Callable[[], Cluster]] = {
    "CL": _cluster_cl,
    "CD": _cluster_cd,
    "G+CD": _cluster_grid_cloud,
    "MCD": _cluster_mcd,
    "GDC": _cluster_gdc,
}

#: The Table 9 rows: (workload domain, environment).
TABLE9_ROWS: list[tuple[str, str]] = [
    ("synthetic", "CL"),
    ("scientific", "G+CD"),
    ("gaming", "CL"),
    ("computer-engineering", "GDC"),
    ("business-critical", "MCD"),
    ("industrial", "CD"),
    ("bigdata", "CL"),
]


@dataclass
class GridCell:
    """Results of one Table 9 cell."""

    workload: str
    environment: str
    static_results: dict[str, float]  # policy -> mean bounded slowdown
    portfolio_result: float
    portfolio_stats: PortfolioStats

    @property
    def best_static(self) -> tuple[str, float]:
        name = min(self.static_results,
                   key=lambda k: (self.static_results[k], k))
        return name, self.static_results[name]

    @property
    def worst_static(self) -> tuple[str, float]:
        name = max(self.static_results,
                   key=lambda k: (self.static_results[k], k))
        return name, self.static_results[name]

    def ps_is_useful(self, tolerance: float = 0.25) -> bool:
        """The paper's per-row finding: PS tracks the best static policy
        (within ``tolerance``) without knowing the workload in advance."""
        _, best = self.best_static
        return self.portfolio_result <= best * (1 + tolerance) + 1e-9

    def ps_regret(self) -> float:
        """Portfolio objective over best-static objective (1.0 = perfect)."""
        _, best = self.best_static
        return self.portfolio_result / best if best else float("inf")


def rescale_to_load(jobs, cluster: Cluster, target_load: float = 2.5):
    """Rescale job submit times so the offered load over the submission
    window hits ``target_load`` of the cluster's effective capacity.

    Different Table 9 domains offer wildly different loads; the paper's
    studies tune each experiment to a contended-but-feasible regime (a
    scheduler is only interesting when queues form).
    """
    if not jobs:
        return jobs
    if target_load <= 0:
        raise ValueError("target_load must be positive")
    capacity = sum(m.cores * m.speed for m in cluster.machines)
    total_work = sum(t.work * t.cores for j in jobs for t in j.tasks)
    first = min(j.submit_time for j in jobs)
    old_window = max(j.submit_time for j in jobs) - first
    new_window = total_work / (target_load * capacity)
    scale = new_window / old_window if old_window > 0 else 1.0
    for job in jobs:
        new_submit = first + (job.submit_time - first) * scale
        job.submit_time = new_submit
        for task in job.tasks:
            task.submit_time = new_submit
    return jobs


def _fresh_jobs(domain: str, seed: int, n_jobs: int,
                cluster: Optional[Cluster] = None,
                target_load: float = 2.5):
    rng = RandomStreams(seed).get(f"wl:{domain}")
    jobs = generate_domain_workload(rng, domain, n_jobs=n_jobs,
                                    horizon_s=90 * 86400)
    if cluster is not None:
        rescale_to_load(jobs, cluster, target_load)
    return jobs


def run_static(domain: str, environment: str, policy_name: str,
               seed: int = 0, n_jobs: int = 30) -> ScheduleMetrics:
    """One static-policy run on a fresh copy of the cell's workload."""
    cluster = ENVIRONMENTS[environment]()
    jobs = _fresh_jobs(domain, seed, n_jobs, cluster)
    env = Environment()
    policy = make_policy(policy_name,
                         RandomStreams(seed).get("policy-random"))
    sim = ClusterSimulator(env, cluster, policy)
    sim.submit_jobs(jobs)
    env.run()
    return sim.metrics()


def run_portfolio(domain: str, environment: str,
                  policy_names: Sequence[str] = ("fcfs", "sjf", "ljf",
                                                 "backfill", "fair-share"),
                  seed: int = 0, n_jobs: int = 30,
                  config: Optional[PortfolioConfig] = None
                  ) -> tuple[ScheduleMetrics, PortfolioStats]:
    """One portfolio run on a fresh copy of the cell's workload."""
    cluster = ENVIRONMENTS[environment]()
    jobs = _fresh_jobs(domain, seed, n_jobs, cluster)
    env = Environment()
    rng = RandomStreams(seed).get("policy-random")
    policies = [make_policy(name, rng) for name in policy_names]
    sim = ClusterSimulator(env, cluster, policies[0])
    portfolio = PortfolioScheduler(env, sim, policies, config)
    sim.submit_jobs(jobs)
    env.run()
    metrics = sim.metrics()
    metrics.policy = "portfolio"
    return metrics, portfolio.stats


def run_table9_cell(domain: str, environment: str, seed: int = 0,
                    n_jobs: int = 30,
                    policy_names: Sequence[str] = ("fcfs", "sjf", "ljf",
                                                   "backfill", "fair-share"),
                    config: Optional[PortfolioConfig] = None) -> GridCell:
    """Portfolio vs. every static policy on identical workload copies."""
    static = {}
    for name in policy_names:
        static[name] = run_static(domain, environment, name, seed,
                                  n_jobs).objective()
    metrics, stats = run_portfolio(domain, environment, policy_names,
                                   seed, n_jobs, config)
    return GridCell(workload=domain, environment=environment,
                    static_results=static,
                    portfolio_result=metrics.objective(),
                    portfolio_stats=stats)


def run_table9_grid(seed: int = 0, n_jobs: int = 25,
                    rows: Sequence[tuple[str, str]] = tuple(TABLE9_ROWS),
                    ) -> list[GridCell]:
    """The whole Table 9 grid."""
    return [run_table9_cell(domain, environment, seed=seed, n_jobs=n_jobs)
            for domain, environment in rows]
