"""An event-driven cluster/job simulator.

Executes bags-of-tasks and workflows on a :class:`repro.cluster.Cluster`
under a :class:`repro.scheduling.policies.Policy`, producing the metric
set of the paper's scheduling studies ([121], [122]): wait time, response
time, bounded slowdown, makespan, and utilization.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.machine import Machine
from repro.scheduling.policies import FairSharePolicy, Policy
from repro.sim import Environment, Monitor
from repro.workload.task import BagOfTasks, Task, TaskState, Workflow

#: Bounded-slowdown runtime floor (the standard 10-second bound).
SLOWDOWN_BOUND_S = 10.0

Job = Union[BagOfTasks, Workflow]


@dataclass
class ScheduleMetrics:
    """Aggregate metrics of one simulated schedule."""

    policy: str
    n_tasks: int
    mean_wait_s: float
    mean_response_s: float
    mean_bounded_slowdown: float
    p95_bounded_slowdown: float
    makespan_s: float
    utilization: float
    job_mean_makespan_s: float = float("nan")

    def objective(self) -> float:
        """The selection objective used throughout: mean bounded slowdown."""
        return self.mean_bounded_slowdown


class ClusterSimulator:
    """Drives jobs through a cluster under a swappable policy.

    The policy can be replaced at runtime (``sim.policy = other``), which
    is exactly the hook the portfolio scheduler uses.
    """

    def __init__(self, env: Environment, cluster: Cluster, policy: Policy,
                 monitor: Optional[Monitor] = None):
        self.env = env
        self.cluster = cluster
        self.policy = policy
        self.monitor = monitor or Monitor(env)
        self.ready: list[Task] = []
        self.running: dict[int, tuple[Task, Machine, float]] = {}
        self.finished: list[Task] = []
        self.jobs: list[Job] = []
        #: Optional hook invoked right before each scheduling pass (the
        #: portfolio scheduler uses it to re-select the policy on queue
        #: changes, not just on a timer).
        self.pre_schedule = None
        #: Tasks restarted after machine failures.
        self.restarts = 0
        self._procs: dict[int, object] = {}
        self._wake = env.event()
        self._done_submitting = False
        self._scheduler = env.process(self._schedule_loop())

    # -- submission -----------------------------------------------------------
    def submit_jobs(self, jobs: Sequence[Job]) -> None:
        """Register jobs; their tasks arrive at their submit times."""
        self.jobs.extend(jobs)
        self.env.process(self._arrivals(sorted(jobs,
                                               key=lambda j: j.submit_time)))

    def _arrivals(self, jobs: Sequence[Job]):
        for job in jobs:
            delay = job.submit_time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            if isinstance(job, Workflow):
                self.ready.extend(job.ready_tasks())
            else:
                self.ready.extend(job.tasks)
            self._kick()
        self._done_submitting = True
        self._kick()
        return None

    def _kick(self) -> None:
        if not self._wake.triggered:
            self._wake.succeed()

    # -- scheduling ----------------------------------------------------------
    @property
    def all_done(self) -> bool:
        return (self._done_submitting and not self.ready
                and not self.running)

    def _schedule_loop(self):
        while True:
            self._try_schedule()
            if self.all_done:
                return
            # Structural impossibility: no machine in the cluster is big
            # enough for a ready task even when completely empty. (A
            # merely-busy or temporarily-failed cluster is not flagged —
            # the task may fit later.)
            if (self._done_submitting and self.ready and not self.running
                    and all(not any(m.cores >= t.cores
                                    and m.memory_gb >= t.memory_gb
                                    for m in self.cluster.machines)
                            for t in self.ready)):
                raise RuntimeError(
                    f"{len(self.ready)} tasks can never be placed on this "
                    "cluster (too many cores or too much memory requested)")
            self._wake = self.env.event()
            yield self._wake

    def _earliest_head_start(self, head: Task) -> float:
        """Estimated earliest time the head task could start (for EASY)."""
        free = self.cluster.free_cores
        if free >= head.cores:
            return self.env.now
        releases = sorted(
            (start + (task.runtime_estimate or task.work), task.cores)
            for task_id, (task, machine, start) in self.running.items())
        for finish_est, cores in releases:
            free += cores
            if free >= head.cores:
                return max(finish_est, self.env.now)
        return float("inf")

    def _try_schedule(self) -> None:
        if self.pre_schedule is not None and self.ready:
            self.pre_schedule()
        progress = True
        while progress:
            progress = False
            if not self.ready:
                return
            ordered = self.policy.order(self.ready, self.env.now)
            head = ordered[0]
            machine = self.cluster.first_fit(head.cores, head.memory_gb)
            if machine is not None:
                self._start(head, machine)
                progress = True
                continue
            if not self.policy.allows_backfill():
                return
            # EASY backfill: run later tasks that fit now and (by
            # estimate) finish before the head could possibly start.
            shadow = self._earliest_head_start(head)
            window = shadow - self.env.now
            for task in ordered[1:]:
                estimate = task.runtime_estimate or task.work
                if estimate > window:
                    continue
                machine = self.cluster.first_fit(task.cores, task.memory_gb)
                if machine is not None:
                    self._start(task, machine)
                    progress = True
                    break
            if not progress:
                return

    def _start(self, task: Task, machine: Machine) -> None:
        self.ready.remove(task)
        machine.allocate(task.cores, task.memory_gb)
        task.state = TaskState.RUNNING
        task.start_time = self.env.now
        self.running[task.task_id] = (task, machine, self.env.now)
        self.monitor.record("queue_length", len(self.ready))
        self._procs[task.task_id] = self.env.process(
            self._execute(task, machine))

    def handle_machine_failure(self, machine: Machine) -> None:
        """Requeue every task running on a failed machine.

        Wire this as the :class:`repro.cluster.FailureInjector`'s
        ``on_failure`` callback. Victim tasks return to PENDING and
        restart from scratch elsewhere (the classic fail-restart model);
        the injector resets the machine's allocations on repair.
        """
        victims = [task for task, m, _ in self.running.values()
                   if m is machine]
        for task in victims:
            proc = self._procs.get(task.task_id)
            if proc is not None and proc.is_alive:
                proc.interrupt("machine-failure")

    def _execute(self, task: Task, machine: Machine):
        from repro.sim import Interrupt
        runtime = machine.runtime_of(task.work)
        try:
            yield self.env.timeout(runtime)
        except Interrupt:
            # Machine failed under us: requeue; the failure injector owns
            # the machine's allocation reset on repair.
            task.state = TaskState.PENDING
            task.start_time = None
            del self.running[task.task_id]
            del self._procs[task.task_id]
            self.restarts += 1
            self.ready.append(task)
            self._kick()
            return
        machine.release(task.cores, task.memory_gb)
        task.state = TaskState.DONE
        task.finish_time = self.env.now
        del self.running[task.task_id]
        self._procs.pop(task.task_id, None)
        self.finished.append(task)
        if isinstance(self.policy, FairSharePolicy):
            self.policy.charge(task.user, task.cores * runtime)
        # Unlock workflow successors.
        for job in self.jobs:
            if isinstance(job, Workflow) and job.job_id == task.job_id:
                for succ in job.ready_tasks():
                    if succ not in self.ready:
                        self.ready.append(succ)
                break
        self.monitor.record("utilization", self.cluster.utilization)
        self._kick()

    # -- metrics --------------------------------------------------------------
    def metrics(self) -> ScheduleMetrics:
        if not self.finished:
            raise RuntimeError("no finished tasks; run the simulation first")
        waits = np.array([t.wait_time for t in self.finished])
        responses = np.array([t.response_time for t in self.finished])
        runtimes = np.array([t.runtime for t in self.finished])
        slowdowns = np.maximum(
            responses / np.maximum(runtimes, SLOWDOWN_BOUND_S), 1.0)
        first_submit = min(t.submit_time for t in self.finished)
        makespan = max(t.finish_time for t in self.finished) - first_submit
        total_work = float(
            sum(t.cores * t.runtime for t in self.finished))
        capacity = self.cluster.total_cores * makespan if makespan else 1.0
        job_makespans = [j.makespan for j in self.jobs
                         if j.makespan is not None]
        return ScheduleMetrics(
            policy=self.policy.name,
            n_tasks=len(self.finished),
            mean_wait_s=float(waits.mean()),
            mean_response_s=float(responses.mean()),
            mean_bounded_slowdown=float(slowdowns.mean()),
            p95_bounded_slowdown=float(np.percentile(slowdowns, 95)),
            makespan_s=float(makespan),
            utilization=float(total_work / capacity),
            job_mean_makespan_s=float(np.mean(job_makespans))
            if job_makespans else float("nan"),
        )


def simulate_schedule(jobs: Sequence[Job], cluster: Cluster,
                      policy: Policy,
                      horizon_s: Optional[float] = None) -> ScheduleMetrics:
    """Run one complete schedule and return its metrics."""
    env = Environment()
    sim = ClusterSimulator(env, cluster, policy)
    sim.submit_jobs(list(jobs))
    if horizon_s is not None:
        env.run(until=horizon_s)
    else:
        env.run()
    return sim.metrics()
