"""An event-driven cluster/job simulator.

Executes bags-of-tasks and workflows on a :class:`repro.cluster.Cluster`
under a :class:`repro.scheduling.policies.Policy`, producing the metric
set of the paper's scheduling studies ([121], [122]): wait time, response
time, bounded slowdown, makespan, and utilization.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.machine import Machine
from repro.recovery.journal import Journal
from repro.scheduling.policies import FairSharePolicy, Policy
from repro.sim import Environment, Monitor
from repro.workload.task import BagOfTasks, Task, TaskState, Workflow

#: Bounded-slowdown runtime floor (the standard 10-second bound).
SLOWDOWN_BOUND_S = 10.0

Job = Union[BagOfTasks, Workflow]


@dataclass
class ScheduleMetrics:
    """Aggregate metrics of one simulated schedule."""

    policy: str
    n_tasks: int
    mean_wait_s: float
    mean_response_s: float
    mean_bounded_slowdown: float
    p95_bounded_slowdown: float
    makespan_s: float
    utilization: float
    job_mean_makespan_s: float = float("nan")
    #: Fraction of submitted-and-settled tasks that completed (tasks lost
    #: to machine failures in "drop" mode count against it).
    completed_fraction: float = 1.0
    #: Core-seconds of work that finished (useful work delivered).
    goodput_core_s: float = 0.0
    #: Core-seconds burned by executions killed mid-flight by failures.
    wasted_core_s: float = 0.0
    #: Task executions restarted after machine failures.
    restarts: int = 0
    #: Dispatches lost to machines the failure detector had not yet
    #: suspected (health-aware mode only).
    misdispatches: int = 0

    def objective(self) -> float:
        """The selection objective used throughout: mean bounded slowdown."""
        return self.mean_bounded_slowdown


#: What a journal record's kind says the scheduler believed about the
#: task at append time (see :meth:`ClusterSimulator.belief_from_record`).
_BELIEF_FROM_KIND = {"submit": "ready", "requeue": "ready",
                     "dispatch": "running", "complete": "done",
                     "drop": "dropped"}


class ClusterSimulator:
    """Drives jobs through a cluster under a swappable policy.

    The policy can be replaced at runtime (``sim.policy = other``), which
    is exactly the hook the portfolio scheduler uses.
    """

    def __init__(self, env: Environment, cluster: Cluster, policy: Policy,
                 monitor: Optional[Monitor] = None,
                 failure_mode: str = "requeue",
                 health=None, dispatch_timeout_s: float = 5.0,
                 journal: Optional[Journal] = None,
                 scheduler_restart_cost_s: float = 1.0,
                 tracer=None, registry=None,
                 network=None, node_name: str = "scheduler",
                 report_retry_s: float = 2.0,
                 report_retry: bool = True,
                 service_time_factor=None,
                 fencing=None):
        if failure_mode not in ("requeue", "drop"):
            raise ValueError(
                f"failure_mode must be 'requeue' or 'drop', got {failure_mode!r}")
        self.env = env
        self.cluster = cluster
        self.policy = policy
        self.monitor = monitor or Monitor(env, registry=registry,
                                          namespace="scheduling")
        #: Optional :class:`~repro.observability.Tracer`: every dispatch
        #: becomes a ``scheduling.task`` span (status ok / killed / dropped
        #: / misdispatch).
        self.tracer = tracer
        if tracer is not None and tracer.env is None:
            tracer.bind(env)
        self._spans: dict[int, object] = {}
        self._span_ordinals: dict[int, int] = {}
        #: Optional failure detector (anything with ``is_suspect(name)``,
        #: e.g. :class:`repro.resilience.PhiAccrualDetector` keyed by
        #: machine name). When set, the scheduler stops reading the
        #: cluster's ground-truth machine state: it places tasks from its
        #: own bookkeeping, skips suspected machines, and a dispatch to a
        #: dead-but-not-yet-suspected machine is lost for
        #: ``dispatch_timeout_s`` before being requeued (a *misdispatch*).
        self.health = health
        self.dispatch_timeout_s = dispatch_timeout_s
        #: Tasks dispatched to machines that were already dead.
        self._limbo: dict[int, tuple] = {}
        self.misdispatches = 0
        #: What happens to tasks killed by a machine crash: "requeue"
        #: re-executes them elsewhere (fail-restart), "drop" loses them —
        #: the no-resilience baseline the chaos harness measures against.
        self.failure_mode = failure_mode
        self.ready: list[Task] = []
        self.running: dict[int, tuple[Task, Machine, float]] = {}
        self.finished: list[Task] = []
        self.failed: list[Task] = []
        self.jobs: list[Job] = []
        #: Optional hook invoked right before each scheduling pass (the
        #: portfolio scheduler uses it to re-select the policy on queue
        #: changes, not just on a timer).
        self.pre_schedule = None
        #: Tasks restarted after machine failures.
        self.restarts = 0
        #: Robustness accounting: useful vs. burned core-seconds.
        self.goodput_core_s = 0.0
        self.wasted_core_s = 0.0
        self._procs: dict[int, object] = {}
        #: Machine incarnation observed when each running task was placed,
        #: so post-crash releases are recognized as stale.
        self._incarnations: dict[int, int] = {}
        #: Optional write-ahead journal of submit/dispatch/complete/requeue
        #: transitions. With one, the scheduler itself can crash and
        #: recover: see :meth:`crash_scheduler` / :meth:`recover_scheduler`.
        self.journal = journal
        self.scheduler_restart_cost_s = scheduler_restart_cost_s
        self._crashed = False
        #: Tasks that finished on their machine while the scheduler was
        #: down — the completion report the dead scheduler never saw.
        self._unreported: list[tuple[Task, float]] = []
        #: Tasks killed by machine failures while the scheduler was down —
        #: nobody alive to requeue them until recovery.
        self._orphaned: list[Task] = []
        #: Task registry for journal replay (task_id -> Task).
        self._tasks: dict[int, Task] = {}
        #: Optional :class:`~repro.sim.Network`: dispatches travel
        #: ``node_name -> machine.name`` and completion reports travel
        #: back, so a partition or gray failure between scheduler and
        #: workers loses them exactly like a crash would. Without one,
        #: both hops are instantaneous and lossless (the pre-network
        #: behavior, unchanged).
        self.network = network
        self.node_name = node_name
        #: How often a machine re-sends a completion report the network
        #: refused to carry.
        self.report_retry_s = report_retry_s
        #: ``report_retry=False`` is a deliberately plantable bug knob
        #: (for fault-injection campaigns): a lost completion report is
        #: never re-sent, so the task sits in ``_pending_reports``
        #: forever and the schedule never finishes — the liveness hole
        #: the campaign oracles exist to catch.
        self.report_retry = report_retry
        #: Optional callable ``Machine -> float`` multiplying each
        #: execution's runtime — the gray-failure hook
        #: (``lambda m: gray.service_factor(m.name)``).
        self.service_time_factor = service_time_factor
        #: Optional :class:`~repro.replication.fencing.FencingGate` (duck-
        #: typed): with one, every dispatch carries the control plane's
        #: term token and is admitted machine-side against the fenced
        #: floor, and every completion report carries the machine's
        #: witnessed floor and is admitted brain-side against the current
        #: term. ``None`` (the default) keeps both hops token-free — the
        #: single-brain behavior, unchanged.
        self.fencing = fencing
        if network is not None:
            network.add_node(node_name)
            for machine in cluster.machines:
                network.add_node(machine.name)
        #: First arrivals (bag tasks, unlocked workflow successors,
        #: :meth:`submit_task` calls). Requeues and restarts move tasks
        #: between rooms but never mint one, so at every instant
        #: ``submitted == finished + failed + ready + running + limbo
        #: + orphaned + unreported`` (the scheduler conservation law).
        self.submitted = 0
        #: Completion reports the network refused to carry home: the task
        #: is done on its machine (ground truth) but still believed
        #: running by the scheduler until a retry gets through.
        self._pending_reports: dict[int, tuple] = {}
        self.scheduler_crashes = 0
        #: Running dispatches a recovering scheduler re-adopted.
        self.readopted = 0
        #: Orphaned tasks a recovering scheduler requeued.
        self.orphans_requeued = 0
        #: Completions that happened during the outage, credited at recovery.
        self.recovered_completions = 0
        self._wake = env.event()
        self._done_submitting = False
        self._scheduler = env.process(self._schedule_loop())

    def _journal(self, kind: str, task: Task) -> None:
        if self.journal is not None and not self._crashed:
            self._tasks[task.task_id] = task
            self.journal.append(kind, {"task_id": task.task_id})

    @property
    def crashed(self) -> bool:
        """Whether the scheduler brain is currently fail-stopped."""
        return self._crashed

    @staticmethod
    def belief_from_record(record) -> Optional[tuple[int, str]]:
        """``(task_id, believed-state)`` of one journal record, or None.

        The single source of truth for how a journal record updates the
        believed-state map — :meth:`recover_scheduler` replays through
        it, and a replicated control plane's journal shipping applies the
        same function record-by-record to keep hot standbys warm.
        """
        state = _BELIEF_FROM_KIND.get(record.kind)
        if state is None:
            return None
        return record.payload["task_id"], state

    def _span_start(self, task: Task, machine: Machine) -> None:
        if self.tracer is not None:
            # Tag a per-simulator ordinal, not task.task_id: task ids come
            # from a process-global counter and would make traces depend
            # on what else ran in the process.
            ordinal = self._span_ordinals.setdefault(
                task.task_id, len(self._span_ordinals))
            self._spans[task.task_id] = self.tracer.start_span(
                "scheduling.task", task=ordinal,
                machine=machine.name, cores=task.cores)

    def _span_end(self, task: Task, status: str) -> None:
        span = self._spans.pop(task.task_id, None)
        if span is not None:
            self.tracer.end_span(span, status=status)

    # -- submission -----------------------------------------------------------
    def submit_jobs(self, jobs: Sequence[Job]) -> None:
        """Register jobs; their tasks arrive at their submit times."""
        self.jobs.extend(jobs)
        self.env.process(self._arrivals(sorted(jobs,
                                               key=lambda j: j.submit_time)))

    def _arrivals(self, jobs: Sequence[Job]):
        for job in jobs:
            delay = job.submit_time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            arrived = (job.ready_tasks() if isinstance(job, Workflow)
                       else job.tasks)
            self.ready.extend(arrived)
            self.submitted += len(arrived)
            for task in arrived:
                self._journal("submit", task)
            self._kick()
        self._done_submitting = True
        self._kick()
        return None

    def submit_task(self, task: Task) -> None:
        """Submit one task now (incremental, front-door-driven submission).

        Unlike :meth:`submit_jobs`, which registers a whole batch with its
        own arrival process, this admits tasks one at a time as an
        admission controller lets them through. Call
        :meth:`close_submissions` when the source dries up so
        ``all_done`` can become true.
        """
        if self._done_submitting:
            raise RuntimeError("submissions already closed")
        self.submitted += 1
        self.ready.append(task)
        self._journal("submit", task)
        self._kick()

    def close_submissions(self) -> None:
        """Declare that no further :meth:`submit_task` calls will come."""
        self._done_submitting = True
        self._kick()

    def _kick(self) -> None:
        if not self._wake.triggered:
            self._wake.succeed()

    # -- scheduling ----------------------------------------------------------
    @property
    def all_done(self) -> bool:
        return (self._done_submitting and not self.ready
                and not self.running and not self._limbo
                and not self._crashed and not self._unreported
                and not self._orphaned and not self._pending_reports)

    def _schedule_loop(self):
        while True:
            self._try_schedule()
            if self.all_done:
                return
            # Structural impossibility: no machine in the cluster is big
            # enough for a ready task even when completely empty. (A
            # merely-busy or temporarily-failed cluster is not flagged —
            # the task may fit later.)
            if (self._done_submitting and self.ready and not self.running
                    and all(not any(m.cores >= t.cores
                                    and m.memory_gb >= t.memory_gb
                                    for m in self.cluster.machines)
                            for t in self.ready)):
                raise RuntimeError(
                    f"{len(self.ready)} tasks can never be placed on this "
                    "cluster (too many cores or too much memory requested)")
            self._wake = self.env.event()
            yield self._wake

    def _earliest_head_start(self, head: Task) -> float:
        """Estimated earliest time the head task could start (for EASY)."""
        free = self.cluster.free_cores
        if free >= head.cores:
            return self.env.now
        releases = sorted(
            (start + (task.runtime_estimate or task.work), task.cores)
            for task_id, (task, machine, start) in self.running.items())
        for finish_est, cores in releases:
            free += cores
            if free >= head.cores:
                return max(finish_est, self.env.now)
        return float("inf")

    def _believed_free(self, machine: Machine) -> tuple[int, float]:
        """Free capacity per the scheduler's own books (health-aware mode).

        Sums the demands of tasks *it* placed on the machine — running or
        in dispatch limbo — rather than reading the machine's ground-truth
        allocations, which a crash wipes before any detector could know.
        """
        used_cores, used_mem = 0, 0.0
        for task, m, _ in self.running.values():
            if m is machine:
                used_cores += task.cores
                used_mem += task.memory_gb
        for task, m in self._limbo.values():
            if m is machine:
                used_cores += task.cores
                used_mem += task.memory_gb
        return machine.cores - used_cores, machine.memory_gb - used_mem

    def _first_fit(self, cores: int, memory_gb: float) -> Optional[Machine]:
        """Placement: omniscient when no detector, believed-state with one."""
        if self.health is None:
            return self.cluster.first_fit(cores, memory_gb)
        for machine in self.cluster.machines:
            if self.health.is_suspect(machine.name):
                continue
            free_cores, free_mem = self._believed_free(machine)
            if free_cores >= cores and free_mem >= memory_gb - 1e-9:
                return machine
        return None

    def _try_schedule(self) -> None:
        if self._crashed:
            return  # a dead scheduler dispatches nothing
        if self.pre_schedule is not None and self.ready:
            self.pre_schedule()
        # Hot loop: pre-bind everything stable across iterations (ready
        # mutates in place via _start; policy/env never change mid-call).
        ready = self.ready
        policy = self.policy
        env = self.env
        first_fit = self._first_fit
        start = self._start
        earliest_head_start = self._earliest_head_start
        allows_backfill = policy.allows_backfill()
        progress = True
        while progress:
            progress = False
            if not ready:
                return
            ordered = policy.order(ready, env.now)
            head = ordered[0]
            machine = first_fit(head.cores, head.memory_gb)
            if machine is not None:
                start(head, machine)
                progress = True
                continue
            if not allows_backfill:
                return
            # EASY backfill: run later tasks that fit now and (by
            # estimate) finish before the head could possibly start.
            shadow = earliest_head_start(head)
            window = shadow - env.now
            for task in ordered[1:]:
                estimate = task.runtime_estimate or task.work
                if estimate > window:
                    continue
                machine = first_fit(task.cores, task.memory_gb)
                if machine is not None:
                    start(task, machine)
                    progress = True
                    break
            if not progress:
                return

    def _start(self, task: Task, machine: Machine) -> None:
        self.ready.remove(task)
        self._journal("dispatch", task)
        if self.network is not None:
            fencing = self.fencing
            if fencing is None:
                verdict = self.network.send(self.node_name, machine.name,
                                            deliver=lambda: None,
                                            kind="dispatch")
                admitted = True
            else:
                token = fencing.dispatch_token()
                outcome: list = []
                verdict = self.network.send(
                    self.node_name, machine.name,
                    deliver=lambda m=machine.name, t=token:
                        outcome.append(fencing.admit_dispatch(m, t)),
                    kind="dispatch")
                admitted = not outcome or bool(outcome[0])
            if verdict in ("blocked", "dropped"):
                # The dispatch was lost in transit (partition, gray drop).
                # From the scheduler's seat this is indistinguishable from
                # dispatching to a dead machine: the task sits in limbo
                # until the dispatch timeout requeues it.
                task.state = TaskState.RUNNING
                self._limbo[task.task_id] = (task, machine)
                self.monitor.record("queue_length", len(self.ready))
                self._span_start(task, machine)
                self.env.process(self._misdispatch(task))
                return
            if not admitted:
                # The machine's fenced floor outranks our token: a deposed
                # brain's write, refused machine-side. No work starts; the
                # dispatch timeout paces the retry exactly like a
                # misdispatch (an instant requeue would spin the loop).
                self.monitor.count("fenced_dispatches")
                task.state = TaskState.RUNNING
                self._limbo[task.task_id] = (task, machine)
                self.monitor.record("queue_length", len(self.ready))
                self._span_start(task, machine)
                self.env.process(self._misdispatch(task))
                return
        if self.health is not None and not machine.is_up:
            # The detector has not suspected this machine yet, so the
            # scheduler believes it alive; the dispatch lands on a dead box
            # and is simply lost until the dispatch timeout notices.
            task.state = TaskState.RUNNING
            self._limbo[task.task_id] = (task, machine)
            self.monitor.record("queue_length", len(self.ready))
            self._span_start(task, machine)
            self.env.process(self._misdispatch(task))
            return
        machine.allocate(task.cores, task.memory_gb)
        task.state = TaskState.RUNNING
        task.start_time = self.env.now
        self.running[task.task_id] = (task, machine, self.env.now)
        self._incarnations[task.task_id] = machine.incarnation
        self.monitor.record("queue_length", len(self.ready))
        self._span_start(task, machine)
        self._procs[task.task_id] = self.env.process(
            self._execute(task, machine))

    def _misdispatch(self, task: Task):
        """A dispatch to a dead machine times out and requeues the task."""
        yield self.env.timeout(self.dispatch_timeout_s)
        self._limbo.pop(task.task_id, None)
        self.misdispatches += 1
        self.monitor.count("misdispatches")
        self._span_end(task, "misdispatch")
        task.state = TaskState.PENDING
        task.start_time = None
        if self._crashed:
            # Nobody is alive to notice the timeout; recovery requeues it.
            self._orphaned.append(task)
            return
        self.ready.append(task)
        self._journal("requeue", task)
        self._kick()

    def handle_machine_failure(self, machine: Machine) -> None:
        """Requeue every task running on a failed machine.

        Wire this as the :class:`repro.cluster.FailureInjector`'s
        ``on_failure`` callback. Victim tasks return to PENDING and
        restart from scratch elsewhere (the classic fail-restart model);
        the injector resets the machine's allocations on repair.
        """
        victims = [task for task, m, _ in self.running.values()
                   if m is machine]
        for task in victims:
            proc = self._procs.get(task.task_id)
            if proc is not None and proc.is_alive:
                proc.interrupt("machine-failure")

    def handle_machine_repair(self, machine: Machine) -> None:
        """Wake the scheduler: a repair freed capacity for queued work.

        Wire this as the failure injector's ``on_repair`` callback;
        without it, a schedule that drained to an all-down cluster would
        never notice the machines coming back.
        """
        self._kick()

    # -- scheduler crash-recovery ---------------------------------------------
    def crash_scheduler(self) -> None:
        """Fail-stop the scheduler itself (requires a journal).

        Tasks already running keep running — machines are a separate
        failure domain — but nothing new is dispatched, completion
        reports are lost until recovery, and machine-failure victims are
        orphaned instead of requeued.
        """
        if self.journal is None:
            raise RuntimeError("scheduler crash-recovery needs a journal")
        if self._crashed:
            raise RuntimeError("scheduler is already down")
        self._crashed = True
        self.scheduler_crashes += 1
        self.monitor.count("scheduler_crashes")
        # Reports still in network retry are now reports to a dead
        # scheduler: same fate as completions that race the crash. Drain
        # them into the unreported ledger so recovery reconciles them
        # (and the retry processes, finding their entries gone, exit).
        for task_id in sorted(self._pending_reports):
            task, runtime, _ = self._pending_reports.pop(task_id)
            self.running.pop(task_id, None)
            self._unreported.append((task, runtime))

    def recover_scheduler(self, believed: Optional[dict] = None,
                          restart_cost_s: Optional[float] = None):
        """Process: restart the scheduler and reconcile state via journal.

        Replays the journal's durable prefix to rebuild what the dead
        scheduler *believed* (ready / dispatched / done per task), then
        reconciles belief against the actual cluster:

        - a believed-running task still executing is **re-adopted** in
          place (no re-dispatch, no lost work);
        - a believed-running task that finished during the outage is
          credited as completed — completions are never lost, because the
          work itself survived the scheduler;
        - a believed-running task whose machine died during the outage is
          an **orphan**: requeued, exactly like PR 3's misdispatches.

        A replicated control plane promotes a hot standby by passing the
        ``believed`` map its shipped journal prefix already built (so no
        replay is paid) and the standby's ``restart_cost_s`` (a warm
        takeover, not a cold restart). Reconciliation is identical either
        way — that is the point: failover is recovery with the replay
        pre-paid.
        """
        if not self._crashed:
            raise RuntimeError("recover_scheduler() without a crash")
        cost = (self.scheduler_restart_cost_s if restart_cost_s is None
                else restart_cost_s)
        if cost > 0:
            yield self.env.timeout(cost)
        if believed is None:
            replay_s = self.journal.replay_time_s()
            records = self.journal.replay()
            if replay_s > 0:
                yield self.env.timeout(replay_s)
            believed = {}
            for record in records:
                entry = self.belief_from_record(record)
                if entry is not None:
                    believed[entry[0]] = entry[1]
        self._crashed = False
        still_running = set(self.running) | set(self._limbo)
        finished_ids = {t.task_id for t in self.finished}
        for task, runtime in self._unreported:
            # Completion raced the crash (or happened during the outage):
            # the work is done and stays done.
            self._report_completion(task, runtime)
            self.recovered_completions += 1
            finished_ids.add(task.task_id)
        self._unreported.clear()
        orphans, self._orphaned = self._orphaned, []
        for task in orphans:
            self.ready.append(task)
            self._journal("requeue", task)
            self.orphans_requeued += 1
            self.monitor.count("orphans_requeued")
        for task_id, state in believed.items():
            if state == "running":
                if task_id in still_running:
                    # The dispatch survived the outage: adopt, don't redo.
                    self.readopted += 1
                    self.monitor.count("readopted_dispatches")
                elif task_id not in finished_ids:
                    # Believed running, not on any machine, not finished:
                    # the dispatch evaporated with the crash (e.g. its
                    # completion record was lost and the journal has no
                    # later word). Requeue defensively.
                    task = self._tasks[task_id]
                    if (task not in self.ready
                            and task.state is not TaskState.DONE
                            and task.state is not TaskState.FAILED):
                        task.state = TaskState.PENDING
                        task.start_time = None
                        self.ready.append(task)
                        self._journal("requeue", task)
                        self.orphans_requeued += 1
                        self.monitor.count("orphans_requeued")
        self._kick()

    def _execute(self, task: Task, machine: Machine):
        from repro.sim import Interrupt
        runtime = machine.runtime_of(task.work)
        if self.service_time_factor is not None:
            # Gray-failure hook: a degraded machine still takes work and
            # still finishes it — just slower.
            runtime *= float(self.service_time_factor(machine))
        try:
            yield self.env.timeout(runtime)
        except Interrupt:
            # Machine failed under us; the crash already wiped the
            # machine's allocations (see Machine.fail), so no release.
            self.wasted_core_s += (self.env.now - task.start_time) * task.cores
            self.monitor.count("killed_executions")
            del self.running[task.task_id]
            del self._procs[task.task_id]
            self._incarnations.pop(task.task_id, None)
            if self.failure_mode == "drop":
                self._span_end(task, "dropped")
                task.state = TaskState.FAILED
                task.start_time = None
                self.failed.append(task)
                self._journal("drop", task)
            elif self._crashed:
                # A machine died while the scheduler was down: the victim
                # has no scheduler to requeue it — orphaned until recovery.
                self._span_end(task, "killed")
                task.state = TaskState.PENDING
                task.start_time = None
                self._orphaned.append(task)
            else:
                self._span_end(task, "killed")
                task.state = TaskState.PENDING
                task.start_time = None
                self.restarts += 1
                self.ready.append(task)
                self._journal("requeue", task)
            self._kick()
            return
        machine.release(task.cores, task.memory_gb,
                        incarnation=self._incarnations.pop(task.task_id, None))
        self.goodput_core_s += runtime * task.cores
        task.state = TaskState.DONE
        task.finish_time = self.env.now
        self._procs.pop(task.task_id, None)
        self._span_end(task, "ok")
        if self._crashed:
            # The task finished on its machine, but the completion report
            # went to a dead scheduler; recovery reconciles it — the task
            # is done (work is never redone), only the bookkeeping lags.
            del self.running[task.task_id]
            self._unreported.append((task, runtime))
            return
        if self.network is not None:
            if not self._send_report(machine):
                # The report was lost in transit (or refused by a fence-
                # aware brain as stale). Ground truth moved on (machine
                # freed, task DONE) but the scheduler still *believes*
                # the task is running: it stays in ``running`` and joins
                # the pending-reports ledger until a retry gets through —
                # the exact gap the reconciliation law audits.
                self.monitor.count("lost_reports")
                self._pending_reports[task.task_id] = (task, runtime,
                                                       machine)
                if self.report_retry:
                    self.env.process(self._report_later(task))
                return
        del self.running[task.task_id]
        self._report_completion(task, runtime)
        self.monitor.record("utilization", self.cluster.utilization)
        self._kick()

    def _send_report(self, machine: Machine) -> bool:
        """One completion-report hop home; True when the brain took it.

        Reads ``self.node_name`` fresh on every call, so a retry after a
        failover reaches the *new* leader. With a fencing gate, the
        report carries the machine's witnessed term floor and the brain
        refuses tokens below its current term (teaching the machine the
        live term for the next retry).
        """
        fencing = self.fencing
        if fencing is None:
            verdict = self.network.send(machine.name, self.node_name,
                                        deliver=lambda: None, kind="report")
            return verdict not in ("blocked", "dropped")
        token = fencing.report_token(machine.name)
        outcome: list = []
        verdict = self.network.send(
            machine.name, self.node_name,
            deliver=lambda m=machine.name, t=token:
                outcome.append(fencing.admit_report(m, t)),
            kind="report")
        if verdict in ("blocked", "dropped"):
            return False
        return not outcome or bool(outcome[0])

    def _report_later(self, task: Task):
        """Machine-side retry loop for a lost completion report."""
        while task.task_id in self._pending_reports:
            yield self.env.timeout(self.report_retry_s)
            entry = self._pending_reports.get(task.task_id)
            if entry is None:
                return  # a crash drained it into the unreported ledger
            _, runtime, machine = entry
            if not self._send_report(machine):
                continue
            del self._pending_reports[task.task_id]
            self.running.pop(task.task_id, None)
            self._report_completion(task, runtime)
            self.monitor.record("utilization", self.cluster.utilization)
            self._kick()
            return

    def _report_completion(self, task: Task, runtime: float) -> None:
        """Scheduler-side bookkeeping of one finished task."""
        self.finished.append(task)
        self._journal("complete", task)
        if isinstance(self.policy, FairSharePolicy):
            self.policy.charge(task.user, task.cores * runtime)
        # Unlock workflow successors.
        for job in self.jobs:
            if isinstance(job, Workflow) and job.job_id == task.job_id:
                for succ in job.ready_tasks():
                    if succ not in self.ready:
                        self.ready.append(succ)
                        self.submitted += 1
                        self._journal("submit", succ)
                break

    # -- metrics --------------------------------------------------------------
    def metrics(self) -> ScheduleMetrics:
        if not self.finished:
            raise RuntimeError("no finished tasks; run the simulation first")
        waits = np.array([t.wait_time for t in self.finished])
        responses = np.array([t.response_time for t in self.finished])
        runtimes = np.array([t.runtime for t in self.finished])
        slowdowns = np.maximum(
            responses / np.maximum(runtimes, SLOWDOWN_BOUND_S), 1.0)
        first_submit = min(t.submit_time for t in self.finished)
        makespan = max(t.finish_time for t in self.finished) - first_submit
        total_work = float(
            sum(t.cores * t.runtime for t in self.finished))
        capacity = self.cluster.total_cores * makespan if makespan else 1.0
        job_makespans = [j.makespan for j in self.jobs
                         if j.makespan is not None]
        settled = len(self.finished) + len(self.failed)
        return ScheduleMetrics(
            completed_fraction=len(self.finished) / settled if settled else 0.0,
            goodput_core_s=float(self.goodput_core_s),
            wasted_core_s=float(self.wasted_core_s),
            restarts=self.restarts,
            misdispatches=self.misdispatches,
            policy=self.policy.name,
            n_tasks=len(self.finished),
            mean_wait_s=float(waits.mean()),
            mean_response_s=float(responses.mean()),
            mean_bounded_slowdown=float(slowdowns.mean()),
            p95_bounded_slowdown=float(np.percentile(slowdowns, 95)),
            makespan_s=float(makespan),
            utilization=float(total_work / capacity),
            job_mean_makespan_s=float(np.mean(job_makespans))
            if job_makespans else float("nan"),
        )


def simulate_schedule(jobs: Sequence[Job], cluster: Cluster,
                      policy: Policy,
                      horizon_s: Optional[float] = None,
                      failure_mode: str = "requeue") -> ScheduleMetrics:
    """Run one complete schedule and return its metrics."""
    env = Environment()
    sim = ClusterSimulator(env, cluster, policy, failure_mode=failure_mode)
    sim.submit_jobs(list(jobs))
    if horizon_s is not None:
        env.run(until=horizon_s)
    else:
        env.run()
    return sim.metrics()
