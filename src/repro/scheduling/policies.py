"""Scheduling policies.

A policy orders the ready queue; the simulator then places tasks
first-fit in that order. :class:`BackfillPolicy` additionally allows
jumping the queue when doing so cannot delay the head task (EASY
backfilling with runtime estimates).

The Table 9 finding these implement: "no individual technique or policy
was consistently better than all others" — each policy's ordering is
optimal for a different workload shape.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.sim.rng import RandomStreams
from repro.workload.task import Task


class Policy:
    """Base: order the ready queue (most-urgent first)."""

    name = "abstract"

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        raise NotImplementedError

    def allows_backfill(self) -> bool:
        return False


class FCFSPolicy(Policy):
    """First-come first-served: by submit time."""

    name = "fcfs"

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        return sorted(queue, key=lambda t: (t.submit_time, t.task_id))


class SJFPolicy(Policy):
    """Shortest job first, by runtime *estimate* (which may be wrong —
    the [120] failure mode for big data workloads)."""

    name = "sjf"

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        return sorted(queue, key=lambda t: (
            t.runtime_estimate if t.runtime_estimate is not None else t.work,
            t.task_id))


class LJFPolicy(Policy):
    """Longest job first: good for utilization of big free blocks."""

    name = "ljf"

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        return sorted(queue, key=lambda t: (
            -(t.runtime_estimate if t.runtime_estimate is not None
              else t.work),
            t.task_id))


class RandomPolicy(Policy):
    """Uniformly random order — Altshuller's 'random design' baseline."""

    name = "random"

    def __init__(self, rng: Optional[np.random.Generator] = None):
        if rng is None:
            # Determinism contract: default onto a *named* stream rather
            # than an anonymous generator, so the fallback is reproducible
            # and isolated from every other stream (simlint SL001).
            rng = RandomStreams(0).get("scheduling.random-policy")
        self.rng = rng

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        queue = list(queue)
        idx = self.rng.permutation(len(queue))
        return [queue[int(i)] for i in idx]


class FairSharePolicy(Policy):
    """Least-served user first (by accumulated core-seconds)."""

    name = "fair-share"

    def __init__(self):
        self.usage: dict[str, float] = {}

    def charge(self, user: str, core_seconds: float) -> None:
        self.usage[user] = self.usage.get(user, 0.0) + core_seconds

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        return sorted(queue, key=lambda t: (
            self.usage.get(t.user, 0.0), t.submit_time, t.task_id))


class BackfillPolicy(Policy):
    """FCFS with EASY backfilling.

    Ordering is FCFS; ``allows_backfill`` tells the simulator it may run
    later tasks out of order when they fit now and their *estimated*
    runtime ends before the head task's earliest possible start.
    """

    name = "backfill"

    def order(self, queue: Sequence[Task], now: float) -> list[Task]:
        return sorted(queue, key=lambda t: (t.submit_time, t.task_id))

    def allows_backfill(self) -> bool:
        return True


#: Factory functions so every simulation gets fresh policy state.
POLICIES: dict[str, type] = {
    "fcfs": FCFSPolicy,
    "sjf": SJFPolicy,
    "ljf": LJFPolicy,
    "random": RandomPolicy,
    "fair-share": FairSharePolicy,
    "backfill": BackfillPolicy,
}


def make_policy(name: str,
                rng: Optional[np.random.Generator] = None) -> Policy:
    if name not in POLICIES:
        raise KeyError(f"unknown policy {name!r}; known: {sorted(POLICIES)}")
    if name == "random":
        return RandomPolicy(rng)
    return POLICIES[name]()
