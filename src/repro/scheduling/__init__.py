"""Datacenter scheduling and portfolio scheduling (paper §6.6, Table 9).

- :mod:`repro.scheduling.policies` — the scheduling policies a portfolio
  selects among: FCFS, SJF, LJF, Random, Fair-Share, and EASY-style
  backfilling;
- :mod:`repro.scheduling.simulator` — an event-driven cluster/job
  simulator executing bags-of-tasks and workflows under a policy, with
  the standard metrics (wait, response, bounded slowdown, utilization);
- :mod:`repro.scheduling.portfolio` — the portfolio scheduler: online
  simulation-based policy selection, the active-set limitation of [115],
  and the simulation-overhead accounting that motivated it;
- :mod:`repro.scheduling.experiments` — the Table 9 grid: workloads ×
  environments, portfolio vs. static policies.
"""

from repro.scheduling.policies import (
    POLICIES,
    BackfillPolicy,
    FairSharePolicy,
    FCFSPolicy,
    LJFPolicy,
    Policy,
    RandomPolicy,
    SJFPolicy,
)
from repro.scheduling.simulator import (
    ClusterSimulator,
    ScheduleMetrics,
    simulate_schedule,
)
from repro.scheduling.portfolio import (
    PortfolioScheduler,
    PortfolioConfig,
    PortfolioStats,
)
from repro.scheduling.learning import LearningPortfolioScheduler
from repro.scheduling.experiments import (
    ENVIRONMENTS,
    GridCell,
    run_table9_cell,
    run_table9_grid,
)

__all__ = [
    "BackfillPolicy",
    "ClusterSimulator",
    "ENVIRONMENTS",
    "FCFSPolicy",
    "FairSharePolicy",
    "GridCell",
    "LJFPolicy",
    "LearningPortfolioScheduler",
    "POLICIES",
    "Policy",
    "PortfolioConfig",
    "PortfolioScheduler",
    "PortfolioStats",
    "RandomPolicy",
    "SJFPolicy",
    "ScheduleMetrics",
    "run_table9_cell",
    "run_table9_grid",
    "simulate_schedule",
]
