"""The portfolio scheduler ([114], [115]).

At every decision epoch the portfolio scheduler *simulates* each candidate
policy on the current system state (queued + running tasks) and installs
the policy with the best predicted objective. Two phenomena from the
paper's studies are modelled explicitly:

- **online simulation cost** grows with #policies × system size — the
  [114] problem that made full portfolios too slow to run online;
- the **active set** ([115]): only the top-k recently-best policies are
  simulated each epoch (with periodic full refreshes), trading a little
  decision quality for bounded online cost.

Because the internal simulations use runtime *estimates*, domains with
poor estimates (big data, [120]) can mislead the selection — the paper's
open problem, reproducible here.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.scheduling.policies import Policy
from repro.scheduling.simulator import SLOWDOWN_BOUND_S, ClusterSimulator
from repro.sim import Environment


@dataclass
class PortfolioConfig:
    """Knobs of the portfolio scheduler."""

    decision_interval_s: float = 300.0
    #: Max policies simulated per epoch (None = the full portfolio).
    active_set_size: Optional[int] = None
    #: Every this many epochs, simulate the full portfolio regardless.
    full_refresh_epochs: int = 8
    #: Modeled cost of simulating one policy on one task (seconds of
    #: scheduler compute per task) — the online-overhead accounting.
    sim_cost_per_task_s: float = 0.002
    #: EWMA smoothing of per-policy predicted objectives.
    ewma_alpha: float = 0.4


@dataclass
class PortfolioStats:
    """What the portfolio did and what it cost."""

    selections: list[tuple[float, str]] = field(default_factory=list)
    policy_use_epochs: dict[str, int] = field(default_factory=dict)
    simulated_policy_epochs: int = 0
    total_sim_cost_s: float = 0.0
    switches: int = 0

    @property
    def epochs(self) -> int:
        return len(self.selections)


def predict_objective(policy: Policy,
                      queued: Sequence, running: Sequence[tuple[float, int]],
                      total_cores: int, now: float) -> float:
    """Fast list-schedule prediction of mean bounded slowdown.

    ``queued`` are Task-like objects (uses cores, submit_time, and
    runtime_estimate/work); ``running`` is (estimated_finish, cores)
    pairs. Placement ignores per-machine fragmentation — it is a
    *predictor*, deliberately cheaper than the real simulator.
    """
    heap = [(finish, cores) for finish, cores in running]
    heapq.heapify(heap)
    free = total_cores - sum(c for _, c in running)
    t = now
    total_slowdown = 0.0
    order = policy.order(list(queued), now)
    for task in order:
        estimate = task.runtime_estimate or task.work
        while free < task.cores and heap:
            finish, cores = heapq.heappop(heap)
            t = max(t, finish)
            free += cores
        if free < task.cores:
            # Even an empty system cannot host it; treat as unplaceable.
            total_slowdown += 1000.0
            continue
        start = t
        free -= task.cores
        heapq.heappush(heap, (start + estimate, task.cores))
        response = (start - task.submit_time) + estimate
        total_slowdown += max(
            response / max(estimate, SLOWDOWN_BOUND_S), 1.0)
    return total_slowdown / max(len(order), 1)


class PortfolioScheduler:
    """Drives a :class:`ClusterSimulator`'s policy by online simulation."""

    def __init__(self, env: Environment, simulator: ClusterSimulator,
                 portfolio: Sequence[Policy],
                 config: Optional[PortfolioConfig] = None):
        if not portfolio:
            raise ValueError("portfolio must contain at least one policy")
        names = [p.name for p in portfolio]
        if len(set(names)) != len(names):
            raise ValueError("duplicate policy names in portfolio")
        self.env = env
        self.simulator = simulator
        self.portfolio = list(portfolio)
        self.config = config or PortfolioConfig()
        self.stats = PortfolioStats()
        #: EWMA of predicted objectives (lower = better).
        self._scores: dict[str, float] = {p.name: 0.0 for p in portfolio}
        self._epoch = 0
        self._last_queue_size = -1
        # Re-select whenever the ready queue changes, not only on the
        # periodic epoch — "select the policy online, based on the
        # current system state".
        simulator.pre_schedule = self._on_queue_change
        self.process = env.process(self._run())

    def _on_queue_change(self) -> None:
        queue_size = len(self.simulator.ready)
        if queue_size == self._last_queue_size:
            return
        self._last_queue_size = queue_size
        self._epoch += 1
        self._select()

    def _candidates(self) -> list[Policy]:
        k = self.config.active_set_size
        if (k is None or k >= len(self.portfolio)
                or self._epoch % self.config.full_refresh_epochs == 0):
            return list(self.portfolio)
        ranked = sorted(self.portfolio,
                        key=lambda p: (self._scores[p.name], p.name))
        return ranked[:k]

    def _snapshot(self):
        queued = list(self.simulator.ready)
        running = [
            (start + (task.runtime_estimate or task.work), task.cores)
            for task, machine, start in self.simulator.running.values()
        ]
        return queued, running

    def _decide(self) -> Policy:
        queued, running = self._snapshot()
        candidates = self._candidates()
        system_size = len(queued) + len(running)
        best_policy = self.simulator.policy
        best_score = float("inf")
        for policy in candidates:
            score = predict_objective(
                policy, queued, running,
                self.simulator.cluster.total_cores, self.env.now)
            self.stats.simulated_policy_epochs += 1
            self.stats.total_sim_cost_s += (
                self.config.sim_cost_per_task_s * system_size)
            alpha = self.config.ewma_alpha
            self._scores[policy.name] = (
                alpha * score + (1 - alpha) * self._scores[policy.name])
            if score < best_score:
                best_score = score
                best_policy = policy
        return best_policy

    def _select(self) -> None:
        chosen = self._decide()
        if chosen.name != self.simulator.policy.name:
            self.stats.switches += 1
        self.simulator.policy = chosen
        self.stats.selections.append((self.env.now, chosen.name))
        self.stats.policy_use_epochs[chosen.name] = (
            self.stats.policy_use_epochs.get(chosen.name, 0) + 1)

    def _run(self):
        while True:
            self._epoch += 1
            self._select()
            self.simulator._kick()
            if self.simulator.all_done:
                return
            yield self.env.timeout(self.config.decision_interval_s)
