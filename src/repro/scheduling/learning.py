"""Learning-based portfolio selection (Ananke, the paper's [119]).

Ananke replaced simulation-based portfolio selection with Q-learning:
the scheduler *learns* which policy pays off in which system state from
realized rewards, instead of simulating every candidate each epoch.

Here: an epsilon-greedy contextual bandit over a coarse state (queue
pressure), rewarded with the negative realized bounded slowdown of tasks
finished since the previous epoch. Compared against the simulation-based
portfolio it trades a learning period for near-zero per-epoch cost —
the [119] motivation (industrial workflows ran the selector continuously,
so simulation cost mattered).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.scheduling.policies import Policy
from repro.scheduling.simulator import SLOWDOWN_BOUND_S, ClusterSimulator
from repro.sim import Environment, RandomStreams


def queue_pressure_state(simulator: ClusterSimulator,
                         levels: Sequence[int] = (0, 4, 16, 64)) -> int:
    """Coarse system state: index of the queue-length bucket."""
    queue = len(simulator.ready)
    state = 0
    for idx, threshold in enumerate(levels):
        if queue >= threshold:
            state = idx
    return state


@dataclass
class BanditStats:
    selections: list[tuple[float, str]] = field(default_factory=list)
    rewards: list[float] = field(default_factory=list)
    explorations: int = 0
    switches: int = 0

    @property
    def epochs(self) -> int:
        return len(self.selections)


class LearningPortfolioScheduler:
    """Epsilon-greedy policy selection from realized rewards.

    Q[state][policy] is updated with the mean realized bounded slowdown
    of tasks that finished during the epoch the policy was active
    (negated: higher reward = lower slowdown).
    """

    def __init__(self, env: Environment, simulator: ClusterSimulator,
                 portfolio: Sequence[Policy],
                 epoch_s: float = 300.0,
                 epsilon: float = 0.15,
                 learning_rate: float = 0.3,
                 n_states: int = 4,
                 rng: Optional[np.random.Generator] = None):
        if not portfolio:
            raise ValueError("portfolio must not be empty")
        if not 0 <= epsilon <= 1:
            raise ValueError("epsilon must be in [0, 1]")
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        self.env = env
        self.simulator = simulator
        self.portfolio = list(portfolio)
        self.epoch_s = epoch_s
        self.epsilon = epsilon
        self.learning_rate = learning_rate
        # Named-stream fallback keeps exploration reproducible and isolated
        # from every other stream (determinism contract, simlint SL001).
        self.rng = (rng if rng is not None
                    else RandomStreams(0).get("scheduling.bandit"))
        self.q: dict[tuple[int, str], float] = {
            (state, policy.name): 0.0
            for state in range(n_states) for policy in portfolio
        }
        self.stats = BanditStats()
        self._finished_seen = 0
        self._last: Optional[tuple[int, str]] = None
        self.process = env.process(self._run())

    def _reward_since_last_epoch(self) -> Optional[float]:
        new_tasks = self.simulator.finished[self._finished_seen:]
        self._finished_seen = len(self.simulator.finished)
        if not new_tasks:
            return None
        slowdowns = [
            max(t.response_time / max(t.runtime, SLOWDOWN_BOUND_S), 1.0)
            for t in new_tasks
        ]
        return -float(np.mean(slowdowns))

    def _choose(self, state: int) -> Policy:
        if self.rng.random() < self.epsilon:
            self.stats.explorations += 1
            return self.portfolio[int(self.rng.integers(
                0, len(self.portfolio)))]
        return max(self.portfolio,
                   key=lambda p: (self.q[(state, p.name)], p.name))

    def _run(self):
        while True:
            # Learn from the epoch that just ended.
            if self._last is not None:
                reward = self._reward_since_last_epoch()
                if reward is not None:
                    old = self.q[self._last]
                    self.q[self._last] = old + self.learning_rate * (
                        reward - old)
                    self.stats.rewards.append(reward)
            state = queue_pressure_state(self.simulator)
            chosen = self._choose(state)
            if chosen.name != self.simulator.policy.name:
                self.stats.switches += 1
            self.simulator.policy = chosen
            self.stats.selections.append((self.env.now, chosen.name))
            self._last = (state, chosen.name)
            self.simulator._kick()
            if self.simulator.all_done:
                return
            yield self.env.timeout(self.epoch_s)

    def best_policy_for(self, state: int) -> str:
        """The currently-learned best policy in a state."""
        return max(self.portfolio,
                   key=lambda p: (self.q[(state, p.name)], p.name)).name
