"""Brownout: graceful degradation through explicit service modes.

Instead of the binary up/down the paper's availability discussions warn
against, a browned-out service moves through NORMAL → DEGRADED → CRITICAL
as observed pressure (utilization, queue delay, backlog — the caller
chooses the signal) rises, shedding optional work first and essential work
last, and recovers through the same ladder with hysteresis so it does not
flap at a threshold.

Domains register degradation hooks per mode (e.g. the MMOG sheds
non-essential world updates on entering DEGRADED; the FaaS platform stops
paying for cold starts); the controller keeps the time-in-mode accounting
the chaos harness reports.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional


class ServiceMode(enum.Enum):
    """Operating mode of a browned-out service (ordered by severity)."""

    NORMAL = 0
    DEGRADED = 1
    CRITICAL = 2

    def __lt__(self, other: "ServiceMode") -> bool:
        if not isinstance(other, ServiceMode):
            return NotImplemented
        return self.value < other.value


#: Hook signature: (old_mode, new_mode, time_of_transition).
TransitionHook = Callable[[ServiceMode, ServiceMode, float], None]


class BrownoutController:
    """A hysteresis mode machine over a scalar pressure signal.

    ``observe(pressure, now)`` accrues time-in-mode and applies the
    transition rules:

    - NORMAL escalates to DEGRADED at ``degraded_enter`` and straight to
      CRITICAL at ``critical_enter``;
    - DEGRADED escalates at ``critical_enter``, relaxes below
      ``degraded_exit``;
    - CRITICAL relaxes below ``critical_exit`` (to DEGRADED, or directly
      to NORMAL if pressure already cleared ``degraded_exit``).

    Exits sit strictly below their enters, so a signal hovering at a
    threshold cannot flap the mode. The controller is sim-agnostic: it
    never reads a clock, the caller passes ``now`` (simulated seconds or a
    step index — any monotone scale).
    """

    def __init__(self, degraded_enter: float = 0.8,
                 degraded_exit: float = 0.6,
                 critical_enter: float = 0.95,
                 critical_exit: float = 0.8,
                 now: float = 0.0, name: str = "brownout"):
        if not degraded_exit < degraded_enter:
            raise ValueError("degraded_exit must be < degraded_enter")
        if not critical_exit < critical_enter:
            raise ValueError("critical_exit must be < critical_enter")
        if not degraded_enter <= critical_enter:
            raise ValueError("degraded_enter must be <= critical_enter")
        self.degraded_enter = degraded_enter
        self.degraded_exit = degraded_exit
        self.critical_enter = critical_enter
        self.critical_exit = critical_exit
        self.name = name
        self.mode = ServiceMode.NORMAL
        self.transitions = 0
        self.time_in_mode: dict[ServiceMode, float] = {
            mode: 0.0 for mode in ServiceMode}
        self._mode_since = now
        self._last_now = now
        self._hooks: dict[ServiceMode, list[TransitionHook]] = {
            mode: [] for mode in ServiceMode}

    def register_hook(self, mode: ServiceMode, hook: TransitionHook) -> None:
        """Call ``hook(old, new, now)`` whenever ``mode`` is entered."""
        self._hooks[mode].append(hook)

    def _target_mode(self, pressure: float) -> ServiceMode:
        mode = self.mode
        if mode is ServiceMode.NORMAL:
            if pressure >= self.critical_enter:
                return ServiceMode.CRITICAL
            if pressure >= self.degraded_enter:
                return ServiceMode.DEGRADED
            return mode
        if mode is ServiceMode.DEGRADED:
            if pressure >= self.critical_enter:
                return ServiceMode.CRITICAL
            if pressure < self.degraded_exit:
                return ServiceMode.NORMAL
            return mode
        # CRITICAL
        if pressure < self.critical_exit:
            if pressure < self.degraded_exit:
                return ServiceMode.NORMAL
            return ServiceMode.DEGRADED
        return mode

    def observe(self, pressure: float, now: float) -> ServiceMode:
        """Feed one pressure sample; returns the (possibly new) mode."""
        if now < self._last_now:
            raise ValueError(
                f"time went backwards: {self._last_now} -> {now}")
        self.time_in_mode[self.mode] += now - self._mode_since
        self._mode_since = now
        self._last_now = now
        new = self._target_mode(pressure)
        if new is not self.mode:
            old, self.mode = self.mode, new
            self.transitions += 1
            for hook in self._hooks[new]:
                hook(old, new, now)
        return self.mode

    def finish(self, now: float) -> None:
        """Close the time-in-mode accounting at the end of a run."""
        if now < self._last_now:
            raise ValueError(
                f"time went backwards: {self._last_now} -> {now}")
        self.time_in_mode[self.mode] += now - self._mode_since
        self._mode_since = now
        self._last_now = now

    def time_in(self, mode: ServiceMode) -> float:
        return self.time_in_mode[mode]

    def degraded_time_s(self) -> float:
        """Total time spent out of NORMAL (the headline brownout metric)."""
        return (self.time_in_mode[ServiceMode.DEGRADED]
                + self.time_in_mode[ServiceMode.CRITICAL])
