"""System-level self-protection: detect, admit, degrade.

PR 1 (:mod:`repro.faults`) gave every domain fault *injection* and
per-request resilience (retry, timeout, breaker, hedge). This package is
the *system-level* response side the paper's Principles P3/P4 call for —
dynamic non-functional properties managed through monitoring, not assumed:

- **failure detection** (:mod:`repro.resilience.detection`) — heartbeat
  emitters and a phi-accrual detector, so components suspect failures with
  measurable latency and false-positive rates instead of reading the
  simulator's ground truth;
- **admission control** (:mod:`repro.resilience.admission`) — a token
  bucket and a CoDel-style queue-delay shedder for any service front door;
- **brownout** (:mod:`repro.resilience.brownout`) — a NORMAL → DEGRADED →
  CRITICAL mode machine with hysteresis and per-domain degradation hooks.

The bounded-queue primitive these build on lives in the kernel
(:class:`repro.sim.BoundedQueue`), since backpressure is a property of the
queueing substrate, not of any one domain. Domain wirings: the serverless
platform sheds at ``invoke()``, the cluster scheduler avoids suspected
machines, the P2P tracker believes heartbeats instead of ground truth, and
the MMOG browns out world updates before refusing players. The chaos
harness (:mod:`repro.faults.chaos`) measures all of it: goodput, shed
rate, detection latency, false-suspicion rate, time-in-degraded-mode.
"""

from repro.resilience.admission import CoDelShedder, TokenBucketAdmitter
from repro.resilience.brownout import BrownoutController, ServiceMode
from repro.resilience.detection import (
    PHI_MAX,
    HeartbeatEmitter,
    PhiAccrualDetector,
)

__all__ = [
    "BrownoutController",
    "CoDelShedder",
    "HeartbeatEmitter",
    "PHI_MAX",
    "PhiAccrualDetector",
    "ServiceMode",
    "TokenBucketAdmitter",
]
