"""Admission control and load shedding at a service front door.

Overload is the failure mode the paper's north-star scenarios ("heavy
traffic from millions of users") make unavoidable: when offered load
exceeds capacity, *something* gives. These primitives make the something a
policy decision instead of an accident:

- :class:`TokenBucketAdmitter` — classic rate limiting with a burst
  allowance: admit work at a sustainable rate, shed the excess at the
  door where it is cheapest;
- :class:`CoDelShedder` — CoDel-style (Nichols & Jacobson, 2012)
  queue-delay shedding: tolerate short bursts, but once queueing delay has
  stayed above the target for a full interval, shed at an increasing rate
  until the standing queue drains.

Both are deterministic (no RNG): given the same arrival times they make
the same decisions, which keeps overload scenarios bit-reproducible
(Challenge C3).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.sim import Environment

#: Tolerance for token comparisons (tokens accumulate float error).
_EPS = 1e-9


class TokenBucketAdmitter:
    """Admit up to ``rate_per_s`` requests sustained, ``burst`` in a spike.

    Tokens refill continuously at ``rate_per_s`` up to ``burst``; each
    admitted request spends ``cost`` tokens. A request arriving to an
    empty bucket is shed — not queued — so the admitter bounds the rate
    entering the system rather than hiding overload in a backlog.
    """

    def __init__(self, env: Environment, rate_per_s: float,
                 burst: float = 1.0, name: str = "admitter"):
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if burst < 1.0:
            raise ValueError("burst must be >= 1")
        self.env = env
        self.rate_per_s = rate_per_s
        self.burst = float(burst)
        self.name = name
        self._tokens = float(burst)
        self._refilled_at = env.now
        self.admitted = 0
        self.shed = 0

    def _refill(self) -> None:
        now = self.env.now
        if now > self._refilled_at:
            self._tokens = min(self.burst, self._tokens
                               + (now - self._refilled_at) * self.rate_per_s)
            self._refilled_at = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def admit(self, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens if available; False means shed."""
        if cost <= 0:
            raise ValueError("cost must be positive")
        self._refill()
        if self._tokens + _EPS >= cost:
            self._tokens -= cost
            self.admitted += 1
            return True
        self.shed += 1
        return False

    @property
    def shed_rate(self) -> float:
        total = self.admitted + self.shed
        return self.shed / total if total else 0.0


class CoDelShedder:
    """Queue-delay-controlled shedding (the CoDel control law).

    Feed it the queueing delay of each request as it is dequeued
    (``should_shed(delay)``). While delays stay below ``target_s`` nothing
    is shed. Once the delay has remained above target for a full
    ``interval_s``, the shedder enters dropping mode: it sheds the current
    head and schedules the next shed ``interval_s / sqrt(n)`` later, so the
    shedding rate ramps up until the standing queue dissolves. Any dip
    below target resets the state — short bursts pass untouched.
    """

    def __init__(self, env: Environment, target_s: float = 0.05,
                 interval_s: float = 1.0, name: str = "codel"):
        if target_s <= 0 or interval_s <= 0:
            raise ValueError("target_s and interval_s must be positive")
        self.env = env
        self.target_s = target_s
        self.interval_s = interval_s
        self.name = name
        #: Time the delay first exceeded target (None = below target).
        self._above_since: Optional[float] = None
        self._dropping = False
        self._drop_next = 0.0
        self._drop_count = 0
        self.evaluated = 0
        self.shed = 0

    @property
    def dropping(self) -> bool:
        return self._dropping

    def should_shed(self, queue_delay_s: float) -> bool:
        """Judge one dequeued request; True means shed it, don't serve it."""
        self.evaluated += 1
        now = self.env.now
        if queue_delay_s < self.target_s:
            self._above_since = None
            self._dropping = False
            self._drop_count = 0
            return False
        if self._above_since is None:
            self._above_since = now
            return False
        if not self._dropping:
            if now - self._above_since >= self.interval_s:
                # Sustained standing queue: start shedding, head first.
                self._dropping = True
                self._drop_count = 1
                self._drop_next = (now + self.interval_s
                                   / math.sqrt(self._drop_count))
                self.shed += 1
                return True
            return False
        if now >= self._drop_next:
            self._drop_count += 1
            self._drop_next = now + self.interval_s / math.sqrt(
                self._drop_count)
            self.shed += 1
            return True
        return False
