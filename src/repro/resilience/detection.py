"""Failure detection: heartbeats and phi-accrual suspicion.

The paper's Principle P4 makes RM&S-driven self-awareness a design
obligation, and its companion vision names imperfect failure information a
defining ecosystem phenomenon: real components never *know* a peer died —
they *suspect* it, after a detection latency, with a false-positive risk.
This module provides that imperfect knowledge as seeded sim processes:

- :class:`HeartbeatEmitter` — one component's periodic "I am alive"
  signal, jittered from a named RNG stream, silenced while the target is
  down;
- :class:`PhiAccrualDetector` — the phi-accrual failure detector (Hayashibara
  et al., 2004): suspicion is a continuous scale ``phi = -log10 P(alive)``
  derived from the observed heartbeat inter-arrival distribution, thresholded
  into a binary suspect/trust verdict.

The detector counts its own quality metrics without ground truth: a
suspicion later cleared by a heartbeat from the same target was, by
definition, false. Detection latency against ground truth is measured by
the harness (:mod:`repro.faults.chaos`), which knows when it crashed what.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable, Optional

import numpy as np

from repro.sim import Environment, Monitor

_SQRT2 = math.sqrt(2.0)

#: Cap on phi so that an underflowing tail probability stays finite.
PHI_MAX = 300.0


class HeartbeatEmitter:
    """Periodic heartbeats from one component to a detector.

    Runs as a sim process: every ``interval_s`` (jittered by the named RNG
    stream, so two emitters never phase-lock) it delivers a heartbeat to the
    detector — unless ``is_up`` says the component is down, in which case
    the beat is silently skipped (a crashed component cannot announce its
    own death; the detector must infer it from the silence).

    An emitter with ``jitter > 0`` — the default — *requires* an rng:
    jitter exists to de-synchronize emitters, and silently skipping it
    (the old behavior) ran phase-locked heartbeats while reporting a
    jittered configuration — the same trap
    :meth:`repro.faults.policies.RetryPolicy.backoff_s` closed. Callers
    that genuinely want metronome beats must say so with ``jitter=0.0``.
    """

    def __init__(self, env: Environment, detector: "PhiAccrualDetector",
                 key: Any, interval_s: float,
                 rng: Optional[np.random.Generator] = None,
                 jitter: float = 0.1,
                 is_up: Optional[Callable[[], bool]] = None,
                 network=None, src: Optional[str] = None,
                 dst: Optional[str] = None):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if jitter > 0 and rng is None:
            raise ValueError(
                "jitter > 0 requires a named rng stream "
                "(RandomStreams.get); pass jitter=0.0 explicitly for "
                "unjittered beats")
        if network is not None and (src is None or dst is None):
            raise ValueError("network routing needs src and dst node names")
        self.env = env
        self.detector = detector
        self.key = key
        self.interval_s = interval_s
        self.rng = rng
        self.jitter = jitter
        self._is_up = is_up
        #: Optional :class:`~repro.sim.Network`: beats become
        #: ``kind="heartbeat"`` messages from ``src`` to ``dst``, so a
        #: partition silences this emitter exactly like a crash would —
        #: from the detector's seat the two are indistinguishable, which
        #: is the phenomenon the partition studies measure.
        self.network = network
        self.src = src
        self.dst = dst
        self.sent = 0
        self.suppressed = 0
        #: Beats the network blocked or dropped in transit.
        self.lost = 0
        detector.register(key, interval_s)
        self._proc = env.process(self._beat())

    def _beat(self):
        while True:
            delay = self.interval_s
            if self.jitter > 0:  # rng presence enforced at construction
                delay *= 1.0 + self.jitter * (2.0 * float(self.rng.random())
                                              - 1.0)
            yield self.env.timeout(delay)
            if not (self._is_up is None or self._is_up()):
                self.suppressed += 1
                continue
            if self.network is None:
                self.sent += 1
                self.detector.heartbeat(self.key)
                continue
            verdict = self.network.send(
                self.src, self.dst,
                deliver=lambda: self.detector.heartbeat(self.key),
                kind="heartbeat")
            if verdict in ("delivered", "in_flight"):
                self.sent += 1
            else:
                self.lost += 1


class PhiAccrualDetector:
    """Phi-accrual failure detection over heartbeat arrivals.

    For each registered key the detector keeps a sliding window of
    heartbeat inter-arrival times; ``phi(key)`` is ``-log10`` of the
    probability that a heartbeat is merely late (normal tail), so phi grows
    without bound while a target stays silent. ``is_suspect`` thresholds
    phi and records suspicion onsets; a heartbeat arriving from a suspected
    key clears the suspicion and books it as false.

    An optional poll process (``poll_interval_s``) re-evaluates every key
    periodically so suspicion onsets are recorded with bounded latency even
    when nobody queries the detector — and so detection latency is a
    measurable property of the configuration, not of the caller's luck.
    """

    #: Extra std (as a fraction of the mean interval) granted while a key
    #: has fewer than ``min_samples`` real heartbeats: the primed window
    #: is a guess, not evidence, so suspicion needs a wider margin until
    #: the guess decays into observations.
    PRIME_STD_FACTOR = 0.5

    def __init__(self, env: Environment, threshold: float = 8.0,
                 window: int = 32, min_std_s: float = 0.1,
                 poll_interval_s: Optional[float] = None,
                 min_samples: int = 3,
                 variance_cv: float = 0.35,
                 monitor: Optional[Monitor] = None,
                 name: str = "phi"):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if window < 1:
            raise ValueError("window must be >= 1")
        if poll_interval_s is not None and poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if variance_cv <= 0:
            raise ValueError("variance_cv must be positive")
        self.env = env
        self.threshold = threshold
        self.window = window
        self.min_std_s = min_std_s
        #: Real heartbeats required before the prime-decay guard lifts.
        self.min_samples = min_samples
        #: Coefficient-of-variation boundary of :meth:`suspect_reason`:
        #: onsets over a window noisier than this are tagged
        #: ``"variance"`` (the source's own jitter inflated phi), calmer
        #: ones ``"silence"`` (a regular source simply went quiet — the
        #: partition/crash signature).
        self.variance_cv = variance_cv
        self.monitor = monitor
        self.name = name
        self._intervals: dict[Any, deque] = {}
        self._last: dict[Any, float] = {}
        #: Real (non-primed) heartbeats observed per key.
        self._observed: dict[Any, int] = {}
        #: Onset time of each currently-standing suspicion.
        self._suspected_at: dict[Any, float] = {}
        #: Reason tag of each currently-standing suspicion.
        self._suspect_reasons: dict[Any, str] = {}
        #: Every suspicion onset, as (key, onset_time, reason) in onset
        #: order.
        self.suspicion_log: list[tuple[Any, float, str]] = []
        self.heartbeats = 0
        self.suspicions = 0
        #: Onset counts per reason tag (all-time, never decremented).
        self.suspicions_by_reason: dict[str, int] = {"silence": 0,
                                                     "variance": 0}
        #: Suspicions later cleared by a heartbeat (wrongly accused).
        self.false_suspicions = 0
        if poll_interval_s is not None:
            env.process(self._poll(poll_interval_s))

    # -- observation -------------------------------------------------------
    def register(self, key: Any, expected_interval_s: float) -> None:
        """Start tracking ``key``, priming the window with the expected
        interval so phi is meaningful from the first silence onward."""
        if expected_interval_s <= 0:
            raise ValueError("expected_interval_s must be positive")
        if key not in self._intervals:
            self._intervals[key] = deque([expected_interval_s],
                                         maxlen=self.window)
            self._last[key] = self.env.now
            self._observed[key] = 0

    def heartbeat(self, key: Any) -> None:
        """One heartbeat from ``key`` arrived now."""
        if key not in self._intervals:
            raise KeyError(f"unregistered heartbeat source {key!r}")
        now = self.env.now
        self.heartbeats += 1
        self._intervals[key].append(now - self._last[key])
        self._last[key] = now
        self._observed[key] = self._observed.get(key, 0) + 1
        onset = self._suspected_at.pop(key, None)
        self._suspect_reasons.pop(key, None)
        if onset is not None:
            # It spoke again: the suspicion was false.
            self.false_suspicions += 1
            if self.monitor is not None:
                self.monitor.count(f"{self.name}_false_suspicions", key=key)

    # -- judgment ----------------------------------------------------------
    def _window_stats(self, key: Any) -> tuple[float, float]:
        """(mean, guarded std) of the key's inter-arrival window.

        While fewer than ``min_samples`` real heartbeats have arrived,
        the std is widened by a decaying prime guard — the registered
        interval is an expectation, not a measurement, and total silence
        from registration must not look sharper than it is. The guard
        shrinks linearly with each real observation and vanishes at
        ``min_samples``, so it delays early suspicion without ever
        preventing it.
        """
        samples = self._intervals[key]
        mean = sum(samples) / len(samples)
        if len(samples) > 1:
            var = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
            std = max(math.sqrt(var), self.min_std_s)
        else:
            std = max(self.min_std_s, 0.1 * mean)
        observed = self._observed.get(key, 0)
        if observed < self.min_samples:
            decay = (self.min_samples - observed) / self.min_samples
            std = max(std, self.PRIME_STD_FACTOR * mean * decay)
        return mean, std

    def phi(self, key: Any) -> float:
        """Current suspicion level of ``key`` (0 = just heard from it)."""
        elapsed = self.env.now - self._last[key]
        mean, std = self._window_stats(key)
        p_late = 0.5 * math.erfc((elapsed - mean) / (std * _SQRT2))
        if p_late <= 0.0:
            return PHI_MAX
        return min(-math.log10(p_late), PHI_MAX)

    def _classify(self, key: Any) -> str:
        """Why phi crossed the threshold: ``"silence"`` or ``"variance"``.

        A regular source (window CV at or below ``variance_cv``) that
        stops beating is *silent* — the crash/partition signature. A
        source whose own window is noisier than that earned its phi
        partly through variance — the slow/flaky gray signature. A key
        never heard from at all is silent by definition.
        """
        if self._observed.get(key, 0) == 0:
            return "silence"
        mean, std = self._window_stats(key)
        if mean <= 0:
            return "variance"
        return "silence" if std <= self.variance_cv * mean else "variance"

    def is_suspect(self, key: Any) -> bool:
        """Whether ``key`` is currently suspected (recording the onset)."""
        if key not in self._intervals:
            return False
        if key in self._suspected_at:
            return True
        if self.phi(key) >= self.threshold:
            reason = self._classify(key)
            self._suspected_at[key] = self.env.now
            self._suspect_reasons[key] = reason
            self.suspicions += 1
            self.suspicions_by_reason[reason] += 1
            self.suspicion_log.append((key, self.env.now, reason))
            if self.monitor is not None:
                self.monitor.count(f"{self.name}_suspicions", key=key)
                self.monitor.count(f"{self.name}_suspicions_{reason}")
            return True
        return False

    def suspect_reason(self, key: Any) -> Optional[str]:
        """Reason tag of the standing suspicion of ``key``, if any."""
        return self._suspect_reasons.get(key)

    def suspected_at(self, key: Any) -> Optional[float]:
        """Onset time of the standing suspicion of ``key``, if any."""
        return self._suspected_at.get(key)

    def suspects(self) -> list[Any]:
        """Currently suspected keys, in suspicion-onset order."""
        return sorted(self._suspected_at,
                      key=lambda k: (self._suspected_at[k], str(k)))

    def detection_latency_s(self, key: Any,
                            failed_at: float) -> Optional[float]:
        """Ground-truth helper: time from a known failure to suspicion."""
        onset = self._suspected_at.get(key)
        if onset is None or onset < failed_at:
            return None
        return onset - failed_at

    def _poll(self, interval_s: float):
        while True:
            yield self.env.timeout(interval_s)
            for key in sorted(self._intervals, key=str):
                self.is_suspect(key)
