"""Tribler-style social P2P: friends power collaborative downloads ([69]).

Tribler was "the first socially aware P2P system"; 2fast was one of its
three pillars. The social layer's job for downloads: when a member wants
content, recruit *idle online friends* as 2fast helpers. This module
models the social overlay (friendship graph + online/idle state) and the
helper-recruitment policy, and quantifies the [69] effect: download
speedup grows with the size and availability of one's social circle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import networkx as nx
import numpy as np

from repro.p2p.peer import PEER_CLASSES, PeerClass
from repro.p2p.twofast import collector_rate_mbps


@dataclass
class SocialPeer:
    """A member of the social overlay."""

    name: str
    peer_class: PeerClass
    online: bool = True
    #: A busy friend is downloading for itself and cannot help.
    busy: bool = False

    @property
    def can_help(self) -> bool:
        return self.online and not self.busy


class SocialOverlay:
    """The friendship graph with member state."""

    def __init__(self):
        self.graph = nx.Graph()
        self.members: dict[str, SocialPeer] = {}

    def add_member(self, peer: SocialPeer) -> SocialPeer:
        if peer.name in self.members:
            raise ValueError(f"member {peer.name!r} already present")
        self.members[peer.name] = peer
        self.graph.add_node(peer.name)
        return peer

    def befriend(self, a: str, b: str) -> None:
        if a not in self.members or b not in self.members:
            raise KeyError("both members must exist")
        if a == b:
            raise ValueError("cannot befriend oneself")
        self.graph.add_edge(a, b)

    def friends_of(self, name: str) -> list[SocialPeer]:
        if name not in self.members:
            raise KeyError(name)
        return [self.members[f] for f in sorted(self.graph.neighbors(name))]

    def recruit_helpers(self, collector: str,
                        max_helpers: int = 8) -> list[SocialPeer]:
        """Idle online friends, best upload links first — the incentive
        that 'does not need immediate repay' makes them willing."""
        available = [f for f in self.friends_of(collector) if f.can_help]
        available.sort(key=lambda p: (-p.peer_class.upload_kbps, p.name))
        return available[:max_helpers]

    def download_rate_mbps(self, collector: str,
                           max_helpers: int = 8,
                           reciprocity: float = 1.0,
                           seed_altruism_kbps: float = 32.0) -> float:
        """The collector's achievable rate with recruited friends.

        Helpers contribute their own upload capacity (they may differ in
        class); the result is capped by the collector's download link.
        """
        member = self.members[collector]
        helpers = self.recruit_helpers(collector, max_helpers)
        group_upload = member.peer_class.upload_kbps + sum(
            h.peer_class.upload_kbps for h in helpers)
        earned = group_upload * reciprocity + seed_altruism_kbps
        return min(earned, member.peer_class.download_kbps) / 1024.0

    def social_speedup(self, collector: str,
                       max_helpers: int = 8) -> float:
        """Download-rate gain over going solo."""
        solo = collector_rate_mbps(self.members[collector].peer_class, 0)
        social = self.download_rate_mbps(collector, max_helpers)
        return social / solo


def build_overlay(rng: np.random.Generator,
                  n_members: int = 100,
                  mean_friends: int = 6,
                  online_fraction: float = 0.6,
                  busy_fraction: float = 0.3,
                  peer_class_name: str = "adsl") -> SocialOverlay:
    """A Watts-Strogatz friendship overlay with realistic availability."""
    if n_members < 3:
        raise ValueError("need at least 3 members")
    overlay = SocialOverlay()
    for i in range(n_members):
        overlay.add_member(SocialPeer(
            name=f"m{i:03d}",
            peer_class=PEER_CLASSES[peer_class_name],
            online=bool(rng.random() < online_fraction),
            busy=bool(rng.random() < busy_fraction)))
    friendship = nx.watts_strogatz_graph(
        n_members, k=max(2, mean_friends), p=0.2,
        seed=int(rng.integers(2**31)))
    for a, b in friendship.edges:
        overlay.befriend(f"m{a:03d}", f"m{b:03d}")
    return overlay


def social_circle_study(rng: np.random.Generator,
                        circle_sizes: Sequence[int] = (0, 2, 4, 8, 16),
                        peer_class_name: str = "adsl",
                        online_fraction: float = 0.6,
                        busy_fraction: float = 0.3
                        ) -> list[dict[str, float]]:
    """The [69] effect: speedup vs social-circle size.

    Builds, per circle size, a star of friends around one collector with
    the given availability, and measures the achieved speedup.
    """
    rows = []
    for size in circle_sizes:
        overlay = SocialOverlay()
        overlay.add_member(SocialPeer(
            "collector", PEER_CLASSES[peer_class_name]))
        for i in range(size):
            overlay.add_member(SocialPeer(
                f"friend-{i:02d}", PEER_CLASSES[peer_class_name],
                online=bool(rng.random() < online_fraction),
                busy=bool(rng.random() < busy_fraction)))
            overlay.befriend("collector", f"friend-{i:02d}")
        helpers = overlay.recruit_helpers("collector", max_helpers=16)
        rows.append({
            "circle_size": float(size),
            "available_helpers": float(len(helpers)),
            "speedup": overlay.social_speedup("collector",
                                              max_helpers=16),
        })
    return rows
