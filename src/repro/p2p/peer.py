"""Peers and content descriptors."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Optional

_peer_ids = count()


@dataclass(frozen=True)
class PeerClass:
    """A bandwidth class of peers.

    The [62] study's headline finding is the large upload/download
    imbalance after ADSL adoption; the default classes encode it.
    Bandwidths are in KB/s.
    """

    name: str
    download_kbps: float
    upload_kbps: float

    @property
    def asymmetry(self) -> float:
        """Download/upload ratio (>1 means asymmetric, ADSL-like)."""
        return self.download_kbps / self.upload_kbps


#: Stylized 2005-era access-link mix: mostly ADSL, some symmetric links.
PEER_CLASSES: dict[str, PeerClass] = {
    "adsl": PeerClass("adsl", download_kbps=1024.0, upload_kbps=128.0),
    "cable": PeerClass("cable", download_kbps=2048.0, upload_kbps=256.0),
    "symmetric": PeerClass("symmetric", download_kbps=1024.0,
                           upload_kbps=1024.0),
    "university": PeerClass("university", download_kbps=8192.0,
                            upload_kbps=8192.0),
}


@dataclass(frozen=True)
class ContentDescriptor:
    """What a swarm shares.

    ``content_key`` identifies the underlying media; ``format`` the
    packaging (codec, resolution, rip group). Two descriptors with equal
    ``content_key`` but different formats are *aliased media* ([61]).
    """

    content_key: str
    format: str
    size_mb: float

    @property
    def torrent_id(self) -> str:
        return f"{self.content_key}/{self.format}"


@dataclass
class Peer:
    """One participant of a swarm (flow-level model; no per-message state)."""

    peer_class: PeerClass
    arrival_time: float
    peer_id: int = field(default_factory=lambda: next(_peer_ids))
    #: MB downloaded so far; a peer with downloaded >= content size seeds.
    downloaded_mb: float = 0.0
    uploaded_mb: float = 0.0
    is_seed: bool = False
    #: Seeds linger this long after completing before leaving.
    seed_linger_s: float = 1800.0
    completed_at: Optional[float] = None
    departed_at: Optional[float] = None
    #: True when churn made the peer abort before completing.
    aborted: bool = False
    #: Payload lost on the wire and downloaded again (message-loss faults).
    re_requested_mb: float = 0.0

    @property
    def active(self) -> bool:
        return self.departed_at is None

    @property
    def download_time(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.arrival_time

    @property
    def sharing_ratio(self) -> float:
        if self.downloaded_mb <= 0:
            return float("inf") if self.uploaded_mb > 0 else 0.0
        return self.uploaded_mb / self.downloaded_mb

    def remaining_mb(self, content_size_mb: float) -> float:
        return max(0.0, content_size_mb - self.downloaded_mb)
