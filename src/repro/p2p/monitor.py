"""BTWorld: a global-scale monitor of BT ecosystems, and its bias study.

BTWorld ([63]) periodically scrapes many trackers and aggregates swarm
statistics; the follow-up meta-analysis ([65]) quantified the *sampling
bias* such instruments introduce: partial tracker coverage, finite
sampling intervals, and spam trackers all distort the observed ecosystem.
This module implements both the instrument and the bias analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.p2p.tracker import Tracker, TrackerStats
from repro.sim import Environment
from repro.workload.trace import TraceArchive


class BTWorldMonitor:
    """Scrapes a set of trackers every ``interval_s`` and logs the results.

    ``coverage`` < 1 models observing only a subset of the ecosystem's
    trackers (the dominant source of bias in the meta-analysis).
    """

    def __init__(self, env: Environment, trackers: Sequence[Tracker],
                 interval_s: float = 300.0,
                 coverage: float = 1.0,
                 rng: Optional[np.random.Generator] = None,
                 filter_spam: bool = False,
                 max_samples: int = 100_000):
        if not 0 < coverage <= 1:
            raise ValueError("coverage must be in (0, 1]")
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.env = env
        self.interval_s = interval_s
        self.filter_spam = filter_spam
        all_trackers = list(trackers)
        n_observed = max(1, int(round(coverage * len(all_trackers))))
        if rng is not None and n_observed < len(all_trackers):
            idx = rng.choice(len(all_trackers), size=n_observed,
                             replace=False)
            self.observed = [all_trackers[int(i)] for i in sorted(idx)]
        else:
            self.observed = all_trackers[:n_observed]
        self.samples: list[TrackerStats] = []
        #: Retention cap: beyond this the monitor keeps a sliding window.
        self.max_samples = int(max_samples)
        self.archive = TraceArchive(
            name="btworld", domain="p2p", instrument="btworld-monitor",
            provenance=f"interval={interval_s}s coverage={coverage}")
        self.process = env.process(self._run())

    def _run(self):
        while True:
            for tracker in self.observed:
                if self.filter_spam and tracker.is_spam:
                    continue
                for torrent_id in tracker.torrents():
                    stats = tracker.scrape(torrent_id, self.env.now)
                    if len(self.samples) >= self.max_samples:
                        # Evict the oldest scrape so week-long sims do
                        # not grow without bound (simlint SL010); the
                        # aggregate views then reflect a sliding window.
                        self.samples.pop(0)
                        self.archive.records.pop(0)
                    self.samples.append(stats)
                    self.archive.add(
                        self.env.now, "scrape", entity=tracker.name,
                        torrent=torrent_id, seeders=stats.seeders,
                        leechers=stats.leechers)
            yield self.env.timeout(self.interval_s)

    # -- aggregate views -----------------------------------------------------
    def observed_peak(self, torrent_id: str) -> int:
        sizes = [s.swarm_size for s in self.samples
                 if s.torrent_id == torrent_id]
        return max(sizes) if sizes else 0

    def observed_mean(self, torrent_id: str) -> float:
        sizes = [s.swarm_size for s in self.samples
                 if s.torrent_id == torrent_id]
        return float(np.mean(sizes)) if sizes else float("nan")

    def total_samples(self) -> int:
        return len(self.samples)


@dataclass
class SamplingBiasReport:
    """The [65]-style bias characterization of one monitor configuration."""

    interval_s: float
    coverage: float
    true_peak: float
    observed_peak: float
    includes_spam: bool = False
    spam_inflation: float = 0.0

    @property
    def peak_bias(self) -> float:
        """Relative error of the observed peak (negative = underestimate)."""
        if self.true_peak == 0:
            return 0.0
        return (self.observed_peak - self.true_peak) / self.true_peak


def bias_study(true_series_times: Sequence[float],
               true_series_sizes: Sequence[float],
               intervals_s: Sequence[float],
               coverages: Sequence[float]) -> list[SamplingBiasReport]:
    """Quantify bias of (interval, coverage) choices on a known signal.

    Given the *true* swarm-size signal, subsample it at each interval and
    scale by each coverage (a fraction of trackers sees a fraction of the
    swarm, in expectation) and report observed-vs-true peaks. Slow sampling
    misses short peaks; partial coverage scales everything down — the two
    bias sources the paper catalogs.
    """
    times = np.asarray(true_series_times, dtype=float)
    sizes = np.asarray(true_series_sizes, dtype=float)
    if times.shape != sizes.shape or times.size == 0:
        raise ValueError("times and sizes must be equal-length, non-empty")
    true_peak = float(sizes.max())
    reports = []
    for interval in intervals_s:
        sample_times = np.arange(times[0], times[-1] + 1e-9, interval)
        idx = np.searchsorted(times, sample_times, side="right") - 1
        idx = np.clip(idx, 0, times.size - 1)
        sampled = sizes[idx]
        for coverage in coverages:
            observed = sampled * coverage
            reports.append(SamplingBiasReport(
                interval_s=float(interval), coverage=float(coverage),
                true_peak=true_peak,
                observed_peak=float(observed.max()) if observed.size else 0.0))
    return reports
